//! Integration tests for the tiered VM: code-cache behavior, profile
//! freezing (§II.2 of the paper), opaque methods, and the typeswitch
//! fallback path under profile-unseen receivers.

use incline::ir::{CallSiteId, CmpOp, FunctionBuilder, Type};
use incline::prelude::*;

/// A program whose virtual callsite sees classes B and C during warmup
/// but class D only afterwards: the typeswitch must fall back correctly.
fn polymorphic_program() -> (Program, incline::ir::MethodId, Vec<incline::ir::ClassId>) {
    let mut p = Program::new();
    let a = p.add_class("A", None);
    let b = p.add_class("B", Some(a));
    let c = p.add_class("C", Some(a));
    let d = p.add_class("D", Some(a));
    let mut impls = Vec::new();
    for (cls, k) in [(b, 10), (c, 20), (d, 40)] {
        let m = p.declare_method(cls, "val", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let v = fb.const_int(k);
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(m, g);
        impls.push(m);
    }
    // main(selector): allocate by selector (0..=2), dispatch in a loop.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let sel_param = fb.param(0);
    let sel = fb.program().selector_by_name("val", 1).unwrap();
    let zero = fb.const_int(0);
    let one = fb.const_int(1);
    let is0 = fb.cmp(CmpOp::IEq, sel_param, zero);
    let (j, jp) = fb.add_block_with_params(&[Type::Object(a)]);
    let t0 = fb.add_block();
    let e0 = fb.add_block();
    fb.branch(is0, (t0, vec![]), (e0, vec![]));
    fb.switch_to(t0);
    let ob = fb.new_object(b);
    let ob = fb.cast(a, ob);
    fb.jump(j, vec![ob]);
    fb.switch_to(e0);
    let is1 = fb.cmp(CmpOp::IEq, sel_param, one);
    let t1 = fb.add_block();
    let e1 = fb.add_block();
    fb.branch(is1, (t1, vec![]), (e1, vec![]));
    fb.switch_to(t1);
    let oc = fb.new_object(c);
    let oc = fb.cast(a, oc);
    fb.jump(j, vec![oc]);
    fb.switch_to(e1);
    let od = fb.new_object(d);
    let od = fb.cast(a, od);
    fb.jump(j, vec![od]);
    fb.switch_to(j);
    // Dispatch 50 times so the callsite is hot.
    let fifty = fb.const_int(50);
    let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]);
    let body = fb.add_block();
    let (done, dp) = fb.add_block_with_params(&[Type::Int]);
    fb.jump(head, vec![zero, zero]);
    fb.switch_to(head);
    let cnd = fb.cmp(CmpOp::ILt, hp[0], fifty);
    fb.branch(cnd, (body, vec![]), (done, vec![hp[1]]));
    fb.switch_to(body);
    let v = fb.call_virtual(sel, vec![jp[0]]).unwrap();
    let acc = fb.iadd(hp[1], v);
    let i2 = fb.iadd(hp[0], one);
    fb.jump(head, vec![i2, acc]);
    fb.switch_to(done);
    fb.ret(Some(dp[0]));
    let g = fb.finish();
    p.define_method(main, g);
    (p, main, vec![a, b, c, d])
}

#[test]
fn typeswitch_fallback_handles_unseen_receiver() {
    let (p, main, _) = polymorphic_program();
    let config = VmConfig {
        hotness_threshold: 3,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    // Warm up with B and C only; main compiles with a B/C typeswitch.
    for _ in 0..6 {
        assert_eq!(
            vm.run(main, vec![Value::Int(0)]).unwrap().value,
            Some(Value::Int(500))
        );
        assert_eq!(
            vm.run(main, vec![Value::Int(1)]).unwrap().value,
            Some(Value::Int(1000))
        );
    }
    assert!(
        vm.compiled_graph(main).is_some(),
        "main must be compiled by now"
    );
    // Now dispatch to D, which the profile never saw: the typeswitch
    // fallback (virtual call) must produce the right answer.
    assert_eq!(
        vm.run(main, vec![Value::Int(2)]).unwrap().value,
        Some(Value::Int(2000))
    );
}

#[test]
fn compiled_methods_stay_cached() {
    let (p, main, _) = polymorphic_program();
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    for _ in 0..10 {
        vm.run(main, vec![Value::Int(0)]).unwrap();
    }
    let compiles_after_warmup = vm.compilations();
    for _ in 0..10 {
        vm.run(main, vec![Value::Int(0)]).unwrap();
    }
    assert_eq!(
        vm.compilations(),
        compiles_after_warmup,
        "no recompilation churn"
    );
}

#[test]
fn profiles_freeze_after_compilation() {
    // The paper's §II.2: once compiled, a method stops contributing
    // profile data (our compiled tier does not profile).
    let (p, main, _) = polymorphic_program();
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(NoInline), config);
    for _ in 0..4 {
        vm.run(main, vec![Value::Int(0)]).unwrap();
    }
    assert!(vm.compiled_graph(main).is_some());
    let frozen = vm.profiles().invocations(main);
    for _ in 0..4 {
        vm.run(main, vec![Value::Int(0)]).unwrap();
    }
    assert_eq!(
        vm.profiles().invocations(main),
        frozen,
        "compiled code must not profile"
    );
}

#[test]
fn opaque_methods_execute_but_never_inline() {
    let mut p = Program::new();
    let ext = p.declare_function("external", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, ext);
    let x = fb.param(0);
    let k = fb.const_int(100);
    let r = fb.iadd(x, k);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(ext, g);
    p.set_opaque(ext);

    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let x = fb.param(0);
    let a = fb.call_static(ext, vec![x]).unwrap();
    let b = fb.call_static(ext, vec![a]).unwrap();
    fb.ret(Some(b));
    let g = fb.finish();
    p.define_method(main, g);

    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    let mut out = vm.run(main, vec![Value::Int(1)]).unwrap();
    for _ in 0..4 {
        out = vm.run(main, vec![Value::Int(1)]).unwrap();
    }
    assert_eq!(out.value, Some(Value::Int(201)));
    let g = vm.compiled_graph(main).expect("main compiles");
    assert_eq!(g.callsites().len(), 2, "opaque callees must remain calls");
}

#[test]
fn c1_mode_compiles_everything_without_inlining() {
    let (p, main, _) = polymorphic_program();
    let config = VmConfig {
        hotness_threshold: 1,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(NoInline), config);
    vm.run(main, vec![Value::Int(0)]).unwrap();
    vm.run(main, vec![Value::Int(1)]).unwrap();
    vm.run(main, vec![Value::Int(2)]).unwrap();
    // main + the three `val` implementations.
    assert!(
        vm.compilations() >= 4,
        "C1 mode compiles every executed method"
    );
}

#[test]
fn callsite_ids_survive_deep_inlining() {
    // After full inlining, every remaining call instruction still carries
    // a callsite id that resolves against the original profile table.
    let w = incline::workloads::by_name("stmbench7").unwrap();
    let config = VmConfig {
        hotness_threshold: 3,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    for _ in 0..6 {
        vm.run(w.entry, vec![Value::Int(8)]).unwrap();
    }
    for m in vm.compiled_methods() {
        let g = vm.compiled_graph(m).unwrap();
        for (_, call) in g.callsites() {
            let site: CallSiteId = g.inst(call).op.call_site().expect("calls carry sites");
            assert!(
                site.method.index() < w.program.method_count(),
                "site names a real method"
            );
        }
    }
}
