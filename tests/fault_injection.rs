//! End-to-end fault-containment tests: deterministic compiler faults are
//! injected into real benchmark runs, and every one of them must be
//! contained by the bailout ladder — the program still completes with
//! output identical to the interpreted reference, the always-on verifier
//! keeps corrupt graphs out of the code cache, and the bailout counters
//! (exposed through both [`Machine`] and [`BenchResult`]) are identical
//! across identical runs.

use incline::prelude::*;
use incline::vm::BenchResult;
use incline::workloads::Workload;

fn workload() -> Workload {
    incline::workloads::by_name("scalatest").expect("benchmark exists")
}

/// Interpreted reference output for the workload (the ground truth every
/// faulted run must still match).
fn reference(w: &Workload, input: i64) -> (Option<Value>, String) {
    let mut vm = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    let out = vm
        .run(w.entry, vec![Value::Int(input)])
        .expect("reference runs");
    (out.value, out.output.to_string())
}

/// Runs the workload hot under the incremental inliner with `plan`
/// injected, returning the machine for counter inspection after checking
/// every run's output against the interpreted reference.
fn run_faulted(w: &Workload, plan: FaultPlan, runs: usize) -> Machine<'_> {
    let input = 4;
    let expected = reference(w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(plan);
    for _ in 0..runs {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("faulted run completes");
        assert_eq!(
            out.value, expected.0,
            "result must match interpreted reference"
        );
        assert_eq!(
            out.output.to_string(),
            expected.1,
            "output must match interpreted reference"
        );
    }
    vm
}

/// Same scenario through the benchmark runner, exposing counters in
/// [`BenchResult`].
fn bench_faulted(w: &Workload, plan: FaultPlan) -> BenchResult {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(4)],
        iterations: 10,
    };
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    run_benchmark_faulted(
        &w.program,
        &spec,
        Box::new(IncrementalInliner::new()),
        config,
        plan,
    )
    .expect("faulted benchmark completes")
}

#[test]
fn injected_panic_is_contained_and_ladder_completes() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::PanicInCompile);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.contained_panics, 1,
        "the injected panic must be caught exactly once"
    );
    assert_eq!(b.full_tier, 1, "the panic costs the full tier one bailout");
    assert_eq!(b.degraded_tier, 0, "the degraded tier absorbs the panic");
    assert!(
        b.blacklisted == 0,
        "nothing reaches the interpreter blacklist"
    );
    assert!(
        vm.compilations() >= 1,
        "the bailout ladder still installs code"
    );
    assert!(vm.blacklisted_methods().is_empty());
}

#[test]
fn corrupted_graph_is_rejected_never_installed() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::CorruptGraph);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.verifier_rejections, 1,
        "the verifier must reject the corrupt graph"
    );
    assert_eq!(b.full_tier, 1);
    assert_eq!(b.degraded_tier, 0, "the inline-free recompile succeeds");
    // Correct outputs across all runs (checked in run_faulted) prove the
    // corrupt graph never executed; the degraded tier's graph did.
    assert!(vm.compilations() >= 1);
}

#[test]
fn exhausted_budget_falls_back_to_cheaper_tier() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::ExhaustFuel);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.fuel_exhaustions, 1,
        "the full tier must report the blown budget"
    );
    assert_eq!(b.full_tier, 1);
    assert_eq!(
        b.degraded_tier, 0,
        "the degraded tier runs on the normal budget"
    );
    assert!(
        vm.compilations() >= 1,
        "the cheaper tier still produces code"
    );
}

#[test]
fn every_seeded_fault_is_contained() {
    let w = workload();
    let plan = FaultPlan::seeded(0xFA17, 16, 0.5);
    assert!(
        !plan.is_empty(),
        "the seed must schedule faults for this test to bite"
    );
    let vm = run_faulted(&w, plan.clone(), 10);
    // Every fault whose request index was actually reached costs the full
    // tier exactly one bailout — no fault escapes, none double-counts.
    let triggered = plan
        .entries()
        .filter(|&(request, _)| request < vm.compile_requests())
        .count() as u64;
    assert!(
        triggered > 0,
        "the run must reach at least one scheduled fault"
    );
    assert_eq!(vm.bailouts().full_tier, triggered);
    assert_eq!(
        vm.bailouts().degraded_tier,
        0,
        "the degraded tier absorbs every fault"
    );
    assert_eq!(vm.bailout_log().len() as u64, triggered);
}

#[test]
fn bench_result_surfaces_bailout_counters() {
    let w = workload();
    let clean = bench_faulted(&w, FaultPlan::new());
    assert_eq!(clean.bailouts.total(), 0, "no faults, no bailouts");
    let faulted = bench_faulted(&w, FaultPlan::new().inject(0, FaultKind::PanicInCompile));
    assert_eq!(faulted.bailouts.contained_panics, 1);
    assert_eq!(faulted.bailouts.full_tier, 1);
    assert!(
        faulted.compilations >= 1,
        "the benchmark still reaches compiled code"
    );
}

#[test]
fn faulted_runs_are_deterministic() {
    let w = workload();
    let plan = FaultPlan::seeded(0xFA17, 16, 0.5);
    let a = bench_faulted(&w, plan.clone());
    let b = bench_faulted(&w, plan);
    assert_eq!(
        a.bailouts, b.bailouts,
        "bailout counters must be reproducible"
    );
    assert_eq!(
        a.per_iteration, b.per_iteration,
        "cycle counts must be reproducible"
    );
    assert_eq!(a.compilations, b.compilations);
    assert_eq!(a.installed_bytes, b.installed_bytes);
    assert!(
        a.bailouts.total() > 0,
        "the plan must actually fault to make this meaningful"
    );
}
