//! End-to-end fault-containment tests: deterministic compiler faults are
//! injected into real benchmark runs, and every one of them must be
//! contained by the bailout ladder — the program still completes with
//! output identical to the interpreted reference, the always-on verifier
//! keeps corrupt graphs out of the code cache, and the bailout counters
//! (exposed through both [`Machine`] and [`BenchResult`]) are identical
//! across identical runs.

use incline::prelude::*;
use incline::vm::BenchResult;
use incline::workloads::Workload;

fn workload() -> Workload {
    incline::workloads::by_name("scalatest").expect("benchmark exists")
}

/// Interpreted reference output for the workload (the ground truth every
/// faulted run must still match).
fn reference(w: &Workload, input: i64) -> (Option<Value>, String) {
    let mut vm = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    let out = vm
        .run(w.entry, vec![Value::Int(input)])
        .expect("reference runs");
    (out.value, out.output.to_string())
}

/// Runs the workload hot under the incremental inliner with `plan`
/// injected, returning the machine for counter inspection after checking
/// every run's output against the interpreted reference.
fn run_faulted(w: &Workload, plan: FaultPlan, runs: usize) -> Machine<'_> {
    let input = 4;
    let expected = reference(w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(plan);
    for _ in 0..runs {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("faulted run completes");
        assert_eq!(
            out.value, expected.0,
            "result must match interpreted reference"
        );
        assert_eq!(
            out.output.to_string(),
            expected.1,
            "output must match interpreted reference"
        );
    }
    vm
}

/// Same scenario through the benchmark runner, exposing counters in
/// [`BenchResult`].
fn bench_faulted(w: &Workload, plan: FaultPlan) -> BenchResult {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(4)],
        iterations: 10,
    };
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .faults(plan)
        .run()
        .expect("faulted benchmark completes")
}

#[test]
fn injected_panic_is_contained_and_ladder_completes() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::PanicInCompile);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.contained_panics, 1,
        "the injected panic must be caught exactly once"
    );
    assert_eq!(b.full_tier, 1, "the panic costs the full tier one bailout");
    assert_eq!(b.degraded_tier, 0, "the degraded tier absorbs the panic");
    assert!(
        b.blacklisted == 0,
        "nothing reaches the interpreter blacklist"
    );
    assert!(
        vm.compilations() >= 1,
        "the bailout ladder still installs code"
    );
    assert!(vm.blacklisted_methods().is_empty());
}

#[test]
fn corrupted_graph_is_rejected_never_installed() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::CorruptGraph);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.verifier_rejections, 1,
        "the verifier must reject the corrupt graph"
    );
    assert_eq!(b.full_tier, 1);
    assert_eq!(b.degraded_tier, 0, "the inline-free recompile succeeds");
    // Correct outputs across all runs (checked in run_faulted) prove the
    // corrupt graph never executed; the degraded tier's graph did.
    assert!(vm.compilations() >= 1);
}

#[test]
fn exhausted_budget_falls_back_to_cheaper_tier() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::ExhaustFuel);
    let vm = run_faulted(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(
        b.fuel_exhaustions, 1,
        "the full tier must report the blown budget"
    );
    assert_eq!(b.full_tier, 1);
    assert_eq!(
        b.degraded_tier, 0,
        "the degraded tier runs on the normal budget"
    );
    assert!(
        vm.compilations() >= 1,
        "the cheaper tier still produces code"
    );
}

#[test]
fn every_seeded_fault_is_contained() {
    let w = workload();
    let plan = FaultPlan::seeded(0xFA17, 16, 0.5);
    assert!(
        !plan.is_empty(),
        "the seed must schedule faults for this test to bite"
    );
    let vm = run_faulted(&w, plan.clone(), 10);
    // Every fault whose request index was actually reached costs the full
    // tier exactly one bailout — no fault escapes, none double-counts.
    let triggered = plan
        .entries()
        .filter(|&(request, _)| request < vm.compile_requests())
        .count() as u64;
    assert!(
        triggered > 0,
        "the run must reach at least one scheduled fault"
    );
    assert_eq!(vm.bailouts().full_tier, triggered);
    assert_eq!(
        vm.bailouts().degraded_tier,
        0,
        "the degraded tier absorbs every fault"
    );
    assert_eq!(vm.bailout_log().len() as u64, triggered);
}

/// Like [`run_faulted`] but with an explicit broker worker-pool size, so
/// the injected faults fire on background worker threads.
fn run_faulted_threads(w: &Workload, plan: FaultPlan, runs: usize, threads: usize) -> Machine<'_> {
    let input = 4;
    let expected = reference(w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        compile_threads: threads,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(plan);
    for _ in 0..runs {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("faulted run completes");
        assert_eq!(out.value, expected.0, "result must match reference");
        assert_eq!(out.output.to_string(), expected.1, "output must match");
    }
    vm
}

#[test]
fn worker_thread_panics_are_contained_by_the_ladder() {
    // The panic now fires on a background worker thread, not the mutator.
    // The ladder's catch_unwind fence sits inside the worker's request
    // processing, so the panic must neither abort the process nor poison
    // the thread pool: it is counted, the degraded rung installs code, and
    // nothing is blacklisted — exactly as in the synchronous broker.
    let w = workload();
    for threads in [1usize, 2, 4] {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::PanicInCompile)
            .inject(1, FaultKind::PanicInCompile);
        let vm = run_faulted_threads(&w, plan, 8, threads);
        let b = vm.bailouts();
        assert_eq!(
            b.contained_panics, 2,
            "both worker-thread panics must be caught (threads={threads})"
        );
        assert_eq!(b.full_tier, 2, "each panic costs one full-tier bailout");
        assert_eq!(b.degraded_tier, 0, "the degraded tier absorbs the panics");
        assert_eq!(b.blacklisted, 0, "nothing reaches the blacklist");
        assert!(
            vm.compilations() >= 1,
            "the ladder still installs code from the worker"
        );
        assert!(vm.blacklisted_methods().is_empty());
    }
}

#[test]
fn seeded_fault_counters_are_identical_across_worker_pools() {
    // Whole-plan equivalence: a seeded storm of mixed faults handled on
    // four background workers must land exactly the same counters and
    // bailout log as the synchronous broker handling it on the mutator.
    let w = workload();
    let plan = FaultPlan::seeded(0xFA17, 16, 0.5);
    assert!(!plan.is_empty());
    let reference_vm = run_faulted_threads(&w, plan.clone(), 10, 0);
    let reference_log: Vec<String> = reference_vm
        .bailout_log()
        .iter()
        .map(|r| format!("{:?}/{:?}/{}", r.method, r.stage, r.error))
        .collect();
    assert!(reference_vm.bailouts().total() > 0);
    for threads in [1usize, 4] {
        let vm = run_faulted_threads(&w, plan.clone(), 10, threads);
        assert_eq!(
            vm.bailouts(),
            reference_vm.bailouts(),
            "bailout counters must not depend on the worker pool (threads={threads})"
        );
        let log: Vec<String> = vm
            .bailout_log()
            .iter()
            .map(|r| format!("{:?}/{:?}/{}", r.method, r.stage, r.error))
            .collect();
        assert_eq!(log, reference_log, "bailout log must be identical");
        assert_eq!(vm.compilations(), reference_vm.compilations());
        assert_eq!(vm.installed_bytes(), reference_vm.installed_bytes());
    }
}

#[test]
fn bench_result_surfaces_bailout_counters() {
    let w = workload();
    let clean = bench_faulted(&w, FaultPlan::new());
    assert_eq!(clean.bailouts.total(), 0, "no faults, no bailouts");
    let faulted = bench_faulted(&w, FaultPlan::new().inject(0, FaultKind::PanicInCompile));
    assert_eq!(faulted.bailouts.contained_panics, 1);
    assert_eq!(faulted.bailouts.full_tier, 1);
    assert!(
        faulted.compilations >= 1,
        "the benchmark still reaches compiled code"
    );
}

// ---- speculation faults: deopt, drift, storms ------------------------------

/// Like [`run_faulted`] but with deoptimization enabled, so `ForceDeopt`
/// and `ForceGuardFailure` bite. Output is still checked against the
/// interpreted reference on every run.
fn run_faulted_deopt(w: &Workload, plan: FaultPlan, runs: usize) -> Machine<'_> {
    let input = 4;
    let expected = reference(w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(plan);
    for _ in 0..runs {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("faulted run completes");
        assert_eq!(out.value, expected.0, "deopt must not change results");
        assert_eq!(
            out.output.to_string(),
            expected.1,
            "deopt must not change output"
        );
    }
    vm
}

/// A program with a single compilable method, so every compilation request
/// index targets it — the deterministic substrate for storm scenarios.
fn single_method_program() -> (Program, incline::ir::MethodId) {
    let mut p = Program::new();
    let m = p.declare_function("dbl", vec![incline::ir::Type::Int], incline::ir::Type::Int);
    let mut fb = FunctionBuilder::new(&p, m);
    let x = fb.param(0);
    let y = fb.iadd(x, x);
    fb.ret(Some(y));
    let g = fb.finish();
    p.define_method(m, g);
    (p, m)
}

#[test]
fn force_deopt_triggers_one_invalidate_reprofile_recompile_cycle() {
    let w = workload();
    let plan = FaultPlan::new().inject(0, FaultKind::ForceDeopt);
    let vm = run_faulted_deopt(&w, plan, 8);
    let b = vm.bailouts();
    assert_eq!(b.deopts, 1, "the injected trap fires exactly once");
    assert_eq!(b.invalidations, 1, "the trapped code must be invalidated");
    assert!(
        b.recompiles >= 1,
        "the method must come back through the broker"
    );
    assert_eq!(b.pinned, 0, "one deopt is far from the storm cap");
    assert!(vm.pinned_methods().is_empty());
    assert_eq!(b.total(), 0, "deoptimization is not a compile-path bailout");
}

#[test]
fn force_deopt_storm_trips_the_cap_and_pins() {
    let (p, m) = single_method_program();
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        max_recompiles: 3,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    let mut plan = FaultPlan::new();
    for request in 0..=4 {
        plan = plan.inject(request, FaultKind::ForceDeopt);
    }
    vm.set_fault_plan(plan);
    let sink = std::sync::Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..80 {
        let out = vm.run(m, vec![Value::Int(21)]).expect("run completes");
        assert_eq!(out.value, Some(Value::Int(42)), "results never diverge");
    }
    let b = vm.bailouts();
    // Requests 0..=3 install trapped code (4 deopts); at request 4 the
    // recompile count has reached the cap, so the method is pinned first
    // and the scheduled fault is ignored for pinned code.
    assert_eq!(b.deopts, 4);
    assert_eq!(b.invalidations, 4);
    assert_eq!(b.recompiles, 4);
    assert_eq!(b.pinned, 1);
    assert_eq!(vm.pinned_methods(), vec![m]);
    assert_eq!(vm.report().pinned, vec![m]);
    assert!(
        vm.installed_bytes() > 0,
        "the pinned method still runs compiled"
    );
    let events = sink.take();
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count();
    assert_eq!(count("Deoptimized"), 4);
    assert_eq!(count("CodeInvalidated"), 4);
    assert_eq!(count("Recompiled"), 4);
    assert_eq!(count("SpeculationPinned"), 1);
}

#[test]
fn force_guard_failure_trips_the_drift_monitor() {
    let w = workload();
    let input = 4;
    let expected = reference(&w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(FaultPlan::new().inject(0, FaultKind::ForceGuardFailure));
    let sink = std::sync::Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..10 {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("run completes");
        assert_eq!(out.value, expected.0);
        assert_eq!(out.output.to_string(), expected.1);
    }
    let b = vm.bailouts();
    assert!(
        b.deopts >= 1,
        "the armed drift monitor must eventually trip"
    );
    assert!(b.invalidations >= 1);
    let events = sink.take();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CompileEvent::Deoptimized { reason, .. } if reason == "drift")),
        "the deopt reason must identify the drift monitor"
    );
}

#[test]
fn force_deopt_counters_are_deterministic() {
    let (p, m) = single_method_program();
    let run = || {
        let config = VmConfig {
            hotness_threshold: 2,
            deopt: true,
            max_recompiles: 3,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
        let mut plan = FaultPlan::new();
        for request in 0..=4 {
            plan = plan.inject(request, FaultKind::ForceDeopt);
        }
        vm.set_fault_plan(plan);
        for _ in 0..80 {
            vm.run(m, vec![Value::Int(21)]).expect("run completes");
        }
        (vm.bailouts(), vm.compile_requests(), vm.installed_bytes())
    };
    assert_eq!(run(), run(), "storm runs must be byte-identical");
}

// ---- code-cache faults: forced eviction ------------------------------------

#[test]
fn force_evict_triggers_evict_reprofile_retier_cycle() {
    // The eviction analogue of the ForceDeopt cycle test: the freshly
    // installed code is immediately evicted (as if cache pressure picked
    // it), the method drops back to the interpreter, re-heats through the
    // normal hotness path, and re-tiers — with correct output throughout
    // and no bailout-ladder involvement at all.
    let w = workload();
    let input = 4;
    let expected = reference(&w, input);
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(FaultPlan::new().inject(0, FaultKind::ForceEvict));
    let sink = std::sync::Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..8 {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("run completes");
        assert_eq!(out.value, expected.0, "eviction must not change results");
        assert_eq!(out.output.to_string(), expected.1);
    }
    let stats = vm.cache_stats();
    assert_eq!(
        stats.forced_evictions, 1,
        "the injected eviction fires once"
    );
    assert_eq!(stats.evictions, 1);
    assert!(
        stats.re_tiered >= 1,
        "the evicted method must come back through the hotness path"
    );
    assert_eq!(
        vm.bailouts().total(),
        0,
        "eviction is not a compile-path bailout"
    );
    assert_eq!(
        vm.bailouts().invalidations,
        0,
        "eviction is not a speculation event"
    );
    assert!(vm.blacklisted_methods().is_empty());
    let events = sink.take();
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count();
    assert_eq!(count("CodeEvicted"), 1);
    assert!(count("ReTiered") >= 1);
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CompileEvent::CodeEvicted { policy, .. } if policy == "forced")),
        "the eviction must be labeled as forced"
    );
}

#[test]
fn force_evict_storm_cycles_without_pinning_or_blacklisting() {
    // Five consecutive compilations of the same method are each evicted the
    // moment they install. Unlike a deopt storm there is no cap to trip:
    // eviction says nothing about the code's correctness, so the method
    // just keeps re-heating and re-tiering until the faults run out, and
    // the sixth install sticks.
    let (p, m) = single_method_program();
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    let mut plan = FaultPlan::new();
    for request in 0..=4 {
        plan = plan.inject(request, FaultKind::ForceEvict);
    }
    vm.set_fault_plan(plan);
    let sink = std::sync::Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..80 {
        let out = vm.run(m, vec![Value::Int(21)]).expect("run completes");
        assert_eq!(out.value, Some(Value::Int(42)), "results never diverge");
    }
    let stats = vm.cache_stats();
    assert_eq!(stats.forced_evictions, 5, "every scheduled eviction fires");
    assert_eq!(stats.evictions, 5);
    assert_eq!(
        stats.re_tiered, 5,
        "requests 1..=5 each reinstall a previously evicted method"
    );
    let b = vm.bailouts();
    assert_eq!(b.total(), 0, "the bailout ladder never gets involved");
    assert_eq!(b.pinned, 0, "eviction storms must not pin");
    assert!(vm.pinned_methods().is_empty());
    assert!(vm.blacklisted_methods().is_empty());
    assert!(
        vm.installed_bytes() > 0,
        "the post-storm install must stick"
    );
    let events = sink.take();
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count();
    assert_eq!(count("CodeEvicted"), 5);
    assert_eq!(count("ReTiered"), 5);
    assert_eq!(count("CodeInstalled"), 6);
}

#[test]
fn force_evict_counters_are_identical_across_worker_pools() {
    // Forced evictions happen on the mutator immediately after the install
    // commits, in request-id order — so an eviction storm handled by four
    // background workers must land exactly the same cache statistics as
    // the synchronous broker.
    let w = workload();
    let mut plan = FaultPlan::new();
    for request in 0..=2 {
        plan = plan.inject(request, FaultKind::ForceEvict);
    }
    let reference_vm = run_faulted_threads(&w, plan.clone(), 10, 0);
    let reference_stats = reference_vm.cache_stats();
    assert!(reference_stats.forced_evictions > 0, "the storm must bite");
    for threads in [1usize, 4] {
        let vm = run_faulted_threads(&w, plan.clone(), 10, threads);
        assert_eq!(
            vm.cache_stats(),
            reference_stats,
            "cache counters must not depend on the worker pool (threads={threads})"
        );
        assert_eq!(vm.compilations(), reference_vm.compilations());
        assert_eq!(vm.installed_bytes(), reference_vm.installed_bytes());
        assert_eq!(vm.bailouts(), reference_vm.bailouts());
    }
}

// ---- snapshot faults: poisoned warmup state --------------------------------

/// Cold-runs `w` with deopt enabled and returns the result plus the
/// snapshot it wrote — the warmup state the poison tests then corrupt.
fn snapshot_of(w: &Workload, iterations: usize) -> (BenchResult, Vec<u8>) {
    use incline::snapshot::MemoryStore;
    let store = std::sync::Arc::new(MemoryStore::new());
    let r = RunSession::new(
        &w.program,
        BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(4)],
            iterations,
        },
    )
    .inliner(Box::new(IncrementalInliner::new()))
    .config(VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    })
    .snapshot_out(store.clone())
    .run()
    .expect("cold run completes");
    (r, store.bytes().expect("snapshot written"))
}

/// The decided-method index of `w.entry` in `bytes` — the one decision
/// guaranteed to activate standalone every iteration (leaf decisions can
/// be inlined into their callers and never run their own code, in which
/// case poisoning them is a no-op).
fn entry_decision_idx(w: &Workload, bytes: &[u8]) -> u64 {
    use incline::snapshot::Snapshot;
    let snap = Snapshot::from_bytes(bytes).expect("snapshot parses");
    snap.decided_methods()
        .iter()
        .position(|&m| m == w.entry)
        .expect("the benchmark entry must be hot enough to be decided") as u64
}

/// Warm-runs `w` from `bytes` with `plan` injected.
fn run_poisoned(
    w: &Workload,
    bytes: Vec<u8>,
    plan: FaultPlan,
    iterations: usize,
    threads: usize,
) -> BenchResult {
    RunSession::new(
        &w.program,
        BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(4)],
            iterations,
        },
    )
    .inliner(Box::new(IncrementalInliner::new()))
    .config(VmConfig {
        hotness_threshold: 2,
        deopt: true,
        compile_threads: threads,
        ..VmConfig::default()
    })
    .faults(plan)
    .snapshot_in(bytes)
    .run()
    .expect("poisoned run completes")
}

#[test]
fn poison_snapshot_quarantines_without_burning_recompiles() {
    let w = workload();
    let (cold, bytes) = snapshot_of(&w, 10);
    let idx = entry_decision_idx(&w, &bytes);
    let plan = FaultPlan::new().inject(0, FaultKind::PoisonSnapshot { decision_idx: idx });
    let out = run_poisoned(&w, bytes, plan, 10, 0);
    assert_eq!(
        out.answer_digest(),
        cold.answer_digest(),
        "a poisoned decision must never change the answer"
    );
    assert_eq!(out.snapshot.poisoned, 1, "the quarantine must be counted");
    assert_eq!(
        out.bailouts.deopts, 1,
        "the poisoned code traps exactly once"
    );
    assert_eq!(
        out.bailouts.recompiles, 0,
        "quarantine bypasses the invalidate -> recompile path entirely"
    );
    assert_eq!(out.bailouts.pinned, 0, "no method reaches the storm cap");
}

#[test]
fn poison_snapshot_emits_the_quarantine_event() {
    let w = workload();
    let (_, bytes) = snapshot_of(&w, 10);
    let idx = entry_decision_idx(&w, &bytes);
    let sink = std::sync::Arc::new(CollectingSink::new());
    let plan = FaultPlan::new().inject(0, FaultKind::PoisonSnapshot { decision_idx: idx });
    RunSession::new(
        &w.program,
        BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(4)],
            iterations: 10,
        },
    )
    .inliner(Box::new(IncrementalInliner::new()))
    .config(VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    })
    .faults(plan)
    .snapshot_in(bytes)
    .trace(sink.clone())
    .run()
    .expect("poisoned run completes");
    let events = sink.take();
    let poisoned: Vec<_> = events
        .iter()
        .filter(|e| e.name() == "DecisionPoisoned")
        .collect();
    assert_eq!(poisoned.len(), 1, "exactly one quarantine event");
    assert!(
        matches!(
            poisoned[0],
            CompileEvent::DecisionPoisoned { activations, .. } if *activations >= 1
        ),
        "the event carries the activation count inside the window"
    );
}

#[test]
fn poison_snapshot_excludes_the_decision_from_the_next_snapshot() {
    use incline::snapshot::{MemoryStore, Snapshot};
    let w = workload();
    let (_, bytes) = snapshot_of(&w, 10);
    let idx = entry_decision_idx(&w, &bytes);
    let original = Snapshot::from_bytes(&bytes).expect("snapshot parses");
    let victim = original.decided_methods()[idx as usize];
    // One iteration: the poisoned method traps on its first activation and
    // its subtracted profile cannot re-cross the tier threshold, so the
    // re-snapshot must not carry any decision for it.
    let store = std::sync::Arc::new(MemoryStore::new());
    let out = RunSession::new(
        &w.program,
        BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(4)],
            iterations: 1,
        },
    )
    .inliner(Box::new(IncrementalInliner::new()))
    .config(VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    })
    .faults(FaultPlan::new().inject(0, FaultKind::PoisonSnapshot { decision_idx: idx }))
    .snapshot_in(bytes)
    .snapshot_out(store.clone())
    .run()
    .expect("poisoned run completes");
    assert_eq!(out.snapshot.poisoned, 1);
    let next = Snapshot::from_bytes(&store.bytes().expect("re-snapshot written"))
        .expect("re-snapshot parses");
    assert!(
        !next.decided_methods().contains(&victim),
        "the poisoned decision must be excluded from snapshot_out"
    );
    assert!(
        next.decisions.len() < original.decisions.len(),
        "the re-snapshot shrinks by the quarantined decision"
    );
}

#[test]
fn poison_every_decision_degrades_to_cold_start_without_storms() {
    use incline::snapshot::Snapshot;
    let w = workload();
    let (cold, bytes) = snapshot_of(&w, 12);
    let n = Snapshot::from_bytes(&bytes)
        .expect("snapshot parses")
        .decisions
        .len() as u64;
    assert!(n >= 2, "the workload must log several decisions");
    let mut plan = FaultPlan::new();
    for idx in 0..n {
        plan = plan.inject(idx, FaultKind::PoisonSnapshot { decision_idx: idx });
    }
    let out = run_poisoned(&w, bytes, plan, 12, 0);
    assert_eq!(
        out.answer_digest(),
        cold.answer_digest(),
        "a fully poisoned snapshot must still compute cold answers"
    );
    assert!(
        out.snapshot.poisoned >= 1,
        "every activated replayed decision is quarantined"
    );
    assert!(out.snapshot.poisoned <= n);
    assert_eq!(
        out.bailouts.recompiles, 0,
        "quarantine must not feed the recompile storm throttle"
    );
    assert_eq!(out.bailouts.pinned, 0, "no method may end up pinned");
    assert!(
        out.compilations >= out.snapshot.poisoned,
        "quarantined methods re-earn their tier through the cold path"
    );
}

#[test]
fn poison_counters_are_identical_across_worker_pools() {
    let w = workload();
    let (_, bytes) = snapshot_of(&w, 10);
    let idx = entry_decision_idx(&w, &bytes);
    let plan = FaultPlan::new().inject(0, FaultKind::PoisonSnapshot { decision_idx: idx });
    let reference = run_poisoned(&w, bytes.clone(), plan.clone(), 10, 0);
    assert_eq!(reference.snapshot.poisoned, 1);
    for threads in [1usize, 4] {
        let out = run_poisoned(&w, bytes.clone(), plan.clone(), 10, threads);
        assert_eq!(
            reference, out,
            "poisoned-run results must not depend on the worker pool (threads={threads})"
        );
    }
}

#[test]
fn faulted_runs_are_deterministic() {
    let w = workload();
    let plan = FaultPlan::seeded(0xFA17, 16, 0.5);
    let a = bench_faulted(&w, plan.clone());
    let b = bench_faulted(&w, plan);
    assert_eq!(
        a.bailouts, b.bailouts,
        "bailout counters must be reproducible"
    );
    assert_eq!(
        a.per_iteration, b.per_iteration,
        "cycle counts must be reproducible"
    );
    assert_eq!(a.compilations, b.compilations);
    assert_eq!(a.installed_bytes, b.installed_bytes);
    assert!(
        a.bailouts.total() > 0,
        "the plan must actually fault to make this meaningful"
    );
}
