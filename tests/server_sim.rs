//! Server-simulation invariants (DESIGN.md §12): the multi-tenant serving
//! harness must keep the determinism contract of the rest of the VM —
//! barrier-mode installs hide the worker-pool size down to the trace
//! bytes — while safepoint installs buy a measured win on the mutator
//! stall tail, and injected cache/deopt faults degrade service without
//! changing any tenant's answers.

use std::sync::Arc;

use incline::bench::server::{
    serve_standard, standard_mix, standard_spec, standard_vm, tenant_specs,
};
use incline::bench::Config;
use incline::prelude::*;
use incline::workloads::tenants::TenantMix;

/// Serves the standard scenario with a JSONL sink attached and returns
/// both the report and the raw trace bytes.
fn traced_serve(mix: &TenantMix, threads: usize) -> (ServerReport, Vec<u8>) {
    let sink = Arc::new(JsonlSink::new(Vec::new()));
    let handle: Arc<dyn TraceSink> = sink.clone();
    let report = ServerSession::new(&mix.program, tenant_specs(mix), standard_spec())
        .inliner(Config::paper().build())
        .config(standard_vm(
            InstallPolicy::Barrier,
            EvictionPolicy::Lru,
            threads,
        ))
        .trace(handle)
        .serve()
        .expect("standard scenario serves");
    let bytes = Arc::try_unwrap(sink)
        .map_err(|_| "sink still shared")
        .expect("sink uniquely owned after the serve")
        .into_inner();
    (report, bytes)
}

#[test]
fn barrier_report_and_trace_are_identical_across_worker_pools() {
    let mix = standard_mix();
    let (synchronous_report, synchronous_trace) = traced_serve(&mix, 0);
    for threads in [1usize, 4] {
        let (report, trace) = traced_serve(&mix, threads);
        assert_eq!(
            synchronous_report, report,
            "barrier installs must hide a {threads}-worker pool from the report"
        );
        assert_eq!(
            synchronous_trace, trace,
            "barrier installs must hide a {threads}-worker pool from the JSONL trace"
        );
    }
}

#[test]
fn safepoint_beats_barrier_on_the_stall_tail() {
    // The point of pipelined installs: under bursty multi-tenant load the
    // mutator no longer stops for whole compilations, so the p99 of the
    // per-request stall distribution drops — for every eviction policy.
    let mix = standard_mix();
    for policy in EvictionPolicy::all() {
        let barrier = serve_standard(&mix, InstallPolicy::Barrier, policy, 4);
        let safepoint = serve_standard(&mix, InstallPolicy::Safepoint, policy, 4);
        assert!(
            safepoint.stall.p99 <= barrier.stall.p99,
            "{}: safepoint stall p99 {} must not exceed barrier's {}",
            policy.label(),
            safepoint.stall.p99,
            barrier.stall.p99
        );
        assert!(
            safepoint.stall.max <= barrier.stall.max,
            "{}: safepoint worst pause {} must not exceed barrier's {}",
            policy.label(),
            safepoint.stall.max,
            barrier.stall.max
        );
    }
}

#[test]
fn cache_and_deopt_faults_degrade_gracefully_per_tenant() {
    // Forced evictions and forced deopts throw away compiled code at the
    // worst times; tenants must still get every answer (digests match the
    // clean run) and no request may fail, let alone panic across tenants.
    let mix = standard_mix();
    let clean = serve_standard(
        &mix,
        InstallPolicy::Safepoint,
        EvictionPolicy::HotnessDecay,
        1,
    );
    let plan = FaultPlan::new()
        .inject(1, FaultKind::ForceEvict)
        .inject(2, FaultKind::ForceDeopt)
        .inject(4, FaultKind::ForceEvict)
        .inject(6, FaultKind::ForceDeopt);
    let faulted = ServerSession::new(&mix.program, tenant_specs(&mix), standard_spec())
        .inliner(Config::paper().build())
        .config(standard_vm(
            InstallPolicy::Safepoint,
            EvictionPolicy::HotnessDecay,
            1,
        ))
        .faults(plan)
        .serve()
        .expect("faulted scenario still serves");
    assert_eq!(faulted.requests, clean.requests);
    assert_eq!(faulted.tenants.len(), clean.tenants.len());
    for (c, f) in clean.tenants.iter().zip(&faulted.tenants) {
        assert_eq!(c.name, f.name);
        assert_eq!(
            f.requests, c.requests,
            "{}: fault injection must not drop requests",
            f.name
        );
        assert_eq!(f.failed, 0, "{}: faults must not fail requests", f.name);
        assert_eq!(
            f.digest, c.digest,
            "{}: faults must not change the tenant's answers",
            f.name
        );
    }
}
