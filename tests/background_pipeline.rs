//! Pipelined background compilation: with `InstallPolicy::Safepoint` the
//! hotness trigger only *enqueues* a request — the triggering activation
//! keeps interpreting while a background worker compiles, and the result
//! installs at the next safepoint (an activation of an in-flight method,
//! or the start of the next run). Two properties are locked down here:
//! the mode is observably semantics-preserving, and it buys the thing it
//! exists for — strictly fewer mutator-visible stall cycles than the
//! synchronous broker on real workloads.

use incline_core::IncrementalInliner;
use incline_vm::{
    BenchResult, BenchSpec, InstallPolicy, Machine, NoInline, RunSession, Value, VmConfig,
};
use incline_workloads::{GenConfig, Workload};

fn bench(w: &Workload, policy: InstallPolicy, threads: usize, deopt: bool) -> BenchResult {
    let config = VmConfig {
        hotness_threshold: 2,
        deopt,
        compile_threads: threads,
        install_policy: policy,
        ..VmConfig::default()
    };
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(8))],
        iterations: 8,
    };
    RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .run()
        .unwrap_or_else(|e| panic!("{}: benchmark failed: {e}", w.name))
}

#[test]
fn pipelined_mode_is_semantics_preserving() {
    // Tier-up timing changes; observable behavior must not. Every paper
    // and extra workload (plus a slice of the random corpus) is compared
    // against the interpreted reference, with and without deopt.
    let mut targets: Vec<Workload> = incline_workloads::all_benchmarks();
    targets.extend(incline_workloads::extra_benchmarks());
    for seed in 0..8u64 {
        targets.push(incline_workloads::generate(seed, GenConfig::default()));
    }
    for w in &targets {
        let input = w.input.min(8);
        let mut interp = Machine::new(
            &w.program,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let reference = interp
            .run(w.entry, vec![Value::Int(input)])
            .unwrap_or_else(|e| panic!("{}: reference failed: {e}", w.name));
        for deopt in [false, true] {
            let out = bench(w, InstallPolicy::Safepoint, 4, deopt);
            assert_eq!(
                out.final_value,
                reference.value.map(|v| format!("{v:?}")),
                "{}: pipelined return value differs (deopt={deopt})",
                w.name
            );
            assert_eq!(
                out.final_output,
                reference.output.lines().to_vec(),
                "{}: pipelined output differs (deopt={deopt})",
                w.name
            );
        }
    }
}

#[test]
fn pipelined_mode_is_deterministic() {
    // Same config, same seed-free workload → byte-identical measurements.
    let w = incline_workloads::by_name("scalatest").unwrap();
    let a = bench(&w, InstallPolicy::Safepoint, 4, true);
    let b = bench(&w, InstallPolicy::Safepoint, 4, true);
    assert_eq!(a, b, "pipelined runs must be reproducible");
}

#[test]
fn pipelined_broker_stalls_strictly_less_than_synchronous() {
    // The acceptance bar: on real workloads the pipelined broker's
    // mutator-visible stall is strictly lower than the synchronous
    // broker's (which by construction stalls for every compile cycle).
    let mut wins = 0usize;
    let mut checked = 0usize;
    for name in ["scalatest", "factorie", "tmt", "phase_change"] {
        let Some(w) = incline_workloads::by_name(name) else {
            continue;
        };
        let deopt = name == "phase_change";
        let sync = bench(&w, InstallPolicy::Barrier, 0, deopt);
        let pipelined = bench(&w, InstallPolicy::Safepoint, 4, deopt);
        checked += 1;
        assert!(
            sync.stall_cycles > 0 && sync.compilations > 0,
            "{name}: the synchronous baseline must actually compile and stall"
        );
        assert_eq!(
            sync.stall_cycles, sync.compile_cycles,
            "{name}: the synchronous broker stalls for every compile cycle"
        );
        assert!(
            pipelined.compilations > 0,
            "{name}: pipelined mode must compile"
        );
        assert!(
            pipelined.stall_cycles < sync.stall_cycles,
            "{name}: pipelined stall {} must be strictly below synchronous stall {}",
            pipelined.stall_cycles,
            sync.stall_cycles
        );
        if pipelined.stall_cycles < sync.stall_cycles {
            wins += 1;
        }
    }
    assert!(
        checked >= 2 && wins >= 2,
        "the stall win must hold on at least two workloads (checked {checked}, wins {wins})"
    );
}
