//! Shape tests: the qualitative claims of the paper's evaluation must
//! hold on this reproduction (§V; DESIGN.md §7). These run on a benchmark
//! subset to stay fast in debug builds; `cargo run --release -p
//! incline-bench --bin run_all` checks the full suite.

use incline::baselines::{C2Inliner, GreedyInliner};
use incline::prelude::*;

fn steady(w: &Workload, inliner: Box<dyn Inliner + '_>) -> (f64, u64) {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(12))],
        iterations: 8,
    };
    let config = VmConfig {
        hotness_threshold: 4,
        ..VmConfig::default()
    };
    let r = RunSession::new(&w.program, spec)
        .inliner(inliner)
        .config(config)
        .run()
        .expect("benchmark runs");
    (r.steady_state, r.installed_bytes)
}

#[test]
fn incremental_beats_or_ties_greedy_on_most() {
    let subset = [
        "avrora",
        "xalan",
        "factorie",
        "actors",
        "scalatest",
        "specs",
        "dotty",
        "stmbench7",
    ];
    let mut wins = 0;
    for name in subset {
        let w = incline::workloads::by_name(name).unwrap();
        let (incr, _) = steady(&w, Box::new(IncrementalInliner::new()));
        let (greedy, _) = steady(&w, Box::new(GreedyInliner::new()));
        if incr <= greedy * 1.02 {
            wins += 1;
        } else {
            eprintln!("greedy wins on {name}: {incr:.0} vs {greedy:.0}");
        }
    }
    assert!(
        wins >= 7,
        "incremental must match or beat greedy on ≥7/8, got {wins}"
    );
}

#[test]
fn inlining_beats_no_inlining_broadly() {
    let subset = [
        "sunflow",
        "scalatest",
        "apparat",
        "factorie",
        "stmbench7",
        "kiama",
    ];
    for name in subset {
        let w = incline::workloads::by_name(name).unwrap();
        let (incr, _) = steady(&w, Box::new(IncrementalInliner::new()));
        let (none, _) = steady(&w, Box::new(NoInline));
        assert!(
            none > incr * 1.15,
            "{name}: inlining must give ≥15% ({incr:.0} vs no-inline {none:.0})"
        );
    }
}

#[test]
fn code_size_grows_but_moderately() {
    // Table I shape: the proposed inliner generates more code than the
    // baselines, but the growth stays within the tolerable range the
    // paper argues for (the per-benchmark average is ≈1.9–2.4×).
    let subset = ["xalan", "factorie", "scalatest", "jython", "h2"];
    let mut ratios = Vec::new();
    for name in subset {
        let w = incline::workloads::by_name(name).unwrap();
        let (_, incr_code) = steady(&w, Box::new(IncrementalInliner::new()));
        let (_, c2_code) = steady(&w, Box::new(C2Inliner::new()));
        ratios.push(incr_code as f64 / c2_code.max(1) as f64);
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        avg >= 1.0,
        "the proposed inliner should not shrink code on average: {avg:.2}"
    );
    assert!(avg < 8.0, "code growth must stay moderate: {avg:.2}x vs C2");
}

#[test]
fn deep_trials_help_on_trial_sensitive_benchmarks() {
    // Figure 9's blue-vs-green bars: deep inlining trials help on the
    // Scala-suite benchmarks whose hot kernels are generically written.
    // The effect needs the full workload size (the decision margins are
    // frequency-dependent), so this test uses the benchmark defaults.
    let full = |w: &Workload, inliner: Box<dyn Inliner + '_>| -> f64 {
        let spec = BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(w.input)],
            iterations: w.iterations,
        };
        let config = VmConfig {
            hotness_threshold: 5,
            ..VmConfig::default()
        };
        RunSession::new(&w.program, spec)
            .inliner(inliner)
            .config(config)
            .run()
            .expect("runs")
            .steady_state
    };
    let mut helps = 0;
    for name in ["factorie", "actors"] {
        let w = incline::workloads::by_name(name).unwrap();
        let deep = full(&w, Box::new(IncrementalInliner::new()));
        let shallow = full(
            &w,
            Box::new(IncrementalInliner::with_config(
                PolicyConfig::shallow_trials(),
            )),
        );
        if shallow > deep * 1.05 {
            helps += 1;
        } else {
            eprintln!("{name}: deep {deep:.0} vs shallow {shallow:.0}");
        }
    }
    assert!(
        helps >= 1,
        "deep trials must help on at least one trial-sensitive benchmark"
    );
}

#[test]
fn adaptive_tracks_best_fixed_threshold() {
    // Figures 6/7 shape: adaptive within 10% of the best fixed setting on
    // a majority of the subset, without per-benchmark tuning.
    let subset = ["avrora", "scalatest", "kiama", "stmbench7", "h2"];
    let mut ok = 0;
    for name in subset {
        let w = incline::workloads::by_name(name).unwrap();
        let (adaptive, _) = steady(&w, Box::new(IncrementalInliner::new()));
        let mut best_fixed = f64::INFINITY;
        for (te, ti) in [(250, 500), (1500, 1500), (3500, 3000)] {
            let (t, _) = steady(
                &w,
                Box::new(IncrementalInliner::with_config(PolicyConfig::fixed(te, ti))),
            );
            best_fixed = best_fixed.min(t);
        }
        if adaptive <= best_fixed * 1.10 {
            ok += 1;
        } else {
            eprintln!("{name}: adaptive {adaptive:.0} vs best fixed {best_fixed:.0}");
        }
    }
    assert!(
        ok >= 4,
        "adaptive must track the best fixed setting on ≥4/5, got {ok}"
    );
}

#[test]
fn clustering_not_worse_than_one_by_one() {
    for name in ["scalatest", "kiama", "stmbench7"] {
        let w = incline::workloads::by_name(name).unwrap();
        let (cluster, _) = steady(&w, Box::new(IncrementalInliner::new()));
        let (one, _) = steady(
            &w,
            Box::new(IncrementalInliner::with_config(PolicyConfig::one_by_one(
                0.005, 60.0,
            ))),
        );
        assert!(
            cluster <= one * 1.05,
            "{name}: clustering must not lose to 1-by-1 ({cluster:.0} vs {one:.0})"
        );
    }
}
