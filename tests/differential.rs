//! Differential execution tests: every workload and a corpus of random
//! programs must produce byte-identical output and return values when run
//! (a) purely interpreted and (b) JIT-compiled under *every* inliner and
//! every policy ablation. This is the master correctness property of the
//! whole system — any miscompilation in the optimizer, the call-tree
//! specialization, typeswitch emission or the inline transplant shows up
//! here.

use incline_baselines::{C2Inliner, GreedyInliner};
use incline_core::{IncrementalInliner, PolicyConfig};
use incline_vm::{
    BenchResult, BenchSpec, Inliner, Machine, NoInline, RunOutcome, RunSession, Value, VmConfig,
};
use incline_workloads::{GenConfig, Workload};

/// Runs a workload to completion on a fresh machine and returns the final
/// iteration's outcome (after warmup, so compiled code actually runs).
fn run_with(w: &Workload, inliner: Box<dyn Inliner + '_>, jit: bool, input: i64) -> RunOutcome {
    run_with_deopt(w, inliner, jit, input, false)
}

/// [`run_with`], with speculation/deoptimization toggled explicitly.
fn run_with_deopt(
    w: &Workload,
    inliner: Box<dyn Inliner + '_>,
    jit: bool,
    input: i64,
    deopt: bool,
) -> RunOutcome {
    let config = VmConfig {
        jit,
        hotness_threshold: 2,
        deopt,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, inliner, config);
    let mut last = None;
    for _ in 0..4 {
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .unwrap_or_else(|e| panic!("{}: execution failed: {e}", w.name));
        last = Some(out);
    }
    last.expect("at least one run")
}

fn all_inliners() -> Vec<(&'static str, Box<dyn Inliner>)> {
    vec![
        ("no-inline", Box::new(NoInline)),
        ("greedy", Box::new(GreedyInliner::new())),
        ("c2", Box::new(C2Inliner::new())),
        ("incremental", Box::new(IncrementalInliner::new())),
        (
            "fixed",
            Box::new(IncrementalInliner::with_config(PolicyConfig::fixed(
                1000, 3000,
            ))),
        ),
        (
            "one-by-one",
            Box::new(IncrementalInliner::with_config(PolicyConfig::one_by_one(
                0.005, 120.0,
            ))),
        ),
        (
            "shallow",
            Box::new(IncrementalInliner::with_config(
                PolicyConfig::shallow_trials(),
            )),
        ),
    ]
}

fn check_workload(w: &Workload, input: i64) {
    let reference = run_with(w, Box::new(NoInline), false, input);
    for (name, inliner) in all_inliners() {
        let out = run_with(w, inliner, true, input);
        assert_eq!(
            reference.value, out.value,
            "{}: return value differs under inliner `{name}`",
            w.name
        );
        assert_eq!(
            reference.output, out.output,
            "{}: printed output differs under inliner `{name}`",
            w.name
        );
    }
}

#[test]
fn all_paper_benchmarks_are_semantics_preserving() {
    for w in incline_workloads::all_benchmarks() {
        // Small inputs: correctness, not performance.
        let input = w.input.min(8);
        check_workload(&w, input);
    }
}

#[test]
fn random_programs_are_semantics_preserving() {
    for seed in 0..40u64 {
        let w = incline_workloads::generate(seed, GenConfig::default());
        check_workload(&w, 12);
    }
}

#[test]
fn random_programs_with_heavier_bodies() {
    let config = GenConfig {
        functions: 8,
        ops_per_function: 24,
        loop_prob: 0.7,
        branch_prob: 0.8,
        ..GenConfig::default()
    };
    for seed in 100..115u64 {
        let w = incline_workloads::generate(seed, config);
        check_workload(&w, 9);
    }
}

#[test]
fn deopt_enabled_runs_match_fallback_only_runs() {
    // The master property of the deoptimization subsystem: uncommon traps,
    // rollback and interpreted replay must be observably invisible. Every
    // seeded workload (plus phase_change, built to trap) runs deopt-enabled
    // under every inliner and must match the interpreted reference exactly.
    let mut targets: Vec<Workload> = incline_workloads::all_benchmarks();
    targets.extend(incline_workloads::extra_benchmarks());
    for w in targets {
        let input = w.input.min(8);
        let reference = run_with(&w, Box::new(NoInline), false, input);
        for (name, inliner) in all_inliners() {
            let out = run_with_deopt(&w, inliner, true, input, true);
            assert_eq!(
                reference.value, out.value,
                "{}: return value differs with deopt under inliner `{name}`",
                w.name
            );
            assert_eq!(
                reference.output, out.output,
                "{}: printed output differs with deopt under inliner `{name}`",
                w.name
            );
        }
    }
}

#[test]
fn deopt_enabled_random_programs_are_semantics_preserving() {
    for seed in 0..40u64 {
        let w = incline_workloads::generate(seed, GenConfig::default());
        let reference = run_with(&w, Box::new(NoInline), false, 12);
        for (name, inliner) in all_inliners() {
            let out = run_with_deopt(&w, inliner, true, 12, true);
            assert_eq!(
                reference.value, out.value,
                "{}: return value differs with deopt under inliner `{name}`",
                w.name
            );
            assert_eq!(
                reference.output, out.output,
                "{}: printed output differs with deopt under inliner `{name}`",
                w.name
            );
        }
    }
}

#[test]
fn phase_change_flip_is_semantics_preserving_with_full_input() {
    // The adversarial deopt workload at its real input size: the receiver
    // flip at the midpoint must trap, roll back and replay with no
    // observable difference, under both deopt settings.
    let w = incline_workloads::by_name("phase_change").unwrap();
    check_workload(&w, w.input);
    let reference = run_with(&w, Box::new(NoInline), false, w.input);
    for (name, inliner) in all_inliners() {
        let out = run_with_deopt(&w, inliner, true, w.input, true);
        assert_eq!(
            reference.value, out.value,
            "phase_change: return value differs with deopt under `{name}`"
        );
        assert_eq!(
            reference.output, out.output,
            "phase_change: output differs with deopt under `{name}`"
        );
    }
}

/// One full benchmark measurement with an explicit broker worker-pool
/// size. Everything else matches the differential helpers above.
fn bench_with_threads(
    w: &Workload,
    inliner: Box<dyn Inliner + '_>,
    input: i64,
    deopt: bool,
    threads: usize,
) -> BenchResult {
    let config = VmConfig {
        hotness_threshold: 2,
        deopt,
        compile_threads: threads,
        ..VmConfig::default()
    };
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(input)],
        iterations: 6,
    };
    RunSession::new(&w.program, spec)
        .inliner(inliner)
        .config(config)
        .run()
        .unwrap_or_else(|e| panic!("{}: benchmark failed: {e}", w.name))
}

#[test]
fn compile_thread_matrix_is_observably_identical_on_all_workloads() {
    // The tentpole determinism property: in deterministic (barrier) mode
    // the size of the background worker pool must be invisible — the whole
    // `BenchResult` (per-iteration cycles, installed bytes, compilations,
    // compile and stall cycles, output, bailout counters) is compared
    // wholesale across compile_threads ∈ {0, 1, 4}, for every paper and
    // extra workload, under every inliner, with and without deopt. This
    // includes phase_change, whose mid-run receiver flip exercises
    // deoptimization, invalidation and recompilation through the broker.
    let mut targets: Vec<Workload> = incline_workloads::all_benchmarks();
    targets.extend(incline_workloads::extra_benchmarks());
    // A representative policy spread keeps the matrix affordable in debug
    // builds: no inlining at all, the C2 baseline, and the paper's
    // incremental algorithm (the corpus test below adds more shapes).
    for w in targets {
        let input = w.input.min(8);
        for deopt in [false, true] {
            for idx in [0usize, 2, 3] {
                let (name, inliner) = all_inliners().swap_remove(idx);
                let reference = bench_with_threads(&w, inliner, input, deopt, 0);
                for threads in [1usize, 4] {
                    let (_, inliner) = all_inliners().swap_remove(idx);
                    let out = bench_with_threads(&w, inliner, input, deopt, threads);
                    assert_eq!(
                        reference, out,
                        "{}: BenchResult differs between compile_threads=0 and {threads} \
                         under inliner `{name}` (deopt={deopt})",
                        w.name
                    );
                }
            }
        }
    }
}

#[test]
fn compile_thread_matrix_on_random_corpus() {
    // Same wholesale identity over generated programs: the corpus hits
    // graph shapes the curated workloads do not.
    for seed in 0..16u64 {
        let w = incline_workloads::generate(seed, GenConfig::default());
        for deopt in [false, true] {
            let reference =
                bench_with_threads(&w, Box::new(IncrementalInliner::new()), 12, deopt, 0);
            for threads in [1usize, 4] {
                let out =
                    bench_with_threads(&w, Box::new(IncrementalInliner::new()), 12, deopt, threads);
                assert_eq!(
                    reference, out,
                    "{}: BenchResult differs between compile_threads=0 and {threads} \
                     (deopt={deopt})",
                    w.name
                );
            }
        }
    }
}

/// One traced benchmark run of the paper's incremental inliner with the
/// deep-inlining-trial cache toggled. Returns the whole `BenchResult`
/// plus the compile-event stream rendered to JSONL lines — the two
/// observables the trial cache must leave byte-identical.
fn bench_traced_with_cache(
    w: &Workload,
    input: i64,
    threads: usize,
    trial_cache: bool,
) -> (BenchResult, Vec<String>) {
    use std::sync::Arc;

    let config = VmConfig {
        hotness_threshold: 2,
        compile_threads: threads,
        trial_cache,
        ..VmConfig::default()
    };
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(input)],
        iterations: 6,
    };
    let sink = Arc::new(incline_vm::CollectingSink::new());
    let handle: Arc<dyn incline_vm::TraceSink> = sink.clone();
    let result = RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .trace(handle)
        .run()
        .unwrap_or_else(|e| panic!("{}: benchmark failed: {e}", w.name));
    let lines = sink.take().iter().map(|e| e.to_json()).collect();
    (result, lines)
}

/// Whether toggling the trial cache moves any observable on `w`:
/// the wholesale `BenchResult` or the JSONL trace.
fn trial_cache_diverges(w: &Workload, input: i64, threads: usize) -> bool {
    let (off, trace_off) = bench_traced_with_cache(w, input, threads, false);
    let (on, trace_on) = bench_traced_with_cache(w, input, threads, true);
    off != on || trace_off != trace_on
}

#[test]
fn trial_cache_identity_on_all_workloads() {
    // The trial-cache correctness property: memoizing deep-inlining
    // trials is an implementation detail — with the cache on or off, the
    // whole BenchResult and the full JSONL compile trace must be
    // byte-identical, for every paper and extra workload, across
    // compile_threads ∈ {0, 1, 4}.
    let mut targets: Vec<Workload> = incline_workloads::all_benchmarks();
    targets.extend(incline_workloads::extra_benchmarks());
    for w in targets {
        let input = w.input.min(8);
        for threads in [0usize, 1, 4] {
            let (off, trace_off) = bench_traced_with_cache(&w, input, threads, false);
            let (on, trace_on) = bench_traced_with_cache(&w, input, threads, true);
            assert_eq!(
                off, on,
                "{}: BenchResult differs with the trial cache on \
                 (compile_threads={threads})",
                w.name
            );
            assert_eq!(
                trace_off, trace_on,
                "{}: JSONL trace differs with the trial cache on \
                 (compile_threads={threads})",
                w.name
            );
        }
    }
}

#[test]
fn trial_cache_identity_on_hardened_random_corpus() {
    // The same identity over 200 hardened generated programs: deep call
    // chains, megamorphic receiver sets and loop-nested polymorphic
    // callsites stress trial keying (graph fingerprint × argument
    // fingerprint) far beyond the curated workloads. On a divergence the
    // seeded shrinker minimizes the reproducer before reporting, so the
    // failure message names the smallest program that still diverges.
    let config = GenConfig::hardened();
    for seed in 0..200u64 {
        let w = incline_workloads::generate(seed, config);
        if trial_cache_diverges(&w, 9, 0) {
            let (min_cfg, min_w) =
                incline_workloads::shrink(seed, config, &mut |w| trial_cache_diverges(w, 9, 0));
            panic!(
                "seed {seed}: trial cache changed observables; minimized reproducer \
                 (config {min_cfg:?}, {} methods): rerun with \
                 incline_workloads::generate({seed}, {min_cfg:?})",
                min_w.program.method_ids().count(),
            );
        }
    }
}

#[test]
fn interpreted_and_compiled_cycles_differ_but_values_match() {
    // Sanity on the cost model: compiled steady state must be faster.
    let w = incline_workloads::by_name("factorie").unwrap();
    let interp = run_with(&w, Box::new(NoInline), false, 8);
    let jit = run_with(&w, Box::new(IncrementalInliner::new()), true, 8);
    assert_eq!(interp.value, jit.value);
    assert!(
        jit.exec_cycles < interp.exec_cycles,
        "compiled ({}) should beat interpreted ({})",
        jit.exec_cycles,
        interp.exec_cycles
    );
}
