//! Bounded code cache: budget enforcement, eviction policies, admission
//! control and graceful degradation, end to end.
//!
//! The contract under test (DESIGN.md §11): with a finite
//! `code_cache_budget` the installed-byte total never exceeds the budget
//! at any observable point, every policy picks victims deterministically,
//! admission control defers rather than blacklists, evicted methods
//! re-tier through the normal hotness path, and — the degenerate case —
//! `budget = 0` leaves every legacy behavior byte-identical, knobs and
//! all. Determinism is asserted wholesale across broker worker-pool
//! sizes, including the JSONL trace stream.

use std::sync::Arc;

use incline::prelude::*;
use incline::vm::BenchResult;
use incline::workloads::Workload;

fn pressure_workload() -> Workload {
    incline::workloads::by_name("cache_pressure").expect("extra workload exists")
}

/// Interpreted reference output (ground truth for graceful degradation:
/// whatever the cache does, results must not change).
fn reference(w: &Workload, input: i64) -> (Option<Value>, String) {
    let mut vm = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    let out = vm
        .run(w.entry, vec![Value::Int(input)])
        .expect("reference runs");
    (out.value, out.output.to_string())
}

fn budget_config(budget: u64, policy: EvictionPolicy, threads: usize) -> VmConfig {
    VmConfig {
        hotness_threshold: 2,
        compile_threads: threads,
        code_cache_budget: budget,
        eviction_policy: policy,
        ..VmConfig::default()
    }
}

fn bench_budget(w: &Workload, config: VmConfig) -> BenchResult {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(48))],
        iterations: 8,
    };
    RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .run()
        .unwrap_or_else(|e| panic!("{}: benchmark failed: {e}", w.name))
}

#[test]
fn budget_is_never_exceeded_at_any_observable_point() {
    // The tentpole invariant, checked after every activation cycle for
    // every policy: installed bytes stay within the budget, and so does
    // the lifetime high-water mark.
    let w = pressure_workload();
    let input = w.input.min(48);
    let expected = reference(&w, input);
    for policy in EvictionPolicy::all() {
        for budget in [512u64, 3000] {
            let mut vm = Machine::new(
                &w.program,
                Box::new(IncrementalInliner::new()),
                budget_config(budget, policy, 0),
            );
            for cycle in 0..8 {
                let out = vm
                    .run(w.entry, vec![Value::Int(input)])
                    .unwrap_or_else(|e| panic!("budget {budget} under {policy}: {e}"));
                assert!(
                    vm.installed_bytes() <= budget,
                    "cycle {cycle}: {} bytes installed exceeds budget {budget} under {policy}",
                    vm.installed_bytes()
                );
                assert_eq!(out.value, expected.0, "results must not change");
                assert_eq!(out.output.to_string(), expected.1);
            }
            let stats = vm.cache_stats();
            assert!(
                stats.high_water_bytes <= budget,
                "high water {} exceeds budget {budget} under {policy}",
                stats.high_water_bytes
            );
            assert!(
                stats.evictions > 0,
                "a {budget}-byte budget must force evictions under {policy}"
            );
            assert_eq!(vm.report().cache, stats, "report must surface the stats");
        }
    }
}

#[test]
fn budget_zero_knobs_are_inert_on_all_workloads() {
    // budget = 0 is the compatibility contract: the whole BenchResult must
    // be byte-identical to the default configuration no matter how the
    // other cache knobs are set, on every paper and extra workload.
    let mut targets: Vec<Workload> = incline::workloads::all_benchmarks();
    targets.extend(incline::workloads::extra_benchmarks());
    for w in &targets {
        let spec = BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(w.input.min(8))],
            iterations: 6,
        };
        let base = VmConfig {
            hotness_threshold: 2,
            ..VmConfig::default()
        };
        let knobs = VmConfig {
            code_cache_budget: 0,
            eviction_policy: EvictionPolicy::CostBenefit,
            cache_age_window: 1,
            ..base
        };
        let a = RunSession::new(&w.program, spec.clone())
            .inliner(Box::new(IncrementalInliner::new()))
            .config(base)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let b = RunSession::new(&w.program, spec)
            .inliner(Box::new(IncrementalInliner::new()))
            .config(knobs)
            .run()
            .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            a, b,
            "{}: cache knobs must be inert when the budget is 0",
            w.name
        );
        // The high-water gauge is passive accounting and ticks regardless
        // of budget; every *decision* counter must stay zero.
        let passive = CacheStats {
            high_water_bytes: a.cache.high_water_bytes,
            ..CacheStats::default()
        };
        assert_eq!(a.cache, passive, "{}: no cache decisions", w.name);
    }
}

/// A traced run: the full `BenchResult` plus the JSONL rendering of every
/// emitted compile event.
fn bench_traced(w: &Workload, config: VmConfig) -> (BenchResult, Vec<String>) {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(48))],
        iterations: 8,
    };
    let sink = Arc::new(CollectingSink::new());
    let handle: Arc<dyn TraceSink> = sink.clone();
    let r = RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .trace(handle)
        .run()
        .unwrap_or_else(|e| panic!("{}: traced benchmark failed: {e}", w.name));
    let jsonl = sink.take().iter().map(|e| e.to_json()).collect();
    (r, jsonl)
}

#[test]
fn finite_budget_is_byte_identical_across_worker_pools() {
    // Evictions and admission decisions happen at install time on the
    // mutator in request-id order, so the worker-pool size must stay
    // invisible even under heavy cache churn: the whole BenchResult and
    // the whole JSONL trace stream, compared wholesale, per policy.
    let w = pressure_workload();
    for policy in EvictionPolicy::all() {
        let (reference, reference_jsonl) = bench_traced(&w, budget_config(3000, policy, 0));
        assert!(reference.cache.evictions > 0, "churn must be real");
        for threads in [1usize, 4] {
            let (r, jsonl) = bench_traced(&w, budget_config(3000, policy, threads));
            assert_eq!(
                reference, r,
                "BenchResult differs between compile_threads=0 and {threads} under {policy}"
            );
            assert_eq!(
                reference_jsonl, jsonl,
                "JSONL trace differs between compile_threads=0 and {threads} under {policy}"
            );
        }
    }
}

#[test]
fn evicted_methods_retier_through_the_normal_hotness_path() {
    let w = pressure_workload();
    let (r, jsonl) = bench_traced(&w, budget_config(3000, EvictionPolicy::Lru, 0));
    assert!(
        r.cache.re_tiered > 0,
        "cycling working set must re-heat evicted methods"
    );
    assert!(
        jsonl.iter().any(|l| l.contains("\"ev\":\"CodeEvicted\"")),
        "evictions must be traced"
    );
    assert!(
        jsonl.iter().any(|l| l.contains("\"ev\":\"ReTiered\"")),
        "re-tiering must be traced"
    );
}

#[test]
fn aging_floors_idle_methods_under_pressure() {
    let w = pressure_workload();
    let config = VmConfig {
        cache_age_window: 8,
        ..budget_config(3000, EvictionPolicy::HotnessDecay, 0)
    };
    let (r, jsonl) = bench_traced(&w, config);
    assert!(
        r.cache.aged > 0,
        "a cycling working set with an 8-tick window must age methods out"
    );
    assert!(
        jsonl.iter().any(|l| l.contains("\"ev\":\"MethodAged\"")),
        "aging must be traced"
    );
}

#[test]
fn tiny_budgets_degrade_gracefully_without_panics() {
    // Memory exhaustion: budgets below the smallest package must never
    // panic, livelock or change results — the VM simply stays (mostly)
    // interpreted and keeps deferring with backoff.
    let w = pressure_workload();
    let input = w.input.min(48);
    let expected = reference(&w, input);
    for policy in EvictionPolicy::all() {
        for budget in [4u64, 64, 256] {
            let mut vm = Machine::new(
                &w.program,
                Box::new(IncrementalInliner::new()),
                budget_config(budget, policy, 0),
            );
            for _ in 0..8 {
                let out = vm
                    .run(w.entry, vec![Value::Int(input)])
                    .unwrap_or_else(|e| panic!("budget {budget} under {policy}: {e}"));
                assert!(vm.installed_bytes() <= budget);
                assert_eq!(out.value, expected.0);
                assert_eq!(out.output.to_string(), expected.1);
            }
            assert!(
                vm.cache_stats().admission_rejections > 0,
                "a {budget}-byte budget must reject installs under {policy}"
            );
            assert_eq!(vm.blacklisted_methods().len(), 0, "deferral, not blacklist");
        }
    }
}

#[test]
fn admission_rejection_reasons_are_the_documented_vocabulary() {
    let w = pressure_workload();
    let (r, jsonl) = bench_traced(&w, budget_config(64, EvictionPolicy::CostBenefit, 0));
    assert!(r.cache.admission_rejections > 0);
    let reasons: Vec<&str> = jsonl
        .iter()
        .filter(|l| l.contains("\"ev\":\"AdmissionRejected\""))
        .map(|l| {
            if l.contains("\"reason\":\"no_evictable_victim\"") {
                "no_evictable_victim"
            } else if l.contains("\"reason\":\"benefit_below_bar\"") {
                "benefit_below_bar"
            } else {
                panic!("undocumented admission-rejection reason in {l}")
            }
        })
        .collect();
    assert!(
        !reasons.is_empty(),
        "rejections must be traced with reasons"
    );
}

#[test]
fn teardown_releases_every_byte_under_mixed_deopt_and_eviction() {
    // Regression for the accounting-drift hazard: after a run mixing
    // deoptimization-driven invalidation, pressure-driven eviction and a
    // forced eviction, invalidating everything must return the audited
    // accounting to exactly zero — every byte released exactly once.
    let w = incline::workloads::by_name("phase_change").expect("extra workload exists");
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        code_cache_budget: 1024,
        eviction_policy: EvictionPolicy::Lru,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(
        FaultPlan::new()
            .inject(0, FaultKind::ForceDeopt)
            .inject(1, FaultKind::ForceEvict),
    );
    for _ in 0..10 {
        vm.run(w.entry, vec![Value::Int(w.input)])
            .expect("run completes");
    }
    assert!(
        vm.bailouts().invalidations > 0 && vm.cache_stats().evictions > 0,
        "the scenario must actually mix invalidation and eviction"
    );
    for m in w.program.method_ids() {
        vm.invalidate_code(m);
    }
    assert_eq!(
        vm.installed_bytes(),
        0,
        "teardown must release every installed byte exactly once"
    );
}

#[test]
fn pipelined_installs_recheck_admission_at_the_safepoint() {
    // Safepoint-mode installs go through the same admission path on the
    // mutator; under a finite budget the mode stays deterministic and
    // within budget, and still beats the synchronous broker on stall.
    let w = pressure_workload();
    let pipelined = VmConfig {
        install_policy: InstallPolicy::Safepoint,
        ..budget_config(3000, EvictionPolicy::Lru, 4)
    };
    let a = bench_budget(&w, pipelined);
    let b = bench_budget(&w, pipelined);
    assert_eq!(a, b, "pipelined cache pressure must be reproducible");
    assert!(a.cache.evictions > 0);
    assert!(
        a.cache.high_water_bytes <= 3000,
        "safepoint installs must re-check the budget at install time"
    );
    let sync = bench_budget(&w, budget_config(3000, EvictionPolicy::Lru, 0));
    assert!(
        a.stall_cycles < sync.stall_cycles,
        "pipelining must still hide compile latency under cache pressure"
    );
}

#[test]
fn policies_are_observably_distinct_under_pressure() {
    // The three policies must actually disagree on victims somewhere:
    // cost-benefit rejects cold giants outright (admission control),
    // while LRU admits everything and churns.
    let w = pressure_workload();
    let lru = bench_budget(&w, budget_config(3000, EvictionPolicy::Lru, 0));
    let cb = bench_budget(&w, budget_config(3000, EvictionPolicy::CostBenefit, 0));
    assert!(lru.cache.evictions > 0 && cb.cache.evictions > 0);
    assert!(
        lru.cache != cb.cache,
        "LRU and cost-benefit must make different decisions on a cycling working set"
    );
    assert_eq!(
        lru.final_output, cb.final_output,
        "policy choice must never change program semantics"
    );
}
