//! Structured-trace system tests: the typed `CompileEvent` stream must be
//! deterministic (byte-identical JSONL across identical runs), faithful to
//! the inliner actually used (no `InlineDecision` events from `NoInline`),
//! and consistent with the broker's own telemetry (`Bailout` events agree
//! exactly with `Machine::bailout_log`).

use std::sync::Arc;

use incline::prelude::*;
use incline::workloads::Workload;

fn workload() -> Workload {
    incline::workloads::by_name("scalatest").expect("benchmark exists")
}

/// Runs the workload hot under the incremental inliner with a JSONL sink
/// attached and returns the raw trace bytes.
fn jsonl_trace() -> Vec<u8> {
    jsonl_trace_of(workload(), false)
}

/// [`jsonl_trace`] for an arbitrary workload, with deoptimization toggled.
fn jsonl_trace_of(w: Workload, deopt: bool) -> Vec<u8> {
    let threads = VmConfig::default().compile_threads;
    jsonl_trace_threads(w, deopt, threads)
}

/// [`jsonl_trace_of`] with an explicit broker worker-pool size.
fn jsonl_trace_threads(w: Workload, deopt: bool, threads: usize) -> Vec<u8> {
    let spec = BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(4)],
        iterations: 6,
    };
    let config = VmConfig {
        hotness_threshold: 2,
        deopt,
        compile_threads: threads,
        ..VmConfig::default()
    };
    let sink = Arc::new(JsonlSink::new(Vec::new()));
    let handle: Arc<dyn TraceSink> = sink.clone();
    RunSession::new(&w.program, spec)
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config)
        .trace(handle)
        .run()
        .expect("benchmark completes");
    Arc::try_unwrap(sink)
        .map_err(|_| "sink still shared")
        .expect("sink uniquely owned after the run")
        .into_inner()
}

#[test]
fn identical_runs_produce_byte_identical_jsonl() {
    let first = jsonl_trace();
    let second = jsonl_trace();
    assert!(!first.is_empty(), "a hot run must emit events");
    assert_eq!(first, second, "trace must be byte-identical across runs");

    // Sanity: well-formed JSONL with the discriminator key first.
    let text = String::from_utf8(first).expect("JSONL is UTF-8");
    assert!(text.lines().count() > 10, "expected a substantial trace");
    for line in text.lines() {
        assert!(line.starts_with("{\"ev\":\""), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
    }
    // The lifecycle events of a successful compilation all appear.
    for needle in [
        "\"ev\":\"RoundStart\"",
        "\"ev\":\"RoundEnd\"",
        "\"ev\":\"InlineDecision\"",
        "\"ev\":\"FuelCharged\"",
        "\"ev\":\"TierTransition\"",
        "\"ev\":\"CodeInstalled\"",
    ] {
        assert!(text.contains(needle), "trace must contain {needle}");
    }
}

#[test]
fn deopt_enabled_runs_produce_byte_identical_jsonl() {
    // Same hygiene bar with the deoptimization lifecycle in the stream:
    // the phase-change workload traps mid-run, so Deoptimized /
    // CodeInvalidated / Recompiled events interleave with the normal
    // compilation events — and the whole trace must still be reproducible
    // byte for byte.
    let w = || incline::workloads::by_name("phase_change").expect("extra benchmark exists");
    let first = jsonl_trace_of(w(), true);
    let second = jsonl_trace_of(w(), true);
    assert!(!first.is_empty(), "a hot run must emit events");
    assert_eq!(first, second, "deopt trace must be byte-identical");

    let text = String::from_utf8(first).expect("JSONL is UTF-8");
    for line in text.lines() {
        assert!(line.starts_with("{\"ev\":\""), "bad line start: {line}");
        assert!(line.ends_with('}'), "bad line end: {line}");
    }
    for needle in [
        "\"ev\":\"Deoptimized\"",
        "\"reason\":\"uncovered_receiver\"",
        "\"ev\":\"CodeInvalidated\"",
        "\"ev\":\"Recompiled\"",
    ] {
        assert!(text.contains(needle), "trace must contain {needle}");
    }
    // With deopt disabled the same workload emits none of the lifecycle.
    let plain = String::from_utf8(jsonl_trace_of(w(), false)).expect("UTF-8");
    for needle in ["Deoptimized", "CodeInvalidated", "Recompiled"] {
        assert!(
            !plain.contains(needle),
            "deopt-disabled trace must not contain {needle}"
        );
    }
}

#[test]
fn jsonl_identical_across_worker_pool_sizes() {
    // The tentpole trace-determinism property: the worker pool must be
    // invisible in the JSONL stream. The broker buffers each request's
    // events on the worker and replays the buffers in request-id order at
    // the install point, so the raw bytes — not just some canonical
    // sort — are identical for 0, 1 and 4 workers, with and without the
    // deoptimization lifecycle in the stream.
    for (bench, deopt) in [("scalatest", false), ("phase_change", true)] {
        let w = || incline::workloads::by_name(bench).expect("benchmark exists");
        let reference = jsonl_trace_threads(w(), deopt, 0);
        assert!(!reference.is_empty());
        for threads in [1usize, 4] {
            let got = jsonl_trace_threads(w(), deopt, threads);
            assert_eq!(
                reference, got,
                "{bench}: raw JSONL must not depend on compile_threads={threads}"
            );
        }
        // The canonical per-method sort is stable and idempotent on top of
        // the already-deterministic stream: sorting cannot un-determinize.
        let text = String::from_utf8(reference).expect("JSONL is UTF-8");
        let sorted = incline::trace::order::sort_jsonl_by_method(&text);
        assert_eq!(
            incline::trace::order::sort_jsonl_by_method(&sorted),
            sorted,
            "canonicalization must be idempotent"
        );
        for threads in [1usize, 4] {
            let got = String::from_utf8(jsonl_trace_threads(w(), deopt, threads)).expect("UTF-8");
            assert_eq!(
                incline::trace::order::sort_jsonl_by_method(&got),
                sorted,
                "{bench}: canonically sorted JSONL must match at compile_threads={threads}"
            );
        }
    }
}

#[test]
fn per_method_lifecycle_order_survives_the_worker_pool() {
    // With four background workers compiling concurrently, each method's
    // lifecycle must still read in program order after the broker's
    // replay: its RoundStart strictly before its CodeInstalled, any
    // InlineDecisions in between, and no other compilation's events
    // spliced into the window (requests replay atomically).
    let w = incline::workloads::by_name("phase_change").expect("benchmark exists");
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        compile_threads: 4,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    let sink = Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..6 {
        vm.run(w.entry, vec![Value::Int(w.input)])
            .expect("run completes");
    }
    let events = sink.take();
    let installs: Vec<usize> = events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e, CompileEvent::CodeInstalled { .. }))
        .map(|(i, _)| i)
        .collect();
    assert!(
        installs.len() > 1,
        "expected several installs, got {installs:?}"
    );
    let mut windows_with_decisions = 0usize;
    for &end in &installs {
        let CompileEvent::CodeInstalled { method, .. } = events[end] else {
            unreachable!()
        };
        // Walk back to this compilation's first round.
        let start = (0..end)
            .rev()
            .find(|&i| matches!(events[i], CompileEvent::RoundStart { method: m, round: 1, .. } if m == method))
            .unwrap_or_else(|| panic!("install of {method:?} has no preceding RoundStart"));
        for e in &events[start + 1..end] {
            match e {
                CompileEvent::CodeInstalled { .. } => {
                    panic!("foreign CodeInstalled inside {method:?}'s compilation window")
                }
                CompileEvent::RoundStart { method: m, .. } => assert_eq!(
                    *m, method,
                    "foreign RoundStart inside {method:?}'s compilation window"
                ),
                CompileEvent::InlineDecision { .. } => windows_with_decisions += 1,
                _ => {}
            }
        }
    }
    assert!(
        windows_with_decisions > 0,
        "the incremental inliner must log decisions between RoundStart and CodeInstalled"
    );
}

#[test]
fn deopt_events_agree_with_bailout_counters() {
    let w = incline::workloads::by_name("phase_change").expect("extra benchmark exists");
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    let sink = Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..6 {
        vm.run(w.entry, vec![Value::Int(w.input)])
            .expect("run completes");
    }
    let events = sink.take();
    let count = |name: &str| events.iter().filter(|e| e.name() == name).count() as u64;
    let b = vm.bailouts();
    assert!(b.deopts > 0, "phase_change must trap at least once");
    assert_eq!(count("Deoptimized"), b.deopts);
    assert_eq!(count("CodeInvalidated"), b.invalidations);
    assert_eq!(count("Recompiled"), b.recompiles);
    assert_eq!(count("SpeculationPinned"), b.pinned);
}

#[test]
fn no_inline_compile_emits_no_inline_decisions() {
    let w = workload();
    // Gather profiles by interpreting once.
    let mut vm = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    vm.run(w.entry, vec![Value::Int(4)]).expect("profiling run");
    let profiles = vm.profiles().clone();

    let sink = CollectingSink::new();
    let cx = CompileCx::new(&w.program, &profiles);
    let traced = cx.with_trace(&sink);
    NoInline.compile(w.entry, &traced).expect("compiles");

    let events = sink.take();
    assert!(!events.is_empty(), "fuel/opt events are still emitted");
    assert!(
        events
            .iter()
            .all(|e| !matches!(e, CompileEvent::InlineDecision { .. })),
        "NoInline must make zero inline decisions: {events:?}"
    );
}

#[test]
fn bailout_events_agree_with_bailout_log() {
    let w = workload();
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let plan = FaultPlan::new()
        .inject(0, FaultKind::PanicInCompile)
        .inject(1, FaultKind::CorruptGraph);
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    vm.set_fault_plan(plan);
    let sink = Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..8 {
        vm.run(w.entry, vec![Value::Int(4)]).expect("run completes");
    }

    let from_events: Vec<(String, String, String)> = sink
        .take()
        .iter()
        .filter_map(|e| match e {
            CompileEvent::Bailout {
                method,
                stage,
                error,
            } => Some((method.to_string(), stage.to_string(), error.clone())),
            _ => None,
        })
        .collect();
    let from_log: Vec<(String, String, String)> = vm
        .bailout_log()
        .iter()
        .map(|r| {
            (
                r.method.to_string(),
                r.stage.to_string(),
                r.error.to_string(),
            )
        })
        .collect();
    assert!(
        !from_events.is_empty(),
        "injected faults must surface as Bailout events"
    );
    assert_eq!(
        from_events, from_log,
        "Bailout events must agree exactly with Machine::bailout_log"
    );
    // And the consolidated report carries the same log.
    assert_eq!(vm.report().bailout_log.len(), from_log.len());
}
