//! Warmup-snapshot system tests: round-trip byte identity across the
//! compile-thread matrix, deterministic replay (eager and counter-seeded)
//! against cold runs, and graceful cold-start fallback for truncated,
//! bit-flipped, version-bumped, stale or missing snapshots — over the
//! paper workloads and the random-program corpus.

use std::sync::Arc;

use incline_core::IncrementalInliner;
use incline_vm::snapshot::{fnv1a, MemoryStore, ReplayMode, Snapshot, SnapshotStore};
use incline_vm::{BenchResult, BenchSpec, RunSession, Value, VmConfig};
use incline_workloads::{GenConfig, Workload};

fn spec(w: &Workload) -> BenchSpec {
    BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(8))],
        iterations: 6,
    }
}

fn config(threads: usize, replay: ReplayMode) -> VmConfig {
    VmConfig {
        hotness_threshold: 2,
        deopt: true,
        compile_threads: threads,
        replay,
        ..VmConfig::default()
    }
}

/// Runs `w` cold and returns the result plus the snapshot it wrote.
fn cold_run(w: &Workload, threads: usize) -> (BenchResult, Vec<u8>) {
    let store = Arc::new(MemoryStore::new());
    let r = RunSession::new(&w.program, spec(w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(threads, ReplayMode::Eager))
        .snapshot_out(store.clone())
        .run()
        .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", w.name));
    let bytes = store.bytes().expect("cold run must write a snapshot");
    (r, bytes)
}

/// Runs `w` with `bytes` loaded as the warmup snapshot.
fn warm_run(w: &Workload, bytes: Vec<u8>, threads: usize, replay: ReplayMode) -> BenchResult {
    RunSession::new(&w.program, spec(w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(threads, replay))
        .snapshot_in(bytes)
        .run()
        .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", w.name))
}

fn corpus() -> Vec<Workload> {
    let mut targets = vec![
        incline_workloads::by_name("scalatest").unwrap(),
        incline_workloads::by_name("avrora").unwrap(),
        incline_workloads::by_name("phase_change").unwrap(),
    ];
    for seed in 0..12u64 {
        targets.push(incline_workloads::generate(seed, GenConfig::default()));
    }
    targets
}

#[test]
fn snapshots_are_byte_identical_across_compile_threads() {
    // The format sorts every map before writing, and in barrier mode the
    // worker-pool size is observably invisible — so the snapshot written
    // at the end of a run must not depend on `compile_threads` either.
    for w in corpus() {
        let (_, reference) = cold_run(&w, 0);
        for threads in [1usize, 4] {
            let (_, bytes) = cold_run(&w, threads);
            assert_eq!(
                reference, bytes,
                "{}: snapshot bytes differ between compile_threads=0 and {threads}",
                w.name
            );
        }
        // Parse → re-serialize is the identity on valid snapshots.
        let snap = Snapshot::from_bytes(&reference)
            .unwrap_or_else(|e| panic!("{}: snapshot must parse: {e}", w.name));
        assert_eq!(
            snap.to_bytes(),
            reference,
            "{}: re-serialization must be byte-identical",
            w.name
        );
    }
}

#[test]
fn eager_and_seeded_replay_produce_cold_answers() {
    // The replay correctness property: a replayed run must compute
    // byte-identical answers (output digest, final value, per-tenant
    // semantics) to the cold run it was snapshotted from, in both modes,
    // across the worker-pool matrix.
    for w in corpus() {
        let (cold, bytes) = cold_run(&w, 0);
        for replay in [ReplayMode::Eager, ReplayMode::Seed] {
            let reference = warm_run(&w, bytes.clone(), 0, replay);
            assert_eq!(
                cold.answer_digest(),
                reference.answer_digest(),
                "{}: answers diverged under {replay:?} replay",
                w.name
            );
            assert_eq!(cold.final_value, reference.final_value, "{}", w.name);
            assert_eq!(cold.final_output, reference.final_output, "{}", w.name);
            // Replay itself is deterministic across the pool size.
            for threads in [1usize, 4] {
                let out = warm_run(&w, bytes.clone(), threads, replay);
                assert_eq!(
                    reference, out,
                    "{}: replayed BenchResult differs between compile_threads=0 and \
                     {threads} under {replay:?}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn eager_replay_eliminates_warmup_on_paper_workloads() {
    for w in incline_workloads::all_benchmarks() {
        let (cold, bytes) = cold_run(&w, 0);
        let warm = warm_run(&w, bytes, 0, ReplayMode::Eager);
        assert!(
            warm.warmup_cycles_within(0.05) <= cold.warmup_cycles_within(0.05),
            "{}: eager replay must not warm up slower than cold \
             (warm {} vs cold {} cycles)",
            w.name,
            warm.warmup_cycles_within(0.05),
            cold.warmup_cycles_within(0.05)
        );
    }
}

/// Asserts that a session fed `bytes` falls back to a cold start: one
/// fallback counted, zero loads, and a `BenchResult` equal to the cold
/// run's in every field except the snapshot counters.
fn assert_cold_fallback(w: &Workload, cold: &BenchResult, bytes: Vec<u8>, what: &str) {
    let out = warm_run(w, bytes, 0, ReplayMode::Eager);
    assert_eq!(
        out.snapshot.fallbacks, 1,
        "{}: {what}: fallback must be counted",
        w.name
    );
    assert_eq!(out.snapshot.loaded, 0, "{}: {what}: nothing loaded", w.name);
    let mut masked = out.clone();
    masked.snapshot = cold.snapshot;
    assert_eq!(
        &masked, cold,
        "{}: {what}: fallback run must equal the cold run",
        w.name
    );
}

#[test]
fn corrupt_snapshots_degrade_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let (cold, bytes) = cold_run(&w, 0);

    // Truncations at several depths, including into the checksum digits.
    // (Losing only the trailing newline is tolerated: the footer and the
    // checksummed body are still intact.)
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 2] {
        assert_cold_fallback(&w, &cold, bytes[..cut].to_vec(), "truncated");
    }
    // Bit flips sprinkled through the body trip the checksum (or the
    // parser); either way the run degrades, never panics.
    for pos in (0..bytes.len()).step_by(97) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x10;
        assert_cold_fallback(&w, &cold, flipped, "bit-flipped");
    }
    // Version bump with a *valid* checksum: only the version check fires.
    let text = String::from_utf8(bytes.clone()).unwrap();
    let body = text
        .split_once("{\"rec\":\"end\"")
        .map(|(b, _)| b.replace("\"v\":1", "\"v\":2"))
        .unwrap();
    let bumped = format!(
        "{body}{{\"rec\":\"end\",\"crc\":\"{:016x}\"}}\n",
        fnv1a(body.as_bytes())
    );
    assert_cold_fallback(&w, &cold, bumped.into_bytes(), "version-bumped");
    // Garbage that is not even JSONL.
    assert_cold_fallback(&w, &cold, b"not a snapshot at all".to_vec(), "garbage");
}

#[test]
fn stale_snapshot_from_another_program_degrades_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let other = incline_workloads::by_name("avrora").unwrap();
    let (cold, _) = cold_run(&w, 0);
    let (_, stale) = cold_run(&other, 0);
    // Valid bytes, valid checksum — but the program fingerprint differs.
    assert_cold_fallback(&w, &cold, stale, "stale-program");
}

#[test]
fn empty_store_degrades_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let (cold, _) = cold_run(&w, 0);
    let out = RunSession::new(&w.program, spec(&w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(0, ReplayMode::Eager))
        .snapshot_in(Arc::new(MemoryStore::new()))
        .run()
        .unwrap();
    assert_eq!(out.snapshot.fallbacks, 1);
    let mut masked = out.clone();
    masked.snapshot = cold.snapshot;
    assert_eq!(masked, cold);
}

#[test]
fn file_store_round_trips_through_disk() {
    use incline_vm::snapshot::FileStore;
    let w = incline_workloads::by_name("scalatest").unwrap();
    let path = std::env::temp_dir().join(format!("incline-snap-{}.jsonl", std::process::id()));
    let (cold, bytes) = cold_run(&w, 0);
    FileStore::new(&path).write(&bytes).unwrap();
    let warm = RunSession::new(&w.program, spec(&w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(0, ReplayMode::Eager))
        .snapshot_in(path.as_path())
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(warm.snapshot.loaded, 1);
    assert_eq!(cold.answer_digest(), warm.answer_digest());
}
