//! Warmup-snapshot system tests: round-trip byte identity across the
//! compile-thread matrix, deterministic replay (eager and counter-seeded)
//! against cold runs, and graceful cold-start fallback for truncated,
//! bit-flipped, version-bumped, stale or missing snapshots — over the
//! paper workloads and the random-program corpus.

use std::sync::Arc;

use incline_core::IncrementalInliner;
use incline_vm::snapshot::{fnv1a, MemoryStore, ReplayMode, Snapshot, SnapshotStore};
use incline_vm::{BenchResult, BenchSpec, RunSession, Value, VmConfig};
use incline_workloads::{GenConfig, Workload};

fn spec(w: &Workload) -> BenchSpec {
    BenchSpec {
        entry: w.entry,
        args: vec![Value::Int(w.input.min(8))],
        iterations: 6,
    }
}

fn config(threads: usize, replay: ReplayMode) -> VmConfig {
    VmConfig {
        hotness_threshold: 2,
        deopt: true,
        compile_threads: threads,
        replay,
        ..VmConfig::default()
    }
}

/// Runs `w` cold and returns the result plus the snapshot it wrote.
fn cold_run(w: &Workload, threads: usize) -> (BenchResult, Vec<u8>) {
    let store = Arc::new(MemoryStore::new());
    let r = RunSession::new(&w.program, spec(w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(threads, ReplayMode::Eager))
        .snapshot_out(store.clone())
        .run()
        .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", w.name));
    let bytes = store.bytes().expect("cold run must write a snapshot");
    (r, bytes)
}

/// Runs `w` with `bytes` loaded as the warmup snapshot.
fn warm_run(w: &Workload, bytes: Vec<u8>, threads: usize, replay: ReplayMode) -> BenchResult {
    RunSession::new(&w.program, spec(w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(threads, replay))
        .snapshot_in(bytes)
        .run()
        .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", w.name))
}

fn corpus() -> Vec<Workload> {
    let mut targets = vec![
        incline_workloads::by_name("scalatest").unwrap(),
        incline_workloads::by_name("avrora").unwrap(),
        incline_workloads::by_name("phase_change").unwrap(),
    ];
    for seed in 0..12u64 {
        targets.push(incline_workloads::generate(seed, GenConfig::default()));
    }
    targets
}

#[test]
fn snapshots_are_byte_identical_across_compile_threads() {
    // The format sorts every map before writing, and in barrier mode the
    // worker-pool size is observably invisible — so the snapshot written
    // at the end of a run must not depend on `compile_threads` either.
    for w in corpus() {
        let (_, reference) = cold_run(&w, 0);
        for threads in [1usize, 4] {
            let (_, bytes) = cold_run(&w, threads);
            assert_eq!(
                reference, bytes,
                "{}: snapshot bytes differ between compile_threads=0 and {threads}",
                w.name
            );
        }
        // Parse → re-serialize is the identity on valid snapshots.
        let snap = Snapshot::from_bytes(&reference)
            .unwrap_or_else(|e| panic!("{}: snapshot must parse: {e}", w.name));
        assert_eq!(
            snap.to_bytes(),
            reference,
            "{}: re-serialization must be byte-identical",
            w.name
        );
    }
}

#[test]
fn eager_and_seeded_replay_produce_cold_answers() {
    // The replay correctness property: a replayed run must compute
    // byte-identical answers (output digest, final value, per-tenant
    // semantics) to the cold run it was snapshotted from, in both modes,
    // across the worker-pool matrix.
    for w in corpus() {
        let (cold, bytes) = cold_run(&w, 0);
        for replay in [ReplayMode::Eager, ReplayMode::Seed] {
            let reference = warm_run(&w, bytes.clone(), 0, replay);
            assert_eq!(
                cold.answer_digest(),
                reference.answer_digest(),
                "{}: answers diverged under {replay:?} replay",
                w.name
            );
            assert_eq!(cold.final_value, reference.final_value, "{}", w.name);
            assert_eq!(cold.final_output, reference.final_output, "{}", w.name);
            // Replay itself is deterministic across the pool size.
            for threads in [1usize, 4] {
                let out = warm_run(&w, bytes.clone(), threads, replay);
                assert_eq!(
                    reference, out,
                    "{}: replayed BenchResult differs between compile_threads=0 and \
                     {threads} under {replay:?}",
                    w.name
                );
            }
        }
    }
}

#[test]
fn eager_replay_eliminates_warmup_on_paper_workloads() {
    for w in incline_workloads::all_benchmarks() {
        let (cold, bytes) = cold_run(&w, 0);
        let warm = warm_run(&w, bytes, 0, ReplayMode::Eager);
        assert!(
            warm.warmup_cycles_within(0.05) <= cold.warmup_cycles_within(0.05),
            "{}: eager replay must not warm up slower than cold \
             (warm {} vs cold {} cycles)",
            w.name,
            warm.warmup_cycles_within(0.05),
            cold.warmup_cycles_within(0.05)
        );
    }
}

/// Asserts that a session fed `bytes` falls back to a cold start: one
/// fallback counted, zero loads, and a `BenchResult` equal to the cold
/// run's in every field except the snapshot counters.
fn assert_cold_fallback(w: &Workload, cold: &BenchResult, bytes: Vec<u8>, what: &str) {
    let out = warm_run(w, bytes, 0, ReplayMode::Eager);
    assert_eq!(
        out.snapshot.fallbacks, 1,
        "{}: {what}: fallback must be counted",
        w.name
    );
    assert_eq!(out.snapshot.loaded, 0, "{}: {what}: nothing loaded", w.name);
    let mut masked = out.clone();
    masked.snapshot = cold.snapshot;
    assert_eq!(
        &masked, cold,
        "{}: {what}: fallback run must equal the cold run",
        w.name
    );
}

#[test]
fn corrupt_snapshots_degrade_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let (cold, bytes) = cold_run(&w, 0);

    // Truncations at several depths, including into the checksum digits.
    // (Losing only the trailing newline is tolerated: the footer and the
    // checksummed body are still intact.)
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 2] {
        assert_cold_fallback(&w, &cold, bytes[..cut].to_vec(), "truncated");
    }
    // Bit flips sprinkled through the body trip the checksum (or the
    // parser); either way the run degrades, never panics.
    for pos in (0..bytes.len()).step_by(97) {
        let mut flipped = bytes.clone();
        flipped[pos] ^= 0x10;
        assert_cold_fallback(&w, &cold, flipped, "bit-flipped");
    }
    // Version bump with a *valid* checksum: only the version check fires.
    let text = String::from_utf8(bytes.clone()).unwrap();
    let body = text
        .split_once("{\"rec\":\"end\"")
        .map(|(b, _)| b.replace("\"v\":1", "\"v\":2"))
        .unwrap();
    let bumped = format!(
        "{body}{{\"rec\":\"end\",\"crc\":\"{:016x}\"}}\n",
        fnv1a(body.as_bytes())
    );
    assert_cold_fallback(&w, &cold, bumped.into_bytes(), "version-bumped");
    // Garbage that is not even JSONL.
    assert_cold_fallback(&w, &cold, b"not a snapshot at all".to_vec(), "garbage");
}

#[test]
fn stale_snapshot_from_another_program_degrades_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let other = incline_workloads::by_name("avrora").unwrap();
    let (cold, _) = cold_run(&w, 0);
    let (_, stale) = cold_run(&other, 0);
    // Valid bytes, valid checksum — but the program fingerprint differs.
    assert_cold_fallback(&w, &cold, stale, "stale-program");
}

#[test]
fn empty_store_degrades_to_cold_start() {
    let w = incline_workloads::by_name("scalatest").unwrap();
    let (cold, _) = cold_run(&w, 0);
    let out = RunSession::new(&w.program, spec(&w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(0, ReplayMode::Eager))
        .snapshot_in(Arc::new(MemoryStore::new()))
        .run()
        .unwrap();
    assert_eq!(out.snapshot.fallbacks, 1);
    let mut masked = out.clone();
    masked.snapshot = cold.snapshot;
    assert_eq!(masked, cold);
}

/// Cold-runs `w` with explicit `iterations`/`input` overrides and returns
/// the snapshot it wrote — the way fleet replicas diverge: same program,
/// different traffic.
fn replica_run(w: &Workload, iterations: usize, input: i64) -> Vec<u8> {
    let store = Arc::new(MemoryStore::new());
    RunSession::new(
        &w.program,
        BenchSpec {
            entry: w.entry,
            args: vec![Value::Int(input)],
            iterations,
        },
    )
    .inliner(Box::new(IncrementalInliner::new()))
    .config(config(0, ReplayMode::Eager))
    .snapshot_out(store.clone())
    .run()
    .unwrap_or_else(|e| panic!("{}: replica run failed: {e}", w.name));
    store.bytes().expect("replica run must write a snapshot")
}

fn parse(bytes: &[u8]) -> Snapshot {
    Snapshot::from_bytes(bytes).expect("replica snapshot must parse")
}

/// Three replicas of `w` under diverged traffic: same program
/// fingerprint, different iteration counts and inputs. Replicas whose
/// profiles froze at the same compile point may still come out
/// byte-identical — the merge dedups those, and the tests must hold
/// either way.
fn divergent_replicas(w: &Workload) -> Vec<Snapshot> {
    let base = w.input.clamp(2, 8);
    vec![
        parse(&replica_run(w, 4, base)),
        parse(&replica_run(w, 6, base + 1)),
        parse(&replica_run(w, 9, base + 2)),
    ]
}

/// A synthetic replica: `snap` with every profile count multiplied by
/// `k` — the shape a longer-lived replica of identical traffic would
/// have. Decisions are untouched, so scaled replicas never conflict.
fn scaled(snap: &Snapshot, k: u64) -> Snapshot {
    let mut out = snap.clone();
    for m in &mut out.methods {
        m.invocations *= k;
        m.backedges *= k;
        for (_, n) in &mut m.blocks {
            *n *= k;
        }
        for (_, n) in &mut m.callsites {
            *n *= k;
        }
        for (_, hist) in &mut m.receivers {
            for (_, n) in hist {
                *n *= k;
            }
        }
    }
    out
}

#[test]
fn merge_is_permutation_invariant_and_idempotent() {
    use incline_vm::snapshot::MergePolicy;
    const PERMS: [[usize; 3]; 6] = [
        [0, 1, 2],
        [0, 2, 1],
        [1, 0, 2],
        [1, 2, 0],
        [2, 0, 1],
        [2, 1, 0],
    ];
    let policy = MergePolicy::with_support(2);
    for w in corpus() {
        let replicas = divergent_replicas(&w);
        let reference = Snapshot::merge(&replicas, &policy)
            .unwrap_or_else(|e| panic!("{}: merge failed: {e}", w.name))
            .snapshot
            .to_bytes();
        for perm in PERMS {
            let shuffled: Vec<Snapshot> = perm.iter().map(|&i| replicas[i].clone()).collect();
            let merged = Snapshot::merge(&shuffled, &policy).unwrap().snapshot;
            assert_eq!(
                merged.to_bytes(),
                reference,
                "{}: merged snapshot depends on replica order {perm:?}",
                w.name
            );
        }
        // Idempotence: byte-identical replicas are deduplicated, so
        // feeding every replica twice changes nothing but the counters.
        let mut doubled = replicas.clone();
        doubled.extend(replicas.iter().cloned());
        let merged = Snapshot::merge(&doubled, &policy).unwrap();
        assert_eq!(
            merged.snapshot.to_bytes(),
            reference,
            "{}: duplicate replicas must not change the merge",
            w.name
        );
        assert_eq!(
            merged.stats.replicas + merged.stats.duplicates,
            6,
            "{}",
            w.name
        );
        assert!(merged.stats.duplicates >= 3, "{}", w.name);
        // Pure idempotence: merging a replica with itself N times equals
        // merging it once.
        let one = Snapshot::merge(&replicas[..1], &policy).unwrap().snapshot;
        let thrice = Snapshot::merge(
            &[
                replicas[0].clone(),
                replicas[0].clone(),
                replicas[0].clone(),
            ],
            &policy,
        )
        .unwrap()
        .snapshot;
        assert_eq!(
            one.to_bytes(),
            thrice.to_bytes(),
            "{}: merge must be idempotent",
            w.name
        );
    }
}

#[test]
fn merge_is_associative_on_conflict_free_replicas() {
    // Conflict-free replicas: identical decision plans, distinct profile
    // weights (replicas of the same traffic observed for different
    // lifetimes, one of which hadn't tiered its last method up yet). On
    // such sets profile union is pure count addition and every ballot
    // agrees, so grouping must not matter. Conflict *resolution* is
    // deliberately a single N-way vote — majority-with-pruning is not
    // associative under disagreement — and is covered by the unit tests.
    use incline_vm::snapshot::MergePolicy;
    let policy = MergePolicy::with_support(1);
    for w in corpus() {
        let a = parse(&replica_run(&w, 6, w.input.min(8)));
        let b = scaled(&a, 2);
        let mut c = scaled(&a, 3);
        c.decisions.pop();
        let all = Snapshot::merge(&[a.clone(), b.clone(), c.clone()], &policy)
            .unwrap()
            .snapshot
            .to_bytes();
        let ab = Snapshot::merge(&[a.clone(), b.clone()], &policy)
            .unwrap()
            .snapshot;
        let bc = Snapshot::merge(&[b, c.clone()], &policy).unwrap().snapshot;
        let left = Snapshot::merge(&[ab, c], &policy).unwrap().snapshot;
        let right = Snapshot::merge(&[a, bc], &policy).unwrap().snapshot;
        assert_eq!(
            left.to_bytes(),
            all,
            "{}: merge((a,b),c) differs from merge(a,b,c)",
            w.name
        );
        assert_eq!(
            right.to_bytes(),
            all,
            "{}: merge(a,(b,c)) differs from merge(a,b,c)",
            w.name
        );
    }
}

#[test]
fn merged_replay_matches_cold_answers_across_compile_threads() {
    for w in corpus() {
        // Guaranteed-distinct replica set: one real run plus two
        // count-scaled variants of it (so dedup never collapses the set),
        // shipped as raw bytes the way the CLI's --snapshot-merge does.
        let base = parse(&replica_run(&w, 6, w.input.min(8)));
        let replicas: Vec<Vec<u8>> = [base.clone(), scaled(&base, 2), scaled(&base, 3)]
            .iter()
            .map(Snapshot::to_bytes)
            .collect();
        let cold = RunSession::new(&w.program, spec(&w))
            .inliner(Box::new(IncrementalInliner::new()))
            .config(config(0, ReplayMode::Eager))
            .run()
            .unwrap();
        let mut reference: Option<BenchResult> = None;
        for threads in [0usize, 1, 4] {
            let out = RunSession::new(&w.program, spec(&w))
                .inliner(Box::new(IncrementalInliner::new()))
                .config(config(threads, ReplayMode::Eager))
                .snapshot_merge(replicas.iter().map(|b| b.clone().into()).collect())
                .run()
                .unwrap();
            assert_eq!(
                out.snapshot.merged, 3,
                "{}: all three replicas must fold into the merge",
                w.name
            );
            assert_eq!(
                cold.answer_digest(),
                out.answer_digest(),
                "{}: merged replay diverged from the cold answer",
                w.name
            );
            match &reference {
                None => reference = Some(out),
                Some(r) => assert_eq!(
                    r, &out,
                    "{}: merged replay differs at compile_threads={threads}",
                    w.name
                ),
            }
        }
    }
}

#[test]
fn atomic_file_store_overwrite_leaves_no_partial_state() {
    use incline_vm::snapshot::FileStore;
    let w = incline_workloads::by_name("scalatest").unwrap();
    let path = std::env::temp_dir().join(format!("incline-atomic-{}.jsonl", std::process::id()));
    let first = replica_run(&w, 4, 4);
    let second = replica_run(&w, 9, 8);
    let store = FileStore::new(&path);
    store.write(&first).unwrap();
    store.write(&second).unwrap();
    // The rename is the commit point: the file holds exactly the second
    // snapshot and the staging file is gone.
    assert_eq!(std::fs::read(&path).unwrap(), second);
    let leftovers: Vec<_> = std::fs::read_dir(std::env::temp_dir())
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.starts_with("incline-atomic-") && n.ends_with(".tmp"))
        .collect();
    std::fs::remove_file(&path).ok();
    assert!(
        leftovers.is_empty(),
        "staging files left behind: {leftovers:?}"
    );
}

#[test]
fn truncated_tail_on_disk_degrades_to_cold_start() {
    // A torn tail is what a crashed *non-atomic* writer would leave; the
    // reader must treat it exactly like any corrupt snapshot.
    let w = incline_workloads::by_name("scalatest").unwrap();
    let path = std::env::temp_dir().join(format!("incline-torn-{}.jsonl", std::process::id()));
    let (cold, bytes) = cold_run(&w, 0);
    std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
    let out = RunSession::new(&w.program, spec(&w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(0, ReplayMode::Eager))
        .snapshot_in(path.as_path())
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(out.snapshot.fallbacks, 1);
    assert_eq!(out.snapshot.loaded, 0);
    let mut masked = out.clone();
    masked.snapshot = cold.snapshot;
    assert_eq!(masked, cold, "torn-tail run must equal the cold run");
}

#[test]
fn file_store_round_trips_through_disk() {
    use incline_vm::snapshot::FileStore;
    let w = incline_workloads::by_name("scalatest").unwrap();
    let path = std::env::temp_dir().join(format!("incline-snap-{}.jsonl", std::process::id()));
    let (cold, bytes) = cold_run(&w, 0);
    FileStore::new(&path).write(&bytes).unwrap();
    let warm = RunSession::new(&w.program, spec(&w))
        .inliner(Box::new(IncrementalInliner::new()))
        .config(config(0, ReplayMode::Eager))
        .snapshot_in(path.as_path())
        .run()
        .unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(warm.snapshot.loaded, 1);
    assert_eq!(cold.answer_digest(), warm.answer_digest());
}
