//! Compile-broker stress tests: hundreds of methods pushed through the
//! queue in a seeded random interleaving of enqueues, invalidations,
//! synchronous compiles and drains, across worker-pool sizes. The
//! invariants under test are the broker's bookkeeping laws — no request is
//! ever lost, no method is ever double-installed, and the code-cache byte
//! accounting is exactly symmetric (installing then invalidating
//! everything returns `installed_bytes` to zero).

use incline_ir::{FunctionBuilder, MethodId, Program, Rng64, Type};
use incline_vm::{
    BailoutCounters, FaultKind, FaultPlan, Machine, NoInline, QueueStats, Value, VmConfig,
};

/// A program with `n` tiny distinct methods (`f_i(x) = x + i`), plus an
/// entry point so the machine has something executable if needed.
fn many_methods(n: usize) -> (Program, Vec<MethodId>) {
    let mut p = Program::new();
    let mut methods = Vec::with_capacity(n);
    for i in 0..n {
        let m = p.declare_function(format!("f{i}"), vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let k = fb.const_int(i as i64);
        let r = fb.iadd(x, k);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(m, g);
        methods.push(m);
    }
    (p, methods)
}

/// Drives one machine through `steps` seeded random queue operations and
/// returns the observable fingerprint of the run.
fn stress(
    program: &Program,
    methods: &[MethodId],
    threads: usize,
    plan: FaultPlan,
    steps: usize,
) -> (QueueStats, u64, u64, BailoutCounters) {
    let config = VmConfig {
        compile_threads: threads,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(program, Box::new(NoInline), config);
    vm.set_fault_plan(plan);
    let mut rng = Rng64::new(0xC0FF_EE00);
    for _ in 0..steps {
        let m = methods[rng.gen_index(methods.len())];
        match rng.gen_index(10) {
            // Mostly enqueues: build up batches so drains actually hand
            // multiple requests to the worker pool at once.
            0..=4 => {
                vm.enqueue_compile(m);
            }
            // Invalidations race against pending requests for the same
            // method (a no-op while the code is not yet installed).
            5 | 6 => {
                vm.invalidate_code(m);
            }
            // Periodic drains flush whatever batch accumulated.
            7 | 8 => {
                vm.drain_compile_queue();
            }
            // Synchronous compile: enqueue + drain in one call, mixed in
            // with the batched traffic.
            _ => {
                vm.compile_now(m);
            }
        }
    }
    vm.drain_compile_queue();
    let stats = vm.queue_stats();
    assert_eq!(vm.pending_compiles(), 0, "final drain left requests behind");
    // Every request that went in came out: nothing lost, nothing invented.
    assert_eq!(
        stats.enqueued, stats.completed,
        "lost or duplicated compile requests (threads={threads})"
    );
    // Every completion either installed code or blacklisted the method.
    assert_eq!(
        stats.installed + vm.bailouts().blacklisted,
        stats.completed,
        "completions must split into installs and blacklists (threads={threads})"
    );
    let bytes_at_peak = vm.installed_bytes();
    let compilations = vm.compilations();
    let bailouts = vm.bailouts();
    // Symmetry: tearing every install down again returns the byte
    // accounting to exactly zero. A double-install (or a missed
    // invalidation) leaves a residue here.
    for &m in methods {
        vm.invalidate_code(m);
    }
    assert_eq!(
        vm.installed_bytes(),
        0,
        "install/invalidate byte accounting must be symmetric (threads={threads})"
    );
    (stats, bytes_at_peak, compilations, bailouts)
}

#[test]
fn queue_stress_invariants_hold_across_worker_pools() {
    let (p, methods) = many_methods(300);
    let reference = stress(&p, &methods, 0, FaultPlan::new(), 3000);
    assert!(
        reference.0.enqueued > 500,
        "the schedule should generate real traffic, got {:?}",
        reference.0
    );
    assert!(reference.2 > 0, "some methods must have compiled");
    for threads in [1usize, 2, 4, 8] {
        let got = stress(&p, &methods, threads, FaultPlan::new(), 3000);
        assert_eq!(
            reference, got,
            "queue observables must not depend on worker-pool size"
        );
    }
}

#[test]
fn queue_stress_with_injected_faults_still_balances() {
    // Sprinkle compile-path faults over the same schedule: panics and
    // fuel exhaustion fail the full tier (the degraded rung still
    // installs), so the ledger must balance with bailouts in the mix.
    let (p, methods) = many_methods(120);
    let mut plan = FaultPlan::new();
    for r in 0..2000u64 {
        match r % 13 {
            0 => plan = plan.inject(r, FaultKind::PanicInCompile),
            5 => plan = plan.inject(r, FaultKind::ExhaustFuel),
            9 => plan = plan.inject(r, FaultKind::CorruptGraph),
            _ => {}
        }
    }
    let reference = stress(&p, &methods, 0, plan.clone(), 2000);
    assert!(
        reference.3.full_tier > 0,
        "the fault plan must actually trip full-tier bailouts: {:?}",
        reference.3
    );
    for threads in [1usize, 4] {
        let got = stress(&p, &methods, threads, plan.clone(), 2000);
        assert_eq!(
            reference, got,
            "fault handling must not depend on worker-pool size"
        );
    }
}

#[test]
fn recompilation_after_invalidation_goes_through_the_queue() {
    // Deterministic micro-check of the enqueue guards: a second enqueue
    // while a request is in flight is refused, as is one while code is
    // installed; invalidation re-opens the gate.
    let (p, methods) = many_methods(1);
    let m = methods[0];
    let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig::default());
    assert!(vm.enqueue_compile(m), "first enqueue must be accepted");
    assert!(
        !vm.enqueue_compile(m),
        "in-flight guard must refuse a second"
    );
    assert_eq!(vm.pending_compiles(), 1);
    vm.drain_compile_queue();
    assert_eq!(vm.queue_stats().installed, 1);
    assert!(
        !vm.enqueue_compile(m),
        "installed code must refuse re-enqueue"
    );
    vm.invalidate_code(m);
    assert!(vm.enqueue_compile(m), "invalidation re-opens compilation");
    vm.drain_compile_queue();
    let stats = vm.queue_stats();
    assert_eq!(
        (stats.enqueued, stats.completed, stats.installed),
        (2, 2, 2)
    );
    // The recompile kept the byte accounting symmetric.
    let bytes = vm.installed_bytes();
    assert!(bytes > 0);
    vm.invalidate_code(m);
    assert_eq!(vm.installed_bytes(), 0);
    // Executing the freshly compiled method still works.
    let out = vm.run(m, vec![Value::Int(41)]).unwrap();
    assert_eq!(out.value, Some(Value::Int(41)));
}
