//! End-to-end deoptimization tests: the phase-change workload drives the
//! full invalidate → reprofile → recompile cycle through real compiled
//! code, and everything is observed purely from the [`CompileEvent`]
//! stream, the bailout counters, and the installed graphs — never from
//! internal state.
//!
//! The workload dispatches `area` on `Square` receivers for the first half
//! of each run and on `Tri` receivers for the second half. With
//! deoptimization enabled, the hot `step` method compiles against a
//! monomorphic `Square` profile, speculates with an uncommon trap, traps
//! at the flip, rolls back, replays interpreted, and recompiles against
//! the merged profile — which must cover the new dominant receiver.

use std::sync::Arc;

use incline::ir::graph::{Op, Terminator};
use incline::ir::Graph;
use incline::prelude::*;

fn phase_change() -> Workload {
    by_name("phase_change").expect("extra benchmark exists")
}

/// The classes guarded by `InstanceOf` tests anywhere in `graph`.
fn guarded_classes(graph: &Graph) -> Vec<incline::ir::ClassId> {
    let mut out = Vec::new();
    for b in graph.block_ids() {
        for &i in &graph.block(b).insts {
            if let Op::InstanceOf(c) = graph.inst(i).op {
                out.push(c);
            }
        }
    }
    out
}

fn has_deopt_terminator(graph: &Graph) -> bool {
    graph
        .block_ids()
        .any(|b| matches!(graph.block(b).term, Terminator::Deopt { .. }))
}

#[test]
fn phase_change_deopts_then_recompiles_for_the_new_receiver() {
    let w = phase_change();

    // Interpreted ground truth.
    let mut reference = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    let expected = reference
        .run(w.entry, vec![Value::Int(w.input)])
        .expect("reference runs");

    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    let sink = Arc::new(CollectingSink::new());
    vm.set_trace_sink(sink.clone());
    for _ in 0..6 {
        let out = vm
            .run(w.entry, vec![Value::Int(w.input)])
            .expect("run completes");
        assert_eq!(out.value, expected.value, "no divergence from interpreter");
        assert_eq!(out.output, expected.output, "no output divergence");
    }

    let b = vm.bailouts();
    assert!(b.deopts >= 1, "the receiver flip must trap");
    assert!(b.invalidations >= 1);
    assert!(b.recompiles >= 1, "the trapped method must come back");
    assert_eq!(b.pinned, 0, "one phase flip is far below the recompile cap");

    let step = w.program.function_by_name("step").expect("step exists");
    let square = w.program.class_by_name("Square").expect("Square exists");
    let tri = w.program.class_by_name("Tri").expect("Tri exists");

    let events = sink.take();
    // The trap is attributed to the speculating method with the paper's
    // uncovered-receiver reason.
    assert!(
        events.iter().any(|e| matches!(
            e,
            CompileEvent::Deoptimized { method, reason }
                if *method == step && reason == "uncovered_receiver"
        )),
        "step must deoptimize on the uncovered receiver"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CompileEvent::CodeInvalidated { method, .. } if *method == step)),
        "step's code must be invalidated"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, CompileEvent::Recompiled { method, .. } if *method == step)),
        "step must be recompiled after reprofiling"
    );

    // The recompile saw the merged profile: the installed graph now guards
    // the new dominant receiver (and still the old one).
    let graph = vm.compiled_graph(step).expect("step ends compiled");
    let guards = guarded_classes(graph);
    assert!(
        guards.contains(&tri),
        "recompiled step must speculate on the new dominant receiver"
    );
    assert!(
        guards.contains(&square),
        "the merged profile keeps the old receiver covered"
    );
}

#[test]
fn phase_change_without_deopt_never_traps() {
    let w = phase_change();
    let config = VmConfig {
        hotness_threshold: 2,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
    for _ in 0..6 {
        vm.run(w.entry, vec![Value::Int(w.input)])
            .expect("run completes");
    }
    let b = vm.bailouts();
    assert_eq!(b.deopts, 0);
    assert_eq!(b.invalidations, 0);
    let step = w.program.function_by_name("step").expect("step exists");
    let graph = vm.compiled_graph(step).expect("step is compiled");
    assert!(
        !has_deopt_terminator(graph),
        "without deopt support no compiled graph may contain a trap"
    );
}

/// A monomorphic cousin of `phase_change`: the receiver never flips, so a
/// deopt-enabled compile speculates with an uncommon trap that never fires.
fn monomorphic_workload() -> (incline::ir::Program, incline::ir::MethodId) {
    use incline::ir::builder::FunctionBuilder;
    use incline::ir::{BinOp, Program, Type};
    use incline::workloads::util::counted_loop;

    let mut p = Program::new();
    let shape = p.add_class("Shape", None);
    let square = p.add_class("Square", Some(shape));
    let m_square = p.declare_method(square, "area", vec![Type::Int], Type::Int);
    let sel_area = p.selector_by_name("area", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, m_square);
    let x = fb.param(1);
    let sq = fb.binop(BinOp::IMul, x, x);
    fb.ret(Some(sq));
    let g = fb.finish();
    p.define_method(m_square, g);

    let step = p.declare_function("step", vec![Type::Object(shape), Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, step);
    let recv = fb.param(0);
    let x = fb.param(1);
    let a = fb.call_virtual(sel_area, vec![recv, x]).unwrap();
    let out = fb.iadd(a, x);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(step, g);

    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let obj = fb.new_object(square);
    let recv = fb.cast(shape, obj);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let v = fb.call_static(step, vec![recv, i]).unwrap();
        vec![fb.iadd(state[0], v)]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    (p, main)
}

#[test]
fn monomorphic_profile_speculates_with_an_uncommon_trap_that_never_fires() {
    // A fully covered (monomorphic) profile must clear the confidence gate:
    // the compiled code carries the uncommon trap instead of a virtual
    // fallback — and since the speculation holds, it never fires.
    let (p, main) = monomorphic_workload();
    let config = VmConfig {
        hotness_threshold: 2,
        deopt: true,
        ..VmConfig::default()
    };
    let mut vm = Machine::new(&p, Box::new(IncrementalInliner::new()), config);
    for _ in 0..3 {
        vm.run(main, vec![Value::Int(20)]).expect("run completes");
    }
    let step = p.function_by_name("step").expect("step exists");
    let graph = vm.compiled_graph(step).expect("step is compiled");
    assert!(
        has_deopt_terminator(graph),
        "a fully covered profile must speculate with an uncommon trap"
    );
    let b = vm.bailouts();
    assert_eq!(b.deopts, 0, "a held speculation never traps");
    assert_eq!(b.invalidations, 0);
    assert_eq!(b.recompiles, 0);
}
