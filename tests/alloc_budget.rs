//! Allocation-regression gate: compiling and running every paper
//! workload under the tuned configuration (paper inliner, trial cache
//! on, synchronous broker) must stay within a checked-in per-workload
//! allocation budget.
//!
//! This test binary registers the in-repo counting allocator, so
//! [`incline_bench::compile::measure_cost`] observes real allocation
//! totals — the same protocol the `compile` bench bin uses to seed
//! `BENCH_compile.json`. Budgets are the measured totals with a 30%
//! margin: enough headroom for allocator-order jitter and small
//! legitimate growth, tight enough that a clone-heavy regression on the
//! inlining hot path (the thing the arena/trial-cache refactor removed)
//! trips the gate and names the offending workload.
//!
//! When an intentional change moves the totals, regenerate the table
//! from a fresh `BENCH_compile.json` (tuned `alloc_bytes` × 1.3).

use incline_bench::alloc::{counting_enabled, CountingAlloc};
use incline_bench::compile::measure_cost;

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Per-workload allocation budgets in bytes (tuned run, 1.3× margin).
const BUDGETS: &[(&str, u64)] = &[
    ("avrora", 1_233_092),
    ("batik", 9_627_641),
    ("fop", 10_387_791),
    ("h2", 5_755_408),
    ("jython", 29_986_130),
    ("luindex", 5_671_279),
    ("lusearch", 5_595_271),
    ("pmd", 10_781_026),
    ("sunflow", 854_172),
    ("xalan", 10_388_622),
    ("actors", 2_609_192),
    ("apparat", 2_213_950),
    ("factorie", 264_230_739),
    ("kiama", 16_531_156),
    ("scalac", 18_245_275),
    ("scaladoc", 27_962_534),
    ("scalap", 12_556_258),
    ("scalariform", 15_321_725),
    ("scalatest", 2_339_161),
    ("scalaxb", 2_192_867),
    ("specs", 1_973_705),
    ("tmt", 2_382_616),
    ("gauss-mix", 52_068_823),
    ("dec-tree", 5_585_039),
    ("naive-bayes", 3_660_469),
    ("neo4j", 4_142_602),
    ("dotty", 1_898_144),
    ("stmbench7", 2_411_169),
];

#[test]
fn per_workload_allocations_stay_within_budget() {
    assert!(
        counting_enabled(),
        "counting allocator not registered — the budget test binary must \
         declare #[global_allocator] static ALLOC: CountingAlloc"
    );
    let benches = incline_workloads::all_benchmarks();
    assert_eq!(
        benches.len(),
        BUDGETS.len(),
        "budget table out of date: {} workloads, {} budgets — add the \
         missing rows from a fresh BENCH_compile.json",
        benches.len(),
        BUDGETS.len()
    );
    let mut over = Vec::new();
    for w in &benches {
        let budget = BUDGETS
            .iter()
            .find(|(name, _)| *name == w.name)
            .unwrap_or_else(|| panic!("no allocation budget for workload {}", w.name))
            .1;
        let cost = measure_cost(w, true);
        assert!(cost.alloc_bytes > 0, "{}: window observed nothing", w.name);
        if cost.alloc_bytes > budget {
            over.push(format!(
                "{}: allocated {} bytes, budget {} ({} calls, peak {})",
                w.name, cost.alloc_bytes, budget, cost.alloc_calls, cost.alloc_peak
            ));
        }
    }
    assert!(
        over.is_empty(),
        "allocation budget exceeded on {} workload(s):\n  {}",
        over.len(),
        over.join("\n  ")
    );
}
