//! Property-based tests over the whole system, driven by the seeded
//! random-program generator: every generated program must
//!
//! * verify,
//! * round-trip through the textual printer/parser,
//! * stay verifiable under every optimization pass,
//! * and produce identical observable behavior interpreted vs. compiled.
//!
//! Each property runs over a fixed band of generator seeds (deterministic,
//! no external property-testing crate needed offline).

use incline::ir::verify::{verify, verify_graph};
use incline::ir::Rng64;
use incline::prelude::*;
use incline::workloads::{generate, GenConfig};

const CASES: u64 = 24;

fn gen_config() -> GenConfig {
    GenConfig {
        functions: 5,
        ops_per_function: 12,
        loop_prob: 0.5,
        branch_prob: 0.6,
        ..GenConfig::default()
    }
}

/// Derives `CASES` well-spread generator seeds from a property name.
fn seeds(salt: u64) -> impl Iterator<Item = u64> {
    let mut rng = Rng64::new(salt);
    (0..CASES).map(move |_| rng.next_u64())
}

#[test]
fn generated_programs_verify() {
    for seed in seeds(0x9E1) {
        let w = generate(seed, gen_config());
        for m in w.program.method_ids() {
            verify(&w.program, w.program.method(m)).expect("generated method verifies");
        }
    }
}

#[test]
fn printer_parser_fixpoint() {
    for seed in seeds(0xF1C) {
        let w = generate(seed, gen_config());
        let s1 = incline::ir::print::program_str(&w.program);
        let p2 = incline::ir::parse::parse_program(&s1).expect("printed program parses");
        let s2 = incline::ir::print::program_str(&p2);
        // One normalization round may renumber; after that it's stable.
        let p3 = incline::ir::parse::parse_program(&s2).expect("reparse");
        let s3 = incline::ir::print::program_str(&p3);
        assert_eq!(s2, s3);
    }
}

#[test]
fn every_pass_preserves_verifiability() {
    for seed in seeds(0xA55) {
        let w = generate(seed, gen_config());
        for m in w.program.method_ids() {
            let method = w.program.method(m);
            let run = |f: &dyn Fn(&mut Graph)| {
                let mut g = method.graph.clone();
                f(&mut g);
                verify_graph(&w.program, &g, &method.params, method.ret)
                    .unwrap_or_else(|e| panic!("pass broke {}: {e}", method.name));
            };
            run(&|g| {
                incline::opt::canonicalize(&w.program, g);
            });
            run(&|g| {
                incline::opt::gvn(g);
            });
            run(&|g| {
                incline::opt::rw_elim(&w.program, g);
            });
            run(&|g| {
                incline::opt::dce(g);
            });
            run(&|g| {
                incline::opt::peel_loops(&w.program, g);
            });
            run(&|g| {
                incline::opt::optimize(&w.program, g);
            });
        }
    }
}

#[test]
fn optimizer_preserves_behavior() {
    let mut rng = Rng64::new(0x0B7);
    for seed in seeds(0x0B7) {
        let input = rng.gen_range(1, 24);
        let w = generate(seed, gen_config());
        // Interpreted reference.
        let mut interp = Machine::new(
            &w.program,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let reference = interp
            .run(w.entry, vec![Value::Int(input)])
            .expect("reference runs");
        // Fully optimized program (every method), still interpreted.
        let mut optimized = w.program.clone();
        for m in optimized.method_ids().collect::<Vec<_>>() {
            let mut g = optimized.method(m).graph.clone();
            incline::opt::optimize(&w.program, &mut g);
            optimized.define_method(m, g);
        }
        let mut vm = Machine::new(
            &optimized,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let out = vm
            .run(w.entry, vec![Value::Int(input)])
            .expect("optimized runs");
        assert_eq!(reference.value, out.value);
        assert_eq!(reference.output, out.output);
    }
}

#[test]
fn incremental_inliner_preserves_behavior() {
    let mut rng = Rng64::new(0x1C4);
    for seed in seeds(0x1C4) {
        let input = rng.gen_range(1, 20);
        let w = generate(seed, gen_config());
        let mut interp = Machine::new(
            &w.program,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let reference = interp
            .run(w.entry, vec![Value::Int(input)])
            .expect("reference runs");
        let config = VmConfig {
            hotness_threshold: 2,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
        let mut out = vm.run(w.entry, vec![Value::Int(input)]).expect("first run");
        for _ in 0..2 {
            out = vm.run(w.entry, vec![Value::Int(input)]).expect("warm run");
        }
        assert_eq!(reference.value, out.value);
        assert_eq!(reference.output, out.output);
    }
}
