//! Structural invariants of the partial call tree across expansion, over
//! the paper benchmarks and seeded random programs.

use incline::core::calltree::{CallTree, NodeKind};
use incline::core::policy::PolicyConfig;
use incline::prelude::*;
use incline::workloads::{generate, GenConfig};

/// Builds the tree for `entry` with profiles from interpretation, then
/// expands greedily until nothing is left under a node-count cap.
fn build_expanded(w: &Workload) -> (CallTree, incline::profile::ProfileTable) {
    let mut vm = Machine::new(
        &w.program,
        Box::new(NoInline),
        VmConfig {
            jit: false,
            ..VmConfig::default()
        },
    );
    vm.run(w.entry, vec![Value::Int(w.input.min(8))])
        .expect("profiling run");
    let profiles = vm.profiles().clone();
    let config = PolicyConfig::tuned();
    let mut tree = {
        let cx = CompileCx::new(&w.program, &profiles);
        let mut graph = w.program.method(w.entry).graph.clone();
        incline::opt::optimize(&w.program, &mut graph);
        CallTree::new(w.entry, graph, &cx, &config)
    };
    // Expand every cutoff breadth-first until the cap.
    let cx = CompileCx::new(&w.program, &profiles);
    let mut budget = 300usize;
    loop {
        let next = tree
            .node_ids()
            .find(|&n| tree.node(n).kind == NodeKind::Cutoff && budget > 0);
        match next {
            Some(n) => {
                tree.expand_node(n, &cx, &config);
                budget -= 1;
            }
            None => break,
        }
        if budget == 0 {
            break;
        }
    }
    (tree, profiles)
}

fn check_invariants(w: &Workload, tree: &CallTree, profiles: &incline::profile::ProfileTable) {
    let cx = CompileCx::new(&w.program, profiles);
    let mut cutoffs = 0usize;
    for n in tree.node_ids() {
        let node = tree.node(n);
        // Parent/child agreement.
        for &c in &node.children {
            assert_eq!(
                tree.node(c).parent,
                Some(n),
                "{}: child {c:?} parent mismatch",
                w.name
            );
        }
        match node.kind {
            NodeKind::Root => assert!(node.parent.is_none()),
            NodeKind::Expanded => {
                assert!(
                    node.graph.is_some(),
                    "{}: expanded node without graph",
                    w.name
                );
                // The specialized graph verifies against the declared
                // signature (possibly narrowed params).
                let m = node.method.expect("expanded node has a target");
                let md = w.program.method(m);
                incline::ir::verify::verify_graph(
                    &w.program,
                    node.graph.as_ref().unwrap(),
                    &md.params,
                    md.ret,
                )
                .unwrap_or_else(|e| panic!("{}: specialized {} invalid: {e}", w.name, md.name));
            }
            NodeKind::Cutoff => {
                cutoffs += 1;
                assert!(node.graph.is_none());
                assert!(node.method.is_some());
            }
            NodeKind::Polymorphic => {
                assert!(node.method.is_none());
                assert!(
                    !node.children.is_empty(),
                    "{}: P node without targets",
                    w.name
                );
                let psum: f64 = node.children.iter().map(|&c| tree.node(c).poly_prob).sum();
                assert!(
                    psum <= 1.0 + 1e-9,
                    "{}: target probabilities exceed 1: {psum}",
                    w.name
                );
                for &c in &node.children {
                    assert!(tree.node(c).speculated_class.is_some());
                }
            }
            _ => {}
        }
        // Frequencies are finite and non-negative.
        assert!(
            node.freq.is_finite() && node.freq >= 0.0,
            "{}: bad freq {}",
            w.name,
            node.freq
        );
    }
    // Aggregate metrics agree with a recount.
    let metrics = tree.subtree_metrics(tree.root(), &cx);
    assert_eq!(metrics.n_c, cutoffs, "{}: N_c mismatch", w.name);
    assert!(
        metrics.s_b <= metrics.s_ir + 1e-9,
        "{}: S_b must not exceed S_ir",
        w.name
    );
    assert!(
        metrics.s_ir >= tree.root_graph.size() as f64,
        "{}: S_ir includes the root",
        w.name
    );
}

#[test]
fn invariants_hold_on_paper_benchmarks() {
    for name in [
        "scalatest",
        "factorie",
        "jython",
        "stmbench7",
        "neo4j",
        "gauss-mix",
    ] {
        let w = incline::workloads::by_name(name).unwrap();
        let (tree, profiles) = build_expanded(&w);
        check_invariants(&w, &tree, &profiles);
    }
}

#[test]
fn invariants_hold_on_random_programs() {
    for seed in 200..215u64 {
        let w = generate(seed, GenConfig::default());
        let (tree, profiles) = build_expanded(&w);
        check_invariants(&w, &tree, &profiles);
    }
}

#[test]
fn recursion_depth_monotone_down_chains() {
    let w = incline::workloads::by_name("batik").unwrap(); // recursive visitor
    let (tree, _) = build_expanded(&w);
    for n in tree.node_ids() {
        let node = tree.node(n);
        if let (Some(parent), Some(m)) = (node.parent, node.method) {
            let parent_depth = tree.node(parent).rec_depth;
            if tree.node(parent).method == Some(m) {
                assert!(
                    node.rec_depth >= parent_depth,
                    "recursion depth must not decrease"
                );
            }
        }
    }
}
