//! Drift-harness system tests: a snapshot taken under phase-A traffic and
//! replayed against drifted phase-B traffic must compute cold answers,
//! recover within the documented bound, and produce byte-identical
//! observables whatever the compile-worker pool size.

use incline_bench::drift;

fn sample() -> Vec<incline::workloads::Workload> {
    ["scalatest", "avrora", "phase_change", "jython", "scaladoc"]
        .iter()
        .map(|n| incline::workloads::by_name(n).expect("benchmark exists"))
        .collect()
}

#[test]
fn drift_observables_are_identical_across_compile_threads() {
    for w in sample() {
        let reference = drift::measure_with_threads(&w, 0);
        assert!(
            reference.digest_match(),
            "{}: warm phase-B answer diverged from cold",
            w.name
        );
        for threads in [1usize, 4] {
            let out = drift::measure_with_threads(&w, threads);
            assert_eq!(
                reference.cold, out.cold,
                "{}: cold phase-B run differs at compile_threads={threads}",
                w.name
            );
            assert_eq!(
                reference.warm, out.warm,
                "{}: warm phase-B run differs at compile_threads={threads}",
                w.name
            );
        }
    }
}

#[test]
fn drift_recovery_stays_within_the_documented_bound() {
    for w in sample() {
        let row = drift::measure(&w);
        assert!(row.digest_match(), "{}: digest diverged", w.name);
        assert!(
            row.ratio() <= drift::MAX_RATIO,
            "{}: warm recovery {}x cold exceeds the {}x bound",
            w.name,
            row.ratio(),
            drift::MAX_RATIO
        );
    }
}
