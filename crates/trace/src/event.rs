//! The typed compilation event vocabulary.

use std::fmt;

use incline_ir::MethodId;
use incline_opt::{OptStats, PipelineStage};

/// Which run of the optimization pipeline an [`CompileEvent::OptPassStats`]
/// delta belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OptPhase {
    /// The initial cleanup pass over the root graph, before any inlining.
    Initial,
    /// The per-round pipeline run after an expand/analyze/inline round.
    Round,
    /// The final pipeline run once inlining has converged.
    Final,
    /// A trial optimization of a speculatively specialized callee body
    /// during call-tree expansion.
    Trial,
    /// A baseline inliner's single post-inlining pipeline run.
    Baseline,
    /// The degraded (inline-free) tier's pipeline run in the bailout ladder.
    Degraded,
}

impl fmt::Display for OptPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            OptPhase::Initial => "initial",
            OptPhase::Round => "round",
            OptPhase::Final => "final",
            OptPhase::Trial => "trial",
            OptPhase::Baseline => "baseline",
            OptPhase::Degraded => "degraded",
        };
        f.write_str(s)
    }
}

/// Which rung of the bailout ladder a [`CompileEvent::Bailout`] fell from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BailoutStage {
    /// The full optimizing tier (the configured inliner).
    Full,
    /// The degraded, inline-free fallback tier.
    Degraded,
}

impl fmt::Display for BailoutStage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BailoutStage::Full => f.write_str("full"),
            BailoutStage::Degraded => f.write_str("degraded"),
        }
    }
}

/// The execution tier a method lands in after a compile attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CodeTier {
    /// Fully optimized code from the configured inliner.
    Full,
    /// Inline-free code from the degraded fallback tier.
    Degraded,
    /// The method was blacklisted and stays in the interpreter.
    Interpreter,
}

impl fmt::Display for CodeTier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodeTier::Full => f.write_str("full"),
            CodeTier::Degraded => f.write_str("degraded"),
            CodeTier::Interpreter => f.write_str("interpreter"),
        }
    }
}

/// One structured event in a compilation trace.
///
/// Events are emitted in deterministic program order by the incremental
/// inliner (per-round lifecycle), the baselines, the optimization pipeline,
/// and the VM broker (tiers, bailouts, installation). Frequencies, sizes and
/// benefits mirror the paper's quantities: priorities follow Eq. 5, the
/// exploration penalty Eq. 7, expansion bars Eq. 8 and inline bars Eq. 12.
#[derive(Clone, Debug, PartialEq)]
pub enum CompileEvent {
    /// An expand/analyze/inline round is starting.
    RoundStart {
        /// Root method being compiled.
        method: MethodId,
        /// 1-based round number.
        round: u32,
        /// IR size of the root graph at round start.
        root_size: f64,
        /// Number of nodes currently in the call tree.
        tree_nodes: usize,
    },
    /// An expand/analyze/inline round finished.
    RoundEnd {
        /// Root method being compiled.
        method: MethodId,
        /// 1-based round number.
        round: u32,
        /// Call-tree nodes expanded this round.
        expanded: usize,
        /// Callsites inlined into the root this round.
        inlined: u64,
        /// IR size of the root graph after the round's cleanup pipeline.
        root_size: f64,
        /// Number of nodes in the call tree at round end.
        tree_nodes: usize,
    },
    /// A call-tree node was expanded: its callee body was copied, specialized
    /// and trial-optimized, and its own callsites became child nodes.
    NodeExpanded {
        /// The callee method that was expanded.
        method: MethodId,
        /// Paper state tag after expansion: E/C/D/G/P (see `render::kind_tag`).
        kind: char,
        /// Call frequency of the expanded callsite.
        freq: f64,
        /// Eq. 5 intrinsic priority that won this node its expansion slot.
        priority: f64,
        /// `N_s`: arguments more concrete than the formal parameters.
        ns: u32,
        /// `N_o`: simple optimizations triggered by the inlining trial.
        no: u64,
        /// Child callsite nodes attached by the expansion.
        attached: usize,
    },
    /// An expansion candidate was deferred: its benefit density fell below
    /// the adaptive expansion bar (Eq. 8).
    CutoffDeferred {
        /// The callee method left as a cutoff node.
        method: MethodId,
        /// Local benefit b_l of the deferred subtree.
        local_benefit: f64,
        /// IR size of the deferred subtree.
        ir_size: f64,
        /// Current root IR size driving the adaptive bar.
        root_ir: f64,
        /// Benefit density required by Eq. 8 for expansion.
        required_density: f64,
        /// Eq. 7 exploration penalty of the deferred subtree.
        penalty: f64,
    },
    /// The analyze phase merged a parent with one or more children into an
    /// inline cluster (Listing 6), pooling their benefit/cost tuples.
    ClusterFormed {
        /// Method of the cluster's head node (`None` for the root).
        method: Option<MethodId>,
        /// Nodes folded into the cluster, including the head.
        members: usize,
        /// Pooled benefit of the cluster tuple.
        benefit: f64,
        /// Pooled cost of the cluster tuple.
        cost: f64,
    },
    /// The inline phase decided whether to inline a candidate into the root.
    InlineDecision {
        /// Candidate method (`None` for synthetic nodes).
        method: Option<MethodId>,
        /// Benefit component of the candidate's tuple `b|c`.
        benefit: f64,
        /// Cost component of the candidate's tuple `b|c`.
        cost: f64,
        /// Benefit/cost ratio the candidate had to clear (Eq. 12), or a
        /// speculation confidence bar for baseline speculative decisions.
        threshold: f64,
        /// Root IR size at decision time.
        root_size: f64,
        /// Whether the candidate was inlined.
        accepted: bool,
    },
    /// One optimization-pipeline stage ran; `stats` is its delta.
    OptPassStats {
        /// Which pipeline invocation this delta belongs to.
        phase: OptPhase,
        /// Which stage of that invocation produced it.
        stage: PipelineStage,
        /// Counters for the transformations the stage applied.
        stats: OptStats,
    },
    /// Compile fuel was charged.
    FuelCharged {
        /// Units requested by this charge.
        amount: u64,
        /// Total units spent after the charge (capped at the fuel limit).
        spent: u64,
    },
    /// A human-readable call-tree snapshot (the `render` output) taken at a
    /// round boundary. Only emitted for enabled sinks.
    TreeSnapshot {
        /// Round the snapshot was taken after.
        round: u32,
        /// Rendered ASCII call tree.
        text: String,
    },
    /// A method transitioned to an execution tier.
    TierTransition {
        /// The method changing tiers.
        method: MethodId,
        /// The tier it landed in.
        tier: CodeTier,
    },
    /// A compile attempt bailed out of a tier.
    Bailout {
        /// The method whose compile failed.
        method: MethodId,
        /// The tier that failed.
        stage: BailoutStage,
        /// Human-readable error, as rendered by `CompileError`.
        error: String,
    },
    /// Verified machine code was installed for a method.
    CodeInstalled {
        /// The method that now has compiled code.
        method: MethodId,
        /// Modeled code size in bytes.
        bytes: u64,
        /// Final IR graph size.
        graph_size: usize,
        /// Total work nodes charged to this compilation.
        work_nodes: u64,
    },
    /// A compiled activation abandoned its speculated code and transferred
    /// back to the interpreter.
    Deoptimized {
        /// The method whose compiled activation deoptimized.
        method: MethodId,
        /// Why: `uncovered_receiver`, `drift` or `injected`.
        reason: String,
    },
    /// The broker removed a method's installed code from the code cache.
    CodeInvalidated {
        /// The method whose code was thrown away.
        method: MethodId,
        /// Modeled code bytes released back to the cache budget.
        bytes: u64,
        /// How many recompilations this method has already been granted.
        recompiles: u32,
    },
    /// A previously invalidated method was compiled again from its merged
    /// (old + fresh) profile.
    Recompiled {
        /// The method that was recompiled.
        method: MethodId,
        /// 1-based recompilation count after this install.
        recompiles: u32,
        /// Backed-off hotness threshold that gated this recompilation.
        threshold: u64,
    },
    /// A method deoptimized past the recompile cap and is now pinned to
    /// fallback-only (never `deopt`) code.
    SpeculationPinned {
        /// The pinned method.
        method: MethodId,
    },
    /// The bounded code cache evicted a method's installed code to make
    /// room under the configured budget (or on an injected `ForceEvict`).
    CodeEvicted {
        /// The method whose code was evicted.
        method: MethodId,
        /// Modeled code bytes released back to the cache budget.
        bytes: u64,
        /// Eviction policy that picked this victim (`lru`, `hotness`,
        /// `cost-benefit`, or `forced` for injected evictions).
        policy: String,
        /// Compiled activations the victim served while resident.
        resident_uses: u64,
    },
    /// Admission control refused to install a compiled package: its modeled
    /// benefit could not beat the cheapest victim, or no victim was
    /// evictable. The method stays in (or returns to) the interpreter with a
    /// backed-off re-admission bar.
    AdmissionRejected {
        /// The method whose package was rejected.
        method: MethodId,
        /// Modeled code size of the rejected package.
        bytes: u64,
        /// Why: `no_evictable_victim` or `benefit_below_bar`.
        reason: String,
    },
    /// A resident method went idle past the aging window; its eviction score
    /// floors so any policy will prefer it as a victim.
    MethodAged {
        /// The aged method.
        method: MethodId,
        /// Compiled-entry ticks since the method last ran.
        idle: u64,
    },
    /// An evicted method became hot again through the normal hotness path
    /// and was re-admitted to the code cache.
    ReTiered {
        /// The re-admitted method.
        method: MethodId,
        /// How many times this method has been evicted so far.
        evictions: u32,
    },
    /// The server simulation finished serving one request (emitted by
    /// `incline_vm::server` from the mutator loop, not by the compiler).
    RequestRetired {
        /// Name of the tenant the request belonged to.
        tenant: String,
        /// Global request sequence number (arrival order, 0-based).
        request: u64,
        /// End-to-end latency in virtual cycles (queueing + execution +
        /// mutator-visible compile stall).
        latency: u64,
        /// The mutator-visible compile stall portion of the latency.
        stall: u64,
    },
    /// Compile-queue depth sampled at a request boundary of the server
    /// simulation — the queue-depth-over-time timeline.
    QueueDepth {
        /// Global request sequence number at which the sample was taken.
        request: u64,
        /// Compilations enqueued or in flight at the sample point.
        depth: u64,
    },
    /// A warmup snapshot was parsed, fingerprint-checked and applied before
    /// the run started.
    SnapshotLoaded {
        /// Method profiles seeded from the snapshot.
        methods: u64,
        /// Compile decisions carried by the snapshot.
        decisions: u64,
        /// Replay mode applied: `eager` or `seed`.
        mode: String,
    },
    /// A snapshot could not be applied (stale, corrupt, version mismatch,
    /// unreadable) and the machine fell back to a cold start.
    SnapshotFallback {
        /// Human-readable reason, as rendered by `SnapshotError`.
        reason: String,
    },
    /// End-of-run profile + decision-log snapshot was serialized and handed
    /// to its store.
    SnapshotWritten {
        /// Method profiles captured.
        methods: u64,
        /// Compile decisions captured.
        decisions: u64,
        /// Serialized snapshot size in bytes.
        bytes: u64,
    },
    /// N replica snapshots were merged into one before the run: profile
    /// histograms unioned with weighted counts, the decision log settled by
    /// majority vote (ties broken by total observed hotness).
    SnapshotMerged {
        /// Distinct replica snapshots that contributed.
        replicas: u64,
        /// Method profiles in the merged snapshot.
        methods: u64,
        /// Compile decisions that survived the vote and the support check.
        decisions: u64,
        /// Methods on which replicas voted for different decisions.
        conflicts: u64,
        /// Decisions dropped because the merged profile no longer
        /// justified them.
        aged_out: u64,
    },
    /// A replayed snapshot decision deoptimized within its first K compiled
    /// activations and was quarantined: code dropped, seeded profile rolled
    /// back, the decision excluded from the next `snapshot_out`.
    DecisionPoisoned {
        /// The quarantined method.
        method: MethodId,
        /// Compiled activations the replayed code served before the deopt.
        activations: u64,
        /// The attribution window K it fell inside.
        window: u64,
    },
    /// A snapshot-merge support check dropped a decision the merged profile
    /// no longer justifies (the method's observed hotness fell below the
    /// support bar).
    DecisionAgedOut {
        /// The method whose decision was dropped.
        method: MethodId,
        /// The method's hotness in the merged profile.
        hotness: u64,
        /// The support bar it failed to meet.
        required: u64,
    },
}

impl CompileEvent {
    /// Short name of the event variant, matching the JSONL `"ev"` key.
    pub fn name(&self) -> &'static str {
        match self {
            CompileEvent::RoundStart { .. } => "RoundStart",
            CompileEvent::RoundEnd { .. } => "RoundEnd",
            CompileEvent::NodeExpanded { .. } => "NodeExpanded",
            CompileEvent::CutoffDeferred { .. } => "CutoffDeferred",
            CompileEvent::ClusterFormed { .. } => "ClusterFormed",
            CompileEvent::InlineDecision { .. } => "InlineDecision",
            CompileEvent::OptPassStats { .. } => "OptPassStats",
            CompileEvent::FuelCharged { .. } => "FuelCharged",
            CompileEvent::TreeSnapshot { .. } => "TreeSnapshot",
            CompileEvent::TierTransition { .. } => "TierTransition",
            CompileEvent::Bailout { .. } => "Bailout",
            CompileEvent::CodeInstalled { .. } => "CodeInstalled",
            CompileEvent::Deoptimized { .. } => "Deoptimized",
            CompileEvent::CodeInvalidated { .. } => "CodeInvalidated",
            CompileEvent::Recompiled { .. } => "Recompiled",
            CompileEvent::SpeculationPinned { .. } => "SpeculationPinned",
            CompileEvent::CodeEvicted { .. } => "CodeEvicted",
            CompileEvent::AdmissionRejected { .. } => "AdmissionRejected",
            CompileEvent::MethodAged { .. } => "MethodAged",
            CompileEvent::ReTiered { .. } => "ReTiered",
            CompileEvent::RequestRetired { .. } => "RequestRetired",
            CompileEvent::QueueDepth { .. } => "QueueDepth",
            CompileEvent::SnapshotLoaded { .. } => "SnapshotLoaded",
            CompileEvent::SnapshotFallback { .. } => "SnapshotFallback",
            CompileEvent::SnapshotWritten { .. } => "SnapshotWritten",
            CompileEvent::SnapshotMerged { .. } => "SnapshotMerged",
            CompileEvent::DecisionPoisoned { .. } => "DecisionPoisoned",
            CompileEvent::DecisionAgedOut { .. } => "DecisionAgedOut",
        }
    }

    /// The method this event is about, when it carries one.
    ///
    /// For inliner-internal events ([`CompileEvent::NodeExpanded`],
    /// [`CompileEvent::CutoffDeferred`], [`CompileEvent::ClusterFormed`],
    /// [`CompileEvent::InlineDecision`]) this is the *callee* under
    /// consideration, not the compilation root; lifecycle events
    /// (round/tier/bailout/install/deopt) carry the root itself. Events with
    /// no method context ([`CompileEvent::OptPassStats`],
    /// [`CompileEvent::FuelCharged`], [`CompileEvent::TreeSnapshot`]) return
    /// `None`, as do synthetic-node decisions.
    pub fn method(&self) -> Option<MethodId> {
        match self {
            CompileEvent::RoundStart { method, .. }
            | CompileEvent::RoundEnd { method, .. }
            | CompileEvent::NodeExpanded { method, .. }
            | CompileEvent::CutoffDeferred { method, .. }
            | CompileEvent::TierTransition { method, .. }
            | CompileEvent::Bailout { method, .. }
            | CompileEvent::CodeInstalled { method, .. }
            | CompileEvent::Deoptimized { method, .. }
            | CompileEvent::CodeInvalidated { method, .. }
            | CompileEvent::Recompiled { method, .. }
            | CompileEvent::SpeculationPinned { method }
            | CompileEvent::CodeEvicted { method, .. }
            | CompileEvent::AdmissionRejected { method, .. }
            | CompileEvent::MethodAged { method, .. }
            | CompileEvent::ReTiered { method, .. }
            | CompileEvent::DecisionPoisoned { method, .. }
            | CompileEvent::DecisionAgedOut { method, .. } => Some(*method),
            CompileEvent::ClusterFormed { method, .. }
            | CompileEvent::InlineDecision { method, .. } => *method,
            CompileEvent::OptPassStats { .. }
            | CompileEvent::FuelCharged { .. }
            | CompileEvent::TreeSnapshot { .. }
            | CompileEvent::RequestRetired { .. }
            | CompileEvent::QueueDepth { .. }
            | CompileEvent::SnapshotLoaded { .. }
            | CompileEvent::SnapshotFallback { .. }
            | CompileEvent::SnapshotWritten { .. }
            | CompileEvent::SnapshotMerged { .. } => None,
        }
    }
}

fn opt_method(method: &Option<MethodId>) -> String {
    match method {
        Some(m) => m.to_string(),
        None => "-".to_string(),
    }
}

impl fmt::Display for CompileEvent {
    /// Human-readable one-line rendering, used by [`crate::StderrSink`].
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileEvent::RoundStart {
                method,
                round,
                root_size,
                tree_nodes,
            } => write!(
                f,
                "round {round} start: root {method} |ir|={root_size:.0} tree={tree_nodes}"
            ),
            CompileEvent::RoundEnd {
                method,
                round,
                expanded,
                inlined,
                root_size,
                tree_nodes,
            } => write!(
                f,
                "round {round} end: root {method} expanded={expanded} inlined={inlined} \
                 |ir|={root_size:.0} tree={tree_nodes}"
            ),
            CompileEvent::NodeExpanded {
                method,
                kind,
                freq,
                priority,
                ns,
                no,
                attached,
            } => write!(
                f,
                "  expand {method} [{kind}] f={freq:.2} p={priority:.2} \
                 Ns={ns} No={no} attached={attached}"
            ),
            CompileEvent::CutoffDeferred {
                method,
                local_benefit,
                ir_size,
                root_ir,
                required_density,
                penalty,
            } => write!(
                f,
                "  defer {method} b_l={local_benefit:.2} |ir|={ir_size:.0} \
                 root={root_ir:.0} bar={required_density:.4} penalty={penalty:.2}"
            ),
            CompileEvent::ClusterFormed {
                method,
                members,
                benefit,
                cost,
            } => write!(
                f,
                "  cluster {} members={members} b|c={benefit:.1}|{cost:.0}",
                opt_method(method)
            ),
            CompileEvent::InlineDecision {
                method,
                benefit,
                cost,
                threshold,
                root_size,
                accepted,
            } => write!(
                f,
                "  {} {} b|c={benefit:.1}|{cost:.0} bar={threshold:.4} root={root_size:.0}",
                if *accepted { "inline" } else { "reject" },
                opt_method(method)
            ),
            CompileEvent::OptPassStats {
                phase,
                stage,
                stats,
            } => write!(
                f,
                "  opt[{phase}/{stage}] {} transforms ({} simple, {} dce, {} gvn)",
                stats.total(),
                stats.simple_count(),
                stats.dce,
                stats.gvn
            ),
            CompileEvent::FuelCharged { amount, spent } => {
                write!(f, "  fuel +{amount} (spent {spent})")
            }
            CompileEvent::TreeSnapshot { round, text } => {
                write!(f, "call tree after round {round}:\n{text}")
            }
            CompileEvent::TierTransition { method, tier } => {
                write!(f, "{method} -> {tier} tier")
            }
            CompileEvent::Bailout {
                method,
                stage,
                error,
            } => write!(f, "bailout {method} at {stage} tier: {error}"),
            CompileEvent::CodeInstalled {
                method,
                bytes,
                graph_size,
                work_nodes,
            } => write!(
                f,
                "installed {method}: {bytes} bytes, |ir|={graph_size}, work={work_nodes}"
            ),
            CompileEvent::Deoptimized { method, reason } => {
                write!(f, "{method} deoptimized: {reason}")
            }
            CompileEvent::CodeInvalidated {
                method,
                bytes,
                recompiles,
            } => write!(
                f,
                "invalidated {method}: {bytes} bytes released, recompiles={recompiles}"
            ),
            CompileEvent::Recompiled {
                method,
                recompiles,
                threshold,
            } => write!(
                f,
                "recompiled {method}: attempt {recompiles}, hotness bar {threshold}"
            ),
            CompileEvent::SpeculationPinned { method } => {
                write!(f, "{method} pinned to fallback-only code")
            }
            CompileEvent::CodeEvicted {
                method,
                bytes,
                policy,
                resident_uses,
            } => write!(
                f,
                "evicted {method}: {bytes} bytes freed by {policy}, uses={resident_uses}"
            ),
            CompileEvent::AdmissionRejected {
                method,
                bytes,
                reason,
            } => write!(f, "admission rejected {method}: {bytes} bytes, {reason}"),
            CompileEvent::MethodAged { method, idle } => {
                write!(f, "{method} aged: idle for {idle} uses")
            }
            CompileEvent::ReTiered { method, evictions } => {
                write!(f, "re-tiered {method} after {evictions} evictions")
            }
            CompileEvent::RequestRetired {
                tenant,
                request,
                latency,
                stall,
            } => write!(
                f,
                "request {request} retired for {tenant}: latency={latency} stall={stall}"
            ),
            CompileEvent::QueueDepth { request, depth } => {
                write!(f, "queue depth at request {request}: {depth}")
            }
            CompileEvent::SnapshotLoaded {
                methods,
                decisions,
                mode,
            } => write!(
                f,
                "snapshot loaded: {methods} profiles, {decisions} decisions, replay={mode}"
            ),
            CompileEvent::SnapshotFallback { reason } => {
                write!(f, "snapshot fallback to cold start: {reason}")
            }
            CompileEvent::SnapshotWritten {
                methods,
                decisions,
                bytes,
            } => write!(
                f,
                "snapshot written: {methods} profiles, {decisions} decisions, {bytes} bytes"
            ),
            CompileEvent::SnapshotMerged {
                replicas,
                methods,
                decisions,
                conflicts,
                aged_out,
            } => write!(
                f,
                "snapshot merged: {replicas} replicas -> {methods} profiles, \
                 {decisions} decisions ({conflicts} conflicts, {aged_out} aged out)"
            ),
            CompileEvent::DecisionPoisoned {
                method,
                activations,
                window,
            } => write!(
                f,
                "{method} poisoned: deopt after {activations} activations (window {window})"
            ),
            CompileEvent::DecisionAgedOut {
                method,
                hotness,
                required,
            } => write!(
                f,
                "{method} decision aged out: hotness {hotness} < support {required}"
            ),
        }
    }
}
