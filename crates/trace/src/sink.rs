//! Trace sinks: where compilation events go.

use std::cell::RefCell;
use std::io::Write;

use crate::event::CompileEvent;

/// A consumer of [`CompileEvent`]s.
///
/// Sinks take `&self` and use interior mutability where they need state —
/// the VM and all compilers are single-threaded, and this lets the sink be
/// carried by reference inside `Copy` contexts (the same way `CompileFuel`
/// is).
pub trait TraceSink {
    /// Whether this sink wants events at all. Producers consult this before
    /// building an event, so a disabled sink costs one virtual call and no
    /// allocation.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn emit(&self, event: CompileEvent);
}

/// The zero-cost default sink: reports `enabled() == false` and drops
/// anything it is handed anyway.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: CompileEvent) {}
}

/// A shared [`NullSink`] for contexts that need a `&'static dyn TraceSink`.
pub static NULL_SINK: NullSink = NullSink;

/// Buffers events in memory for programmatic consumers (`compile_explain`,
/// tests, visualizers).
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: RefCell<Vec<CompileEvent>>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Drain and return the collected events.
    pub fn take(&self) -> Vec<CompileEvent> {
        std::mem::take(&mut *self.events.borrow_mut())
    }

    /// Clone the collected events, leaving the buffer intact.
    pub fn snapshot(&self) -> Vec<CompileEvent> {
        self.events.borrow().clone()
    }
}

impl TraceSink for CollectingSink {
    fn emit(&self, event: CompileEvent) {
        self.events.borrow_mut().push(event);
    }
}

/// Prints each event as a human-readable `[incline]`-prefixed line on
/// stderr — the explicit-API replacement for the old `INCLINE_TRACE`
/// environment variable.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&self, event: CompileEvent) {
        eprintln!("[incline] {event}");
    }
}

/// Serializes each event as one JSON object per line (JSONL) into any
/// [`Write`] target. The serializer is hand-rolled (`CompileEvent::to_json`)
/// and deterministic; write errors are swallowed so tracing can never fail a
/// compilation.
#[derive(Debug, Default)]
pub struct JsonlSink<W: Write> {
    out: RefCell<W>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: RefCell::new(out),
        }
    }

    /// Unwrap the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner()
    }

    /// Take the writer out through a shared reference, leaving a default one
    /// behind — handy when the sink is held as `Rc<JsonlSink<Vec<u8>>>`.
    pub fn take(&self) -> W
    where
        W: Default,
    {
        std::mem::take(&mut *self.out.borrow_mut())
    }
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn emit(&self, event: CompileEvent) {
        let mut out = self.out.borrow_mut();
        let _ = out.write_all(event.to_json().as_bytes());
        let _ = out.write_all(b"\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(!NULL_SINK.enabled());
        NullSink.emit(CompileEvent::FuelCharged {
            amount: 1,
            spent: 1,
        });
    }

    #[test]
    fn collecting_sink_buffers_in_order() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.emit(CompileEvent::FuelCharged {
            amount: 5,
            spent: 5,
        });
        sink.emit(CompileEvent::FuelCharged {
            amount: 3,
            spent: 8,
        });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(
            events,
            vec![
                CompileEvent::FuelCharged {
                    amount: 5,
                    spent: 5
                },
                CompileEvent::FuelCharged {
                    amount: 3,
                    spent: 8
                },
            ]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(CompileEvent::FuelCharged {
            amount: 5,
            spent: 5,
        });
        sink.emit(CompileEvent::FuelCharged {
            amount: 3,
            spent: 8,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"FuelCharged\""));
        assert!(text.ends_with('\n'));
    }
}
