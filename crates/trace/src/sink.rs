//! Trace sinks: where compilation events go.

use std::io::Write;
use std::sync::Mutex;

use crate::event::CompileEvent;

/// A consumer of [`CompileEvent`]s.
///
/// Sinks take `&self` and use interior mutability where they need state.
/// Since the compile broker runs compilations on background worker threads,
/// every sink must be `Send + Sync`: the bundled sinks use a [`Mutex`]
/// around their state, which is uncontended in practice because workers
/// buffer their events per request and the broker replays each buffer from
/// the mutator thread at the install safepoint (see `incline-vm`'s broker
/// module). The trait is still carried by reference inside `Copy` contexts
/// (the same way `CompileFuel` is).
pub trait TraceSink: Send + Sync {
    /// Whether this sink wants events at all. Producers consult this before
    /// building an event, so a disabled sink costs one virtual call and no
    /// allocation.
    fn enabled(&self) -> bool {
        true
    }

    /// Consume one event.
    fn emit(&self, event: CompileEvent);
}

/// The zero-cost default sink: reports `enabled() == false` and drops
/// anything it is handed anyway.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn emit(&self, _event: CompileEvent) {}
}

/// A shared [`NullSink`] for contexts that need a `&'static dyn TraceSink`.
pub static NULL_SINK: NullSink = NullSink;

/// Buffers events in memory for programmatic consumers (`compile_explain`,
/// tests, visualizers) — and for the compile broker's per-request worker
/// buffers. Each event is stamped with a monotonically increasing sequence
/// number at emission, so concurrent consumers can stably re-order merged
/// streams (see [`crate::order`]).
#[derive(Debug, Default)]
pub struct CollectingSink {
    events: Mutex<Vec<(u64, CompileEvent)>>,
}

impl CollectingSink {
    /// An empty collecting sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events collected so far.
    pub fn len(&self) -> usize {
        self.events.lock().expect("sink lock").len()
    }

    /// Whether no events have been collected.
    pub fn is_empty(&self) -> bool {
        self.events.lock().expect("sink lock").is_empty()
    }

    /// Drain and return the collected events.
    pub fn take(&self) -> Vec<CompileEvent> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
            .into_iter()
            .map(|(_, e)| e)
            .collect()
    }

    /// Drain and return the collected events together with their emission
    /// sequence numbers (0-based, in arrival order at this sink).
    pub fn take_sequenced(&self) -> Vec<(u64, CompileEvent)> {
        std::mem::take(&mut *self.events.lock().expect("sink lock"))
    }

    /// Clone the collected events, leaving the buffer intact.
    pub fn snapshot(&self) -> Vec<CompileEvent> {
        self.events
            .lock()
            .expect("sink lock")
            .iter()
            .map(|(_, e)| e.clone())
            .collect()
    }
}

impl TraceSink for CollectingSink {
    fn emit(&self, event: CompileEvent) {
        let mut events = self.events.lock().expect("sink lock");
        let seq = events.len() as u64;
        events.push((seq, event));
    }
}

/// Prints each event as a human-readable `[incline]`-prefixed line on
/// stderr — the explicit-API replacement for the old `INCLINE_TRACE`
/// environment variable.
#[derive(Clone, Copy, Debug, Default)]
pub struct StderrSink;

impl TraceSink for StderrSink {
    fn emit(&self, event: CompileEvent) {
        eprintln!("[incline] {event}");
    }
}

/// Serializes each event as one JSON object per line (JSONL) into any
/// [`Write`] target. The serializer is hand-rolled (`CompileEvent::to_json`)
/// and deterministic; write errors are swallowed so tracing can never fail a
/// compilation. The writer sits behind a [`Mutex`] so the sink can be shared
/// with the broker's worker threads.
#[derive(Debug, Default)]
pub struct JsonlSink<W: Write> {
    out: Mutex<W>,
}

impl<W: Write> JsonlSink<W> {
    /// Wrap a writer.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Unwrap the writer.
    pub fn into_inner(self) -> W {
        self.out.into_inner().expect("sink lock")
    }

    /// Take the writer out through a shared reference, leaving a default one
    /// behind — handy when the sink is held as `Arc<JsonlSink<Vec<u8>>>`.
    pub fn take(&self) -> W
    where
        W: Default,
    {
        std::mem::take(&mut *self.out.lock().expect("sink lock"))
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn emit(&self, event: CompileEvent) {
        let mut out = self.out.lock().expect("sink lock");
        let _ = out.write_all(event.to_json().as_bytes());
        let _ = out.write_all(b"\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sink_is_disabled() {
        assert!(!NullSink.enabled());
        assert!(!NULL_SINK.enabled());
        NullSink.emit(CompileEvent::FuelCharged {
            amount: 1,
            spent: 1,
        });
    }

    #[test]
    fn collecting_sink_buffers_in_order() {
        let sink = CollectingSink::new();
        assert!(sink.is_empty());
        sink.emit(CompileEvent::FuelCharged {
            amount: 5,
            spent: 5,
        });
        sink.emit(CompileEvent::FuelCharged {
            amount: 3,
            spent: 8,
        });
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert_eq!(
            events,
            vec![
                CompileEvent::FuelCharged {
                    amount: 5,
                    spent: 5
                },
                CompileEvent::FuelCharged {
                    amount: 3,
                    spent: 8
                },
            ]
        );
        assert!(sink.is_empty());
    }

    #[test]
    fn collecting_sink_assigns_sequence_numbers() {
        let sink = CollectingSink::new();
        for i in 0..4 {
            sink.emit(CompileEvent::FuelCharged {
                amount: i,
                spent: i,
            });
        }
        let seqs: Vec<u64> = sink.take_sequenced().into_iter().map(|(s, _)| s).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn sinks_are_shareable_across_threads() {
        let sink = std::sync::Arc::new(CollectingSink::new());
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let sink = std::sync::Arc::clone(&sink);
                s.spawn(move || {
                    sink.emit(CompileEvent::FuelCharged {
                        amount: t,
                        spent: t,
                    });
                });
            }
        });
        assert_eq!(sink.len(), 4);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(CompileEvent::FuelCharged {
            amount: 5,
            spent: 5,
        });
        sink.emit(CompileEvent::FuelCharged {
            amount: 3,
            spent: 8,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"ev\":\"FuelCharged\""));
        assert!(text.ends_with('\n'));
    }
}
