//! Typed compilation-event stream for the incline JIT.
//!
//! This crate defines the structured tracing API that every compiler in the
//! workspace emits into: a [`CompileEvent`] enum covering the per-round
//! lifecycle of the paper's incremental inliner (expansion, cutoff deferral,
//! clustering, inline decisions), the optimization pipeline, the compile-fuel
//! accounting, and the VM broker's tier transitions and bailouts — plus a
//! [`TraceSink`] trait with ready-made sinks:
//!
//! - [`NullSink`]: the zero-cost default (reports `enabled() == false`, so
//!   producers skip event construction entirely),
//! - [`CollectingSink`]: buffers events in memory for programmatic consumers,
//! - [`StderrSink`]: prints human-readable lines, preserving the old
//!   `INCLINE_TRACE` debugging workflow as explicit API,
//! - [`JsonlSink`]: hand-rolled JSON-lines serializer with no external deps.
//!
//! The stream is deterministic: two compilations of the same program with the
//! same configuration produce byte-identical JSONL traces. Sinks are
//! `Send + Sync` so the VM's background compile broker can share them with
//! worker threads, and [`order`] provides stable per-method sorting to
//! canonicalize streams that were merged outside the broker's deterministic
//! replay path.

#![warn(missing_docs)]

mod event;
mod json;
pub mod order;
mod sink;

pub use event::{BailoutStage, CodeTier, CompileEvent, OptPhase};
pub use sink::{CollectingSink, JsonlSink, NullSink, StderrSink, TraceSink, NULL_SINK};

use incline_ir::{Graph, Program};
use incline_opt::{optimize_observed, CompileFuel, OptStats, PipelineConfig};

/// Run the optimization pipeline, forwarding per-stage [`OptStats`] deltas to
/// `sink` as [`CompileEvent::OptPassStats`] events tagged with `phase`.
///
/// When the sink is disabled this is exactly `optimize_fueled` — no closure
/// state, no event construction.
pub fn optimize_with_trace(
    program: &Program,
    graph: &mut Graph,
    config: PipelineConfig,
    fuel: &CompileFuel,
    sink: &dyn TraceSink,
    phase: OptPhase,
) -> OptStats {
    if !sink.enabled() {
        return incline_opt::optimize_fueled(program, graph, config, fuel);
    }
    optimize_observed(program, graph, config, fuel, &mut |stage, stats| {
        if stats.any() {
            sink.emit(CompileEvent::OptPassStats {
                phase,
                stage,
                stats,
            });
        }
    })
}
