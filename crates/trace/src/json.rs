//! Hand-rolled JSON serialization for [`CompileEvent`] — no external deps.
//!
//! Every event becomes one flat JSON object whose first key, `"ev"`, names
//! the variant. Field order is fixed by the serializer, floats are printed
//! with Rust's shortest-roundtrip `Display` (deterministic), non-finite
//! floats become `null`, and method ids use their `Display` form (`"m3"`).

use std::fmt::Write as _;

use incline_ir::MethodId;
use incline_opt::OptStats;

use crate::event::CompileEvent;

/// Incrementally builds one flat JSON object.
struct JsonObj {
    buf: String,
}

impl JsonObj {
    fn new(event_name: &str) -> Self {
        let mut buf = String::with_capacity(96);
        buf.push_str("{\"ev\":\"");
        buf.push_str(event_name);
        buf.push('"');
        JsonObj { buf }
    }

    fn key(&mut self, key: &str) {
        self.buf.push(',');
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
    }

    fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.buf.push('"');
        escape_into(&mut self.buf, value);
        self.buf.push('"');
        self
    }

    fn raw(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.key(key);
        let _ = write!(self.buf, "{value}");
        self
    }

    fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let _ = write!(self.buf, "{value}");
        } else {
            self.buf.push_str("null");
        }
        self
    }

    fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    fn method(self, key: &str, method: &MethodId) -> Self {
        let text = method.to_string();
        self.str(key, &text)
    }

    fn opt_method(self, key: &str, method: &Option<MethodId>) -> Self {
        match method {
            Some(m) => self.method(key, m),
            None => {
                let mut obj = self;
                obj.key(key);
                obj.buf.push_str("null");
                obj
            }
        }
    }

    fn stats(mut self, key: &str, stats: &OptStats) -> Self {
        self.key(key);
        self.buf.push('{');
        let fields: [(&str, u64); 10] = [
            ("const_fold", stats.const_fold),
            ("strength_red", stats.strength_red),
            ("branch_prune", stats.branch_prune),
            ("typecheck_fold", stats.typecheck_fold),
            ("devirt", stats.devirt),
            ("gvn", stats.gvn),
            ("rw_elim", stats.rw_elim),
            ("dce", stats.dce),
            ("blocks_merged", stats.blocks_merged),
            ("loops_peeled", stats.loops_peeled),
        ];
        let mut first = true;
        for (name, value) in fields {
            if value == 0 {
                continue;
            }
            if !first {
                self.buf.push(',');
            }
            first = false;
            let _ = write!(self.buf, "\"{name}\":{value}");
        }
        self.buf.push('}');
        self
    }

    fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

fn escape_into(buf: &mut String, value: &str) {
    for c in value.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
}

impl CompileEvent {
    /// Serialize this event as one flat JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            CompileEvent::RoundStart {
                method,
                round,
                root_size,
                tree_nodes,
            } => JsonObj::new("RoundStart")
                .method("method", method)
                .raw("round", round)
                .f64("root_size", *root_size)
                .raw("tree_nodes", tree_nodes)
                .finish(),
            CompileEvent::RoundEnd {
                method,
                round,
                expanded,
                inlined,
                root_size,
                tree_nodes,
            } => JsonObj::new("RoundEnd")
                .method("method", method)
                .raw("round", round)
                .raw("expanded", expanded)
                .raw("inlined", inlined)
                .f64("root_size", *root_size)
                .raw("tree_nodes", tree_nodes)
                .finish(),
            CompileEvent::NodeExpanded {
                method,
                kind,
                freq,
                priority,
                ns,
                no,
                attached,
            } => JsonObj::new("NodeExpanded")
                .method("method", method)
                .str("kind", &kind.to_string())
                .f64("freq", *freq)
                .f64("priority", *priority)
                .raw("ns", ns)
                .raw("no", no)
                .raw("attached", attached)
                .finish(),
            CompileEvent::CutoffDeferred {
                method,
                local_benefit,
                ir_size,
                root_ir,
                required_density,
                penalty,
            } => JsonObj::new("CutoffDeferred")
                .method("method", method)
                .f64("local_benefit", *local_benefit)
                .f64("ir_size", *ir_size)
                .f64("root_ir", *root_ir)
                .f64("required_density", *required_density)
                .f64("penalty", *penalty)
                .finish(),
            CompileEvent::ClusterFormed {
                method,
                members,
                benefit,
                cost,
            } => JsonObj::new("ClusterFormed")
                .opt_method("method", method)
                .raw("members", members)
                .f64("benefit", *benefit)
                .f64("cost", *cost)
                .finish(),
            CompileEvent::InlineDecision {
                method,
                benefit,
                cost,
                threshold,
                root_size,
                accepted,
            } => JsonObj::new("InlineDecision")
                .opt_method("method", method)
                .f64("benefit", *benefit)
                .f64("cost", *cost)
                .f64("threshold", *threshold)
                .f64("root_size", *root_size)
                .bool("accepted", *accepted)
                .finish(),
            CompileEvent::OptPassStats {
                phase,
                stage,
                stats,
            } => JsonObj::new("OptPassStats")
                .str("phase", &phase.to_string())
                .str("stage", &stage.to_string())
                .stats("stats", stats)
                .finish(),
            CompileEvent::FuelCharged { amount, spent } => JsonObj::new("FuelCharged")
                .raw("amount", amount)
                .raw("spent", spent)
                .finish(),
            CompileEvent::TreeSnapshot { round, text } => JsonObj::new("TreeSnapshot")
                .raw("round", round)
                .str("text", text)
                .finish(),
            CompileEvent::TierTransition { method, tier } => JsonObj::new("TierTransition")
                .method("method", method)
                .str("tier", &tier.to_string())
                .finish(),
            CompileEvent::Bailout {
                method,
                stage,
                error,
            } => JsonObj::new("Bailout")
                .method("method", method)
                .str("stage", &stage.to_string())
                .str("error", error)
                .finish(),
            CompileEvent::CodeInstalled {
                method,
                bytes,
                graph_size,
                work_nodes,
            } => JsonObj::new("CodeInstalled")
                .method("method", method)
                .raw("bytes", bytes)
                .raw("graph_size", graph_size)
                .raw("work_nodes", work_nodes)
                .finish(),
            CompileEvent::Deoptimized { method, reason } => JsonObj::new("Deoptimized")
                .method("method", method)
                .str("reason", reason)
                .finish(),
            CompileEvent::CodeInvalidated {
                method,
                bytes,
                recompiles,
            } => JsonObj::new("CodeInvalidated")
                .method("method", method)
                .raw("bytes", bytes)
                .raw("recompiles", recompiles)
                .finish(),
            CompileEvent::Recompiled {
                method,
                recompiles,
                threshold,
            } => JsonObj::new("Recompiled")
                .method("method", method)
                .raw("recompiles", recompiles)
                .raw("threshold", threshold)
                .finish(),
            CompileEvent::SpeculationPinned { method } => JsonObj::new("SpeculationPinned")
                .method("method", method)
                .finish(),
            CompileEvent::CodeEvicted {
                method,
                bytes,
                policy,
                resident_uses,
            } => JsonObj::new("CodeEvicted")
                .method("method", method)
                .raw("bytes", bytes)
                .str("policy", policy)
                .raw("resident_uses", resident_uses)
                .finish(),
            CompileEvent::AdmissionRejected {
                method,
                bytes,
                reason,
            } => JsonObj::new("AdmissionRejected")
                .method("method", method)
                .raw("bytes", bytes)
                .str("reason", reason)
                .finish(),
            CompileEvent::MethodAged { method, idle } => JsonObj::new("MethodAged")
                .method("method", method)
                .raw("idle", idle)
                .finish(),
            CompileEvent::ReTiered { method, evictions } => JsonObj::new("ReTiered")
                .method("method", method)
                .raw("evictions", evictions)
                .finish(),
            CompileEvent::RequestRetired {
                tenant,
                request,
                latency,
                stall,
            } => JsonObj::new("RequestRetired")
                .str("tenant", tenant)
                .raw("request", request)
                .raw("latency", latency)
                .raw("stall", stall)
                .finish(),
            CompileEvent::QueueDepth { request, depth } => JsonObj::new("QueueDepth")
                .raw("request", request)
                .raw("depth", depth)
                .finish(),
            CompileEvent::SnapshotLoaded {
                methods,
                decisions,
                mode,
            } => JsonObj::new("SnapshotLoaded")
                .raw("methods", methods)
                .raw("decisions", decisions)
                .str("mode", mode)
                .finish(),
            CompileEvent::SnapshotFallback { reason } => JsonObj::new("SnapshotFallback")
                .str("reason", reason)
                .finish(),
            CompileEvent::SnapshotWritten {
                methods,
                decisions,
                bytes,
            } => JsonObj::new("SnapshotWritten")
                .raw("methods", methods)
                .raw("decisions", decisions)
                .raw("bytes", bytes)
                .finish(),
            CompileEvent::SnapshotMerged {
                replicas,
                methods,
                decisions,
                conflicts,
                aged_out,
            } => JsonObj::new("SnapshotMerged")
                .raw("replicas", replicas)
                .raw("methods", methods)
                .raw("decisions", decisions)
                .raw("conflicts", conflicts)
                .raw("aged_out", aged_out)
                .finish(),
            CompileEvent::DecisionPoisoned {
                method,
                activations,
                window,
            } => JsonObj::new("DecisionPoisoned")
                .method("method", method)
                .raw("activations", activations)
                .raw("window", window)
                .finish(),
            CompileEvent::DecisionAgedOut {
                method,
                hotness,
                required,
            } => JsonObj::new("DecisionAgedOut")
                .method("method", method)
                .raw("hotness", hotness)
                .raw("required", required)
                .finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{BailoutStage, OptPhase};
    use incline_opt::PipelineStage;

    #[test]
    fn serializes_flat_objects_with_ev_discriminator() {
        let ev = CompileEvent::InlineDecision {
            method: Some(MethodId::new(3)),
            benefit: 12.5,
            cost: 40.0,
            threshold: 0.001,
            root_size: 250.0,
            accepted: true,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"InlineDecision\",\"method\":\"m3\",\"benefit\":12.5,\
             \"cost\":40,\"threshold\":0.001,\"root_size\":250,\"accepted\":true}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        let ev = CompileEvent::InlineDecision {
            method: None,
            benefit: f64::NAN,
            cost: f64::INFINITY,
            threshold: f64::INFINITY,
            root_size: 1.0,
            accepted: false,
        };
        let json = ev.to_json();
        assert!(json.contains("\"method\":null"), "{json}");
        assert!(json.contains("\"benefit\":null"), "{json}");
        assert!(json.contains("\"threshold\":null"), "{json}");
    }

    #[test]
    fn strings_are_escaped() {
        let ev = CompileEvent::Bailout {
            method: MethodId::new(0),
            stage: BailoutStage::Full,
            error: "panic: \"boom\"\nline2\\end".to_string(),
        };
        let json = ev.to_json();
        assert!(
            json.contains("panic: \\\"boom\\\"\\nline2\\\\end"),
            "{json}"
        );
    }

    #[test]
    fn deopt_lifecycle_events_serialize_flat() {
        let m = MethodId::new(5);
        assert_eq!(
            CompileEvent::Deoptimized {
                method: m,
                reason: "uncovered_receiver".to_string(),
            }
            .to_json(),
            "{\"ev\":\"Deoptimized\",\"method\":\"m5\",\"reason\":\"uncovered_receiver\"}"
        );
        assert_eq!(
            CompileEvent::CodeInvalidated {
                method: m,
                bytes: 320,
                recompiles: 1,
            }
            .to_json(),
            "{\"ev\":\"CodeInvalidated\",\"method\":\"m5\",\"bytes\":320,\"recompiles\":1}"
        );
        assert_eq!(
            CompileEvent::Recompiled {
                method: m,
                recompiles: 2,
                threshold: 160,
            }
            .to_json(),
            "{\"ev\":\"Recompiled\",\"method\":\"m5\",\"recompiles\":2,\"threshold\":160}"
        );
        assert_eq!(
            CompileEvent::SpeculationPinned { method: m }.to_json(),
            "{\"ev\":\"SpeculationPinned\",\"method\":\"m5\"}"
        );
    }

    #[test]
    fn cache_lifecycle_events_serialize_flat() {
        let m = MethodId::new(7);
        assert_eq!(
            CompileEvent::CodeEvicted {
                method: m,
                bytes: 448,
                policy: "lru".to_string(),
                resident_uses: 12,
            }
            .to_json(),
            "{\"ev\":\"CodeEvicted\",\"method\":\"m7\",\"bytes\":448,\
             \"policy\":\"lru\",\"resident_uses\":12}"
        );
        assert_eq!(
            CompileEvent::AdmissionRejected {
                method: m,
                bytes: 640,
                reason: "no_evictable_victim".to_string(),
            }
            .to_json(),
            "{\"ev\":\"AdmissionRejected\",\"method\":\"m7\",\"bytes\":640,\
             \"reason\":\"no_evictable_victim\"}"
        );
        assert_eq!(
            CompileEvent::MethodAged {
                method: m,
                idle: 2048
            }
            .to_json(),
            "{\"ev\":\"MethodAged\",\"method\":\"m7\",\"idle\":2048}"
        );
        assert_eq!(
            CompileEvent::ReTiered {
                method: m,
                evictions: 2,
            }
            .to_json(),
            "{\"ev\":\"ReTiered\",\"method\":\"m7\",\"evictions\":2}"
        );
    }

    #[test]
    fn server_events_serialize_flat() {
        assert_eq!(
            CompileEvent::RequestRetired {
                tenant: "tenant3".to_string(),
                request: 42,
                latency: 9001,
                stall: 120,
            }
            .to_json(),
            "{\"ev\":\"RequestRetired\",\"tenant\":\"tenant3\",\"request\":42,\
             \"latency\":9001,\"stall\":120}"
        );
        assert_eq!(
            CompileEvent::QueueDepth {
                request: 16,
                depth: 3,
            }
            .to_json(),
            "{\"ev\":\"QueueDepth\",\"request\":16,\"depth\":3}"
        );
    }

    #[test]
    fn snapshot_events_serialize_flat() {
        assert_eq!(
            CompileEvent::SnapshotLoaded {
                methods: 4,
                decisions: 3,
                mode: "eager".to_string(),
            }
            .to_json(),
            "{\"ev\":\"SnapshotLoaded\",\"methods\":4,\"decisions\":3,\"mode\":\"eager\"}"
        );
        assert_eq!(
            CompileEvent::SnapshotFallback {
                reason: "snapshot checksum mismatch".to_string(),
            }
            .to_json(),
            "{\"ev\":\"SnapshotFallback\",\"reason\":\"snapshot checksum mismatch\"}"
        );
        assert_eq!(
            CompileEvent::SnapshotWritten {
                methods: 4,
                decisions: 3,
                bytes: 512,
            }
            .to_json(),
            "{\"ev\":\"SnapshotWritten\",\"methods\":4,\"decisions\":3,\"bytes\":512}"
        );
    }

    #[test]
    fn merge_and_quarantine_events_serialize_flat() {
        assert_eq!(
            CompileEvent::SnapshotMerged {
                replicas: 3,
                methods: 9,
                decisions: 5,
                conflicts: 1,
                aged_out: 2,
            }
            .to_json(),
            "{\"ev\":\"SnapshotMerged\",\"replicas\":3,\"methods\":9,\"decisions\":5,\
             \"conflicts\":1,\"aged_out\":2}"
        );
        assert_eq!(
            CompileEvent::DecisionPoisoned {
                method: MethodId::new(7),
                activations: 2,
                window: 8,
            }
            .to_json(),
            "{\"ev\":\"DecisionPoisoned\",\"method\":\"m7\",\"activations\":2,\"window\":8}"
        );
        assert_eq!(
            CompileEvent::DecisionAgedOut {
                method: MethodId::new(4),
                hotness: 3,
                required: 16,
            }
            .to_json(),
            "{\"ev\":\"DecisionAgedOut\",\"method\":\"m4\",\"hotness\":3,\"required\":16}"
        );
    }

    #[test]
    fn opt_stats_skip_zero_counters() {
        let stats = OptStats {
            const_fold: 2,
            dce: 7,
            ..OptStats::new()
        };
        let ev = CompileEvent::OptPassStats {
            phase: OptPhase::Round,
            stage: PipelineStage::Scalar,
            stats,
        };
        assert_eq!(
            ev.to_json(),
            "{\"ev\":\"OptPassStats\",\"phase\":\"round\",\"stage\":\"scalar\",\
             \"stats\":{\"const_fold\":2,\"dce\":7}}"
        );
    }
}
