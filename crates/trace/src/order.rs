//! Canonical ordering helpers for merged trace streams.
//!
//! The VM's compile broker keeps trace streams deterministic even with
//! background worker threads: each worker buffers its request's events in a
//! private [`crate::CollectingSink`] (the buffer index is the request's
//! per-method sequence number) and the mutator replays the buffers in
//! request-id order at the install safepoint. The helpers here exist for the
//! other direction — canonicalizing a stream whose producers did *not* go
//! through the replay path (e.g. several `JsonlSink` files concatenated, or
//! a future free-running sink): a stable sort by method key leaves any two
//! equivalent streams byte-identical while preserving each method's internal
//! event sequence.

use incline_ir::MethodId;

use crate::event::CompileEvent;

/// Sort key for per-method grouping: events that carry no method sort before
/// all tagged events and keep their relative order; tagged events group by
/// method id. The sort must be *stable* so each group keeps its emission
/// sequence — both helpers below use Rust's stable sort.
fn method_key(method: Option<MethodId>) -> (bool, usize) {
    match method {
        None => (false, 0),
        Some(m) => (true, m.index()),
    }
}

/// Stable-sort an event stream into per-method groups (untagged events
/// first, then each method's events in emission order).
pub fn sort_events_by_method(events: &mut [CompileEvent]) {
    events.sort_by_key(|e| method_key(e.method()));
}

/// Extract the value of the first `"method"` key from one JSONL trace line,
/// e.g. `m3` from `{"ev":"RoundStart","method":"m3",...}`. Returns `None`
/// for lines without a method key or with `"method":null`.
pub fn method_of_jsonl_line(line: &str) -> Option<&str> {
    let rest = &line[line.find("\"method\":")? + "\"method\":".len()..];
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Stable-sort a JSONL trace by per-method group, returning the canonical
/// text. Grouping matches [`sort_events_by_method`]: method-less lines keep
/// their relative order ahead of the tagged groups, and ties preserve the
/// input sequence. Method ids are ordered numerically (`m2` before `m10`).
pub fn sort_jsonl_by_method(text: &str) -> String {
    let mut lines: Vec<&str> = text.lines().collect();
    lines.sort_by_key(|line| {
        let key = method_of_jsonl_line(line)
            .and_then(|m| m.strip_prefix('m'))
            .and_then(|n| n.parse::<usize>().ok());
        (key.is_some(), key.unwrap_or(0))
    });
    let mut out = String::with_capacity(text.len());
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn install(m: usize, bytes: u64) -> CompileEvent {
        CompileEvent::CodeInstalled {
            method: MethodId::new(m),
            bytes,
            graph_size: 1,
            work_nodes: 1,
        }
    }

    #[test]
    fn event_sort_groups_by_method_and_is_stable() {
        let mut events = vec![
            install(3, 1),
            CompileEvent::FuelCharged {
                amount: 9,
                spent: 9,
            },
            install(1, 2),
            install(3, 3),
            install(1, 4),
        ];
        sort_events_by_method(&mut events);
        assert_eq!(
            events,
            vec![
                CompileEvent::FuelCharged {
                    amount: 9,
                    spent: 9
                },
                install(1, 2),
                install(1, 4),
                install(3, 1),
                install(3, 3),
            ]
        );
    }

    #[test]
    fn jsonl_line_method_extraction() {
        assert_eq!(
            method_of_jsonl_line("{\"ev\":\"RoundStart\",\"method\":\"m3\",\"round\":1}"),
            Some("m3")
        );
        assert_eq!(
            method_of_jsonl_line("{\"ev\":\"InlineDecision\",\"method\":null}"),
            None
        );
        assert_eq!(
            method_of_jsonl_line("{\"ev\":\"FuelCharged\",\"amount\":5}"),
            None
        );
    }

    #[test]
    fn jsonl_sort_is_stable_and_numeric() {
        let text = "{\"ev\":\"A\",\"method\":\"m10\",\"n\":1}\n\
                    {\"ev\":\"B\",\"amount\":7}\n\
                    {\"ev\":\"C\",\"method\":\"m2\",\"n\":1}\n\
                    {\"ev\":\"D\",\"method\":\"m10\",\"n\":2}\n";
        let sorted = sort_jsonl_by_method(text);
        assert_eq!(
            sorted,
            "{\"ev\":\"B\",\"amount\":7}\n\
             {\"ev\":\"C\",\"method\":\"m2\",\"n\":1}\n\
             {\"ev\":\"A\",\"method\":\"m10\",\"n\":1}\n\
             {\"ev\":\"D\",\"method\":\"m10\",\"n\":2}\n"
        );
        // Canonicalization is idempotent.
        assert_eq!(sort_jsonl_by_method(&sorted), sorted);
    }
}
