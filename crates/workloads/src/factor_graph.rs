//! Factor-graph Gibbs-style sampling (`factorie`): a tight loop over tiny
//! scoring helpers — the workload where the paper reports its largest
//! deep-inlining-trials win on Scala DaCapo (≈13%, Figure 9).

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let iarr = Type::Array(ElemType::Int);

    // weight_at(ws, i): bounds-folded accessor.
    let weight_at = p.declare_function("weight_at", vec![iarr, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, weight_at);
    let ws = fb.param(0);
    let i = fb.param(1);
    let len = fb.array_len(ws);
    let idx = fb.binop(BinOp::IRem, i, len);
    let v = fb.array_get(ws, idx);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(weight_at, g);

    // pair_score(ws, a, b): one factor's contribution.
    let pair_score = p.declare_function("pair_score", vec![iarr, Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, pair_score);
    let ws = fb.param(0);
    let a = fb.param(1);
    let b = fb.param(2);
    let three = fb.const_int(3);
    let key = fb.imul(a, three);
    let key = fb.iadd(key, b);
    let w = fb.call_static(weight_at, vec![ws, key]).unwrap();
    let agree = fb.cmp(CmpOp::IEq, a, b);
    let bonus = if_else(
        &mut fb,
        agree,
        Type::Int,
        |fb| fb.const_int(2),
        |fb| fb.const_int(0),
    );
    let r = fb.iadd(w, bonus);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(pair_score, g);

    // adjust(s, mode): a generically-written score post-processor whose
    // fast path (mode 2, the only mode the benchmark uses) is a couple of
    // ops while the generic path is a large mixing pipeline. Deep inlining
    // trials propagate the constant mode three levels down and prune the
    // generic branch — the mechanism behind the paper's factorie win.
    let adjust = p.declare_function("adjust", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, adjust);
    let s = fb.param(0);
    let mode = fb.param(1);
    let two = fb.const_int(2);
    let fast = fb.cmp(CmpOp::IEq, mode, two);
    let out = if_else(
        &mut fb,
        fast,
        Type::Int,
        |fb| {
            let one = fb.const_int(1);
            fb.binop(BinOp::IShl, s, one)
        },
        |fb| crate::util::pad_mix(fb, s, 130),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(adjust, g);

    // local_score(vars, ws, i, candidate, mode): score of assigning
    // `candidate` to variable i given its two ring neighbours.
    let local_score = p.declare_function(
        "local_score",
        vec![iarr, iarr, Type::Int, Type::Int, Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, local_score);
    let vars = fb.param(0);
    let ws = fb.param(1);
    let i = fb.param(2);
    let cand = fb.param(3);
    let mode = fb.param(4);
    let len = fb.array_len(vars);
    let one = fb.const_int(1);
    let li = fb.iadd(i, len);
    let li = fb.isub(li, one);
    let li = fb.binop(BinOp::IRem, li, len);
    let ri = fb.iadd(i, one);
    let ri = fb.binop(BinOp::IRem, ri, len);
    let lv = fb.array_get(vars, li);
    let rv = fb.array_get(vars, ri);
    let s1 = fb.call_static(pair_score, vec![ws, lv, cand]).unwrap();
    let s2 = fb.call_static(pair_score, vec![ws, cand, rv]).unwrap();
    let r = fb.iadd(s1, s2);
    let r = fb.call_static(adjust, vec![r, mode]).unwrap();
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(local_score, g);

    // sample_step(vars, ws, i): pick the argmax of {0,1,2} for var i.
    let sample_step = p.declare_function(
        "sample_step",
        vec![iarr, iarr, Type::Int, Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, sample_step);
    let vars = fb.param(0);
    let ws = fb.param(1);
    let i = fb.param(2);
    let smode = fb.param(3);
    let zero = fb.const_int(0);
    let mut best_val = zero;
    let mut best_score = fb
        .call_static(local_score, vec![vars, ws, i, zero, smode])
        .unwrap();
    for c in 1..3i64 {
        let cc = fb.const_int(c);
        let s = fb
            .call_static(local_score, vec![vars, ws, i, cc, smode])
            .unwrap();
        let better = fb.cmp(CmpOp::ILt, best_score, s);
        let pv = best_val;
        let ps = best_score;
        best_score = if_else(&mut fb, better, Type::Int, |_| s, |_| ps);
        let again = fb.cmp(CmpOp::IEq, best_score, s);
        best_val = if_else(&mut fb, again, Type::Int, |_| cc, |_| pv);
    }
    let len = fb.array_len(vars);
    let idx = fb.binop(BinOp::IRem, i, len);
    fb.array_set(vars, idx, best_val);
    fb.ret(Some(best_score));
    let g = fb.finish();
    p.define_method(sample_step, g);

    // main(n): n sweeps over a 24-variable ring.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let count = fb.const_int(24);
    let vars = fb.new_array(ElemType::Int, count);
    let nine = fb.const_int(9);
    let ws = fb.new_array(ElemType::Int, nine);
    let _ = counted_loop(&mut fb, nine, &[], |fb, i, _| {
        let five = fb.const_int(5);
        let v = fb.imul(i, five);
        let m7 = fb.const_int(7);
        let v = fb.binop(BinOp::IRem, v, m7);
        fb.array_set(ws, i, v);
        vec![]
    });
    let _ = counted_loop(&mut fb, count, &[], |fb, i, _| {
        let m3 = fb.const_int(3);
        let v = fb.binop(BinOp::IRem, i, m3);
        fb.array_set(vars, i, v);
        vec![]
    });
    let zero = fb.const_int(0);
    let mode = fb.const_int(2); // the constant deep trials propagate
    let out = counted_loop(&mut fb, n, &[zero], |fb, sweep, state| {
        let inner = counted_loop(fb, count, &[state[0]], |fb, i, s| {
            let shifted = fb.iadd(i, sweep);
            let sc = fb
                .call_static(sample_step, vec![vars, ws, shifted, mode])
                .unwrap();
            let acc = fb.iadd(s[0], sc);
            vec![acc]
        });
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, inner[0], mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("factorie", Suite::ScalaDaCapo, 10).verify_all();
    }
}
