//! Document-tree transformation: visitor polymorphism over element/text
//! trees, heavy in type checks that deep inlining trials can fold.
//!
//! Models `xalan` (XSLT transform), `fop` (layout), `pmd` (AST rule
//! matching) and `batik` (SVG rendering with float accumulation).

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, ElemType, Program, Type, ValueId};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// What the traversal computes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TreeVariant {
    /// Weighted size transform (`xalan`).
    Transform,
    /// Layout cost with per-tag constants (`fop`).
    Layout,
    /// Rule matching: count nodes matching tag patterns (`pmd`).
    RuleMatch,
    /// Float accumulation per node (`batik`).
    Render,
}

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct TreeParams {
    /// Traversal variant.
    pub variant: TreeVariant,
    /// Tree depth (fanout is 2).
    pub depth: u32,
    /// Traversals per iteration (entry argument).
    pub input: i64,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, params: TreeParams) -> Workload {
    let mut p = Program::new();
    let node = p.add_class("DomNode", None);
    let tag_f = p.add_field(node, "tag", Type::Int);
    let weight_f = p.add_field(node, "weight", Type::Float);
    let kids_f = p.add_field(node, "kids", Type::Array(ElemType::Object(node)));
    let elem = p.add_class("Element", Some(node));
    let text = p.add_class("Text", Some(node));
    let len_f = p.add_field(text, "len", Type::Int);

    // visit(this, mode) -> int, virtual over Element/Text.
    let v_elem = p.declare_method(elem, "visit", vec![Type::Int], Type::Int);
    let v_text = p.declare_method(text, "visit", vec![Type::Int], Type::Int);
    let sel_visit = p.selector_by_name("visit", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, v_text);
    let this = fb.param(0);
    let mode = fb.param(1);
    let len = fb.get_field(len_f, this);
    let tag = fb.get_field(tag_f, this);
    let scaled = fb.imul(len, mode);
    let r = fb.iadd(scaled, tag);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(v_text, g);

    let mut fb = FunctionBuilder::new(&p, v_elem);
    let this = fb.param(0);
    let mode = fb.param(1);
    let tag = fb.get_field(tag_f, this);
    let kids = fb.get_field(kids_f, this);
    let nk = fb.array_len(kids);
    let out = counted_loop(&mut fb, nk, &[tag], |fb, i, state| {
        let kid = fb.array_get(kids, i);
        // The instanceof-heavy part: rule matching checks the child kind
        // before recursing (pmd-style), folded by trials when the receiver
        // type is precise.
        let is_text = fb.instance_of(text, kid);
        let bonus = if_else(
            fb,
            is_text,
            Type::Int,
            |fb| fb.const_int(2),
            |fb| fb.const_int(5),
        );
        let sub = fb.call_virtual(sel_visit, vec![kid, mode]).unwrap();
        let acc = fb.iadd(state[0], sub);
        let acc = fb.iadd(acc, bonus);
        let mask = fb.const_int(0xFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(v_elem, g);

    // measure(this) -> float for the render variant.
    let m_elem = p.declare_method(elem, "measure", vec![], Type::Float);
    let m_text = p.declare_method(text, "measure", vec![], Type::Float);
    let sel_measure = p.selector_by_name("measure", 1).unwrap();

    let mut fb = FunctionBuilder::new(&p, m_text);
    let this = fb.param(0);
    let w = fb.get_field(weight_f, this);
    let len = fb.get_field(len_f, this);
    let lf = fb.int_to_float(len);
    let r = fb.fmul(w, lf);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(m_text, g);

    let mut fb = FunctionBuilder::new(&p, m_elem);
    let this = fb.param(0);
    let w = fb.get_field(weight_f, this);
    let kids = fb.get_field(kids_f, this);
    let nk = fb.array_len(kids);
    let out = counted_loop(&mut fb, nk, &[w], |fb, i, state| {
        let kid = fb.array_get(kids, i);
        let sub = fb.call_virtual(sel_measure, vec![kid]).unwrap();
        let acc = fb.fadd(state[0], sub);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(m_elem, g);

    // main(n): build a binary tree, traverse n times.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let mut rng = 0xA5A5_1234u64;
    let root = emit_dom(
        &mut fb,
        node,
        elem,
        text,
        tag_f,
        weight_f,
        kids_f,
        len_f,
        params.depth,
        &mut rng,
    );

    let zero = fb.const_int(0);
    let variant = params.variant;
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let r = match variant {
            TreeVariant::Transform | TreeVariant::Layout | TreeVariant::RuleMatch => {
                let mode = match variant {
                    TreeVariant::Transform => fb.const_int(1),
                    TreeVariant::Layout => fb.const_int(3),
                    _ => {
                        let seven = fb.const_int(7);
                        fb.binop(BinOp::IRem, i, seven)
                    }
                };
                fb.call_virtual(sel_visit, vec![root, mode]).unwrap()
            }
            TreeVariant::Render => {
                let f = fb.call_virtual(sel_measure, vec![root]).unwrap();
                let k = fb.const_float(16.0);
                let s = fb.fmul(f, k);
                fb.float_to_int(s)
            }
        };
        let acc = fb.binop(BinOp::IXor, state[0], r);
        let acc = fb.iadd(acc, r);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, params.input, 16)
}

#[allow(clippy::too_many_arguments)]
fn emit_dom(
    fb: &mut FunctionBuilder<'_>,
    node: incline_ir::ClassId,
    elem: incline_ir::ClassId,
    text: incline_ir::ClassId,
    tag_f: incline_ir::FieldId,
    weight_f: incline_ir::FieldId,
    kids_f: incline_ir::FieldId,
    len_f: incline_ir::FieldId,
    depth: u32,
    rng: &mut u64,
) -> ValueId {
    let bump = |r: &mut u64| {
        *r = r.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        *r >> 32
    };
    if depth == 0 {
        let obj = fb.new_object(text);
        let tag = fb.const_int((bump(rng) % 16) as i64);
        let len = fb.const_int(1 + (bump(rng) % 40) as i64);
        let w = fb.const_float(0.5);
        fb.set_field(tag_f, obj, tag);
        fb.set_field(len_f, obj, len);
        fb.set_field(weight_f, obj, w);
        // Text nodes still need an (empty) kids array for uniform layout.
        let zero = fb.const_int(0);
        let kids = fb.new_array(ElemType::Object(node), zero);
        fb.set_field(kids_f, obj, kids);
        fb.cast(node, obj)
    } else {
        let l = emit_dom(
            fb,
            node,
            elem,
            text,
            tag_f,
            weight_f,
            kids_f,
            len_f,
            depth - 1,
            rng,
        );
        let r = emit_dom(
            fb,
            node,
            elem,
            text,
            tag_f,
            weight_f,
            kids_f,
            len_f,
            depth - 1,
            rng,
        );
        let obj = fb.new_object(elem);
        let tag = fb.const_int((bump(rng) % 16) as i64);
        let w = fb.const_float(1.0 + (bump(rng) % 4) as f64);
        fb.set_field(tag_f, obj, tag);
        fb.set_field(weight_f, obj, w);
        let two = fb.const_int(2);
        let kids = fb.new_array(ElemType::Object(node), two);
        let zero = fb.const_int(0);
        let one = fb.const_int(1);
        fb.array_set(kids, zero, l);
        fb.array_set(kids, one, r);
        fb.set_field(kids_f, obj, kids);
        fb.cast(node, obj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_verify() {
        for (name, v) in [
            ("xalan", TreeVariant::Transform),
            ("fop", TreeVariant::Layout),
            ("pmd", TreeVariant::RuleMatch),
            ("batik", TreeVariant::Render),
        ] {
            let w = build(
                name,
                Suite::DaCapo,
                TreeParams {
                    variant: v,
                    depth: 3,
                    input: 10,
                },
            );
            w.verify_all();
        }
    }
}
