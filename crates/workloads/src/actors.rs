//! Actor-style message dispatch (`actors`, `tmt`): a scheduler loop
//! delivering message objects to stateful actors through a virtual
//! `process`, with the message mix shaping the receiver profile.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, ElemType, Program, Type};

use crate::util::counted_loop;
use crate::workload::{Suite, Workload};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct ActorParams {
    /// Number of message kinds in rotation (2–3).
    pub message_kinds: usize,
    /// Messages per iteration (entry argument).
    pub input: i64,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, params: ActorParams) -> Workload {
    let mut p = Program::new();
    let actor = p.add_class("Actor", None);
    let state_f = p.add_field(actor, "state", Type::Int);
    let inbox_f = p.add_field(actor, "processed", Type::Int);

    let msg = p.add_class("Message", None);
    let payload_f = p.add_field(msg, "payload", Type::Int);
    let ping = p.add_class("Ping", Some(msg));
    let pong = p.add_class("Pong", Some(msg));
    let tick = p.add_class("TickMsg", Some(msg));

    // audit(s, mode): generically-written accounting hook; the scheduler
    // always runs mode 3, whose path is two ops — the generic path is a
    // large mixing pipeline that only deep inlining trials prune away.
    let audit = p.declare_function("audit", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, audit);
    let s = fb.param(0);
    let mode = fb.param(1);
    let three = fb.const_int(3);
    let fast = fb.cmp(incline_ir::CmpOp::IEq, mode, three);
    let out = crate::util::if_else(
        &mut fb,
        fast,
        Type::Int,
        |fb| {
            let one = fb.const_int(1);
            fb.iadd(s, one)
        },
        |fb| crate::util::pad_mix(fb, s, 60),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(audit, g);

    // process(this_msg, actor, mode) -> int
    let pr_ping = p.declare_method(
        ping,
        "process",
        vec![Type::Object(actor), Type::Int],
        Type::Int,
    );
    let pr_pong = p.declare_method(
        pong,
        "process",
        vec![Type::Object(actor), Type::Int],
        Type::Int,
    );
    let pr_tick = p.declare_method(
        tick,
        "process",
        vec![Type::Object(actor), Type::Int],
        Type::Int,
    );
    let sel_process = p.selector_by_name("process", 3).unwrap();

    // Ping: state += payload.
    let mut fb = FunctionBuilder::new(&p, pr_ping);
    let this = fb.param(0);
    let a = fb.param(1);
    let mode = fb.param(2);
    let pay = fb.get_field(payload_f, this);
    let st = fb.get_field(state_f, a);
    let ns = fb.iadd(st, pay);
    let mask = fb.const_int(0xFFFF);
    let ns = fb.binop(BinOp::IAnd, ns, mask);
    fb.set_field(state_f, a, ns);
    let done = fb.get_field(inbox_f, a);
    let one = fb.const_int(1);
    let nd = fb.iadd(done, one);
    fb.set_field(inbox_f, a, nd);
    let ns = fb.call_static(audit, vec![ns, mode]).unwrap();
    fb.ret(Some(ns));
    let g = fb.finish();
    p.define_method(pr_ping, g);

    // Pong: state ^= payload.
    let mut fb = FunctionBuilder::new(&p, pr_pong);
    let this = fb.param(0);
    let a = fb.param(1);
    let mode = fb.param(2);
    let pay = fb.get_field(payload_f, this);
    let st = fb.get_field(state_f, a);
    let ns = fb.binop(BinOp::IXor, st, pay);
    fb.set_field(state_f, a, ns);
    let ns = fb.call_static(audit, vec![ns, mode]).unwrap();
    fb.ret(Some(ns));
    let g = fb.finish();
    p.define_method(pr_pong, g);

    // Tick: state = state * 3 + 1 (mod).
    let mut fb = FunctionBuilder::new(&p, pr_tick);
    let this = fb.param(0);
    let a = fb.param(1);
    let mode = fb.param(2);
    let _ = fb.get_field(payload_f, this);
    let st = fb.get_field(state_f, a);
    let three = fb.const_int(3);
    let one = fb.const_int(1);
    let ns = fb.imul(st, three);
    let ns = fb.iadd(ns, one);
    let mask = fb.const_int(0xFFFF);
    let ns = fb.binop(BinOp::IAnd, ns, mask);
    fb.set_field(state_f, a, ns);
    let ns = fb.call_static(audit, vec![ns, mode]).unwrap();
    fb.ret(Some(ns));
    let g = fb.finish();
    p.define_method(pr_tick, g);

    // deliver(m, a): the scheduler's dispatch helper.
    let deliver = p.declare_function(
        "deliver",
        vec![Type::Object(msg), Type::Object(actor), Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, deliver);
    let m = fb.param(0);
    let a = fb.param(1);
    let mode = fb.param(2);
    let r = fb.call_virtual(sel_process, vec![m, a, mode]).unwrap();
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(deliver, g);

    // main(n)
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let a1 = fb.new_object(actor);
    let a2 = fb.new_object(actor);
    let kinds = params.message_kinds.clamp(2, 3);
    let classes = [ping, pong, tick];
    let kcount = fb.const_int(kinds as i64);
    let msgs = fb.new_array(ElemType::Object(msg), kcount);
    for (i, &c) in classes.iter().take(kinds).enumerate() {
        let obj = fb.new_object(c);
        let pay = fb.const_int(i as i64 + 11);
        fb.set_field(payload_f, obj, pay);
        let up = fb.cast(msg, obj);
        let idx = fb.const_int(i as i64);
        fb.array_set(msgs, idx, up);
    }
    let zero = fb.const_int(0);
    let mode = fb.const_int(3); // the constant deep trials propagate
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let slot = fb.binop(BinOp::IRem, i, kcount);
        let m = fb.array_get(msgs, slot);
        let two = fb.const_int(2);
        let odd = fb.binop(BinOp::IAnd, i, two);
        let zero2 = fb.const_int(0);
        let even = fb.cmp(incline_ir::CmpOp::IEq, odd, zero2);
        let target = crate::util::if_else(fb, even, Type::Object(actor), |_| a1, |_| a2);
        let r = fb.call_static(deliver, vec![m, target, mode]).unwrap();
        let acc = fb.iadd(state[0], r);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    // Fold in the actors' final states.
    let s1 = fb.get_field(state_f, a1);
    let s2 = fb.get_field(state_f, a2);
    let done = fb.get_field(inbox_f, a1);
    let t = fb.iadd(out[0], s1);
    let t = fb.iadd(t, s2);
    let t = fb.iadd(t, done);
    fb.ret(Some(t));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, params.input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build(
            "actors",
            Suite::ScalaDaCapo,
            ActorParams {
                message_kinds: 3,
                input: 50,
            },
        )
        .verify_all();
        build(
            "tmt",
            Suite::ScalaDaCapo,
            ActorParams {
                message_kinds: 2,
                input: 50,
            },
        )
        .verify_all();
    }
}
