//! Text indexing and search over integer token streams.
//!
//! Models `luindex` (index construction: tokenize + posting counts) and
//! `lusearch` (query scoring: tf-weighted accumulation) — straight-line
//! array crunching through small helper functions, the kind of workload
//! where C2 is traditionally strong (the paper's Figure 9 shows only
//! modest DaCapo gains).

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Index-or-search mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IndexMode {
    /// Build posting counts (`luindex`).
    Index,
    /// Score documents against a query (`lusearch`).
    Search,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, mode: IndexMode, input: i64) -> Workload {
    let mut p = Program::new();
    let iarr = Type::Array(ElemType::Int);

    // is_sep(t): token boundary test — tiny, extremely hot.
    let is_sep = p.declare_function("is_sep", vec![Type::Int], Type::Bool);
    let mut fb = FunctionBuilder::new(&p, is_sep);
    let t = fb.param(0);
    let k = fb.const_int(13);
    let m = fb.binop(BinOp::IRem, t, k);
    let zero = fb.const_int(0);
    let r = fb.cmp(CmpOp::IEq, m, zero);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(is_sep, g);

    // token_hash(h, t): rolling hash step — tiny, extremely hot.
    let token_hash = p.declare_function("token_hash", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, token_hash);
    let h = fb.param(0);
    let t = fb.param(1);
    let k = fb.const_int(31);
    let hk = fb.imul(h, k);
    let sum = fb.iadd(hk, t);
    let mask = fb.const_int(0xFFFF);
    let r = fb.binop(BinOp::IAnd, sum, mask);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(token_hash, g);

    // tokenize_into(doc, table): scan, hash tokens, bump buckets; returns
    // the token count.
    let tokenize = p.declare_function("tokenize_into", vec![iarr, iarr], Type::Int);
    let mut fb = FunctionBuilder::new(&p, tokenize);
    let doc = fb.param(0);
    let table = fb.param(1);
    let len = fb.array_len(doc);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, len, &[zero, zero], |fb, i, state| {
        // state = (hash, count)
        let t = fb.array_get(doc, i);
        let sep = fb.call_static(is_sep, vec![t]).unwrap();
        let tlen = fb.array_len(table);
        let hash0 = state[0];
        let count0 = state[1];
        let new_hash = if_else(
            fb,
            sep,
            Type::Int,
            |fb| fb.const_int(0),
            |fb| fb.call_static(token_hash, vec![hash0, t]).unwrap(),
        );
        let bumped = if_else(
            fb,
            sep,
            Type::Int,
            |fb| {
                // Flush the finished token into its bucket.
                let slot = fb.binop(BinOp::IRem, hash0, tlen);
                let old = fb.array_get(table, slot);
                let one = fb.const_int(1);
                let inc = fb.iadd(old, one);
                fb.array_set(table, slot, inc);
                fb.iadd(count0, one)
            },
            |_| count0,
        );
        vec![new_hash, bumped]
    });
    fb.ret(Some(out[1]));
    let g = fb.finish();
    p.define_method(tokenize, g);

    // tf_score(count, qweight): rational tf curve — search mode's helper.
    let tf = p.declare_function("tf_score", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, tf);
    let c = fb.param(0);
    let qw = fb.param(1);
    let one = fb.const_int(1);
    let cp1 = fb.iadd(c, one);
    let num = fb.imul(c, qw);
    let r = fb.binop(BinOp::IDiv, num, cp1); // cp1 ≥ 1 always
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(tf, g);

    // main(n)
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let doc_len = fb.const_int(64);
    let doc = fb.new_array(ElemType::Int, doc_len);
    let table_len = fb.const_int(32);
    let table = fb.new_array(ElemType::Int, table_len);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        // Synthesize the document for this round.
        let _ = counted_loop(fb, doc_len, &[], |fb, j, _| {
            let mix = fb.iadd(i, j);
            let k = fb.const_int(97);
            let v = fb.imul(mix, k);
            let mask = fb.const_int(1023);
            let v = fb.binop(BinOp::IAnd, v, mask);
            fb.array_set(doc, j, v);
            vec![]
        });
        let acc = match mode {
            IndexMode::Index => {
                let count = fb.call_static(tokenize, vec![doc, table]).unwrap();
                fb.iadd(state[0], count)
            }
            IndexMode::Search => {
                // Tokenize once, then score buckets against the query.
                fb.call_static(tokenize, vec![doc, table]).unwrap();
                let score = counted_loop(fb, table_len, &[state[0]], |fb, b, s| {
                    let c = fb.array_get(table, b);
                    let three = fb.const_int(3);
                    let qw = fb.iadd(b, three);
                    let sc = fb.call_static(tf, vec![c, qw]).unwrap();
                    let acc = fb.iadd(s[0], sc);
                    vec![acc]
                });
                score[0]
            }
        };
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_modes_verify() {
        build("luindex", Suite::DaCapo, IndexMode::Index, 10).verify_all();
        build("lusearch", Suite::DaCapo, IndexMode::Search, 10).verify_all();
    }
}
