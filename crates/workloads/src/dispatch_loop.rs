//! Interpreter-style dispatch loops: an expression-tree evaluator with a
//! hot megamorphic `eval` callsite.
//!
//! Models `jython` (six node kinds — beyond the 3-target typeswitch, so
//! the fallback stays hot), `scalac` and `scaladoc` (fewer kinds, deeper
//! trees — speculation covers the profile). The recursive `eval` exercises
//! the paper's recursion penalty (Equation 14).

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, ClassId, ElemType, FieldId, Program, Type, ValueId};

use crate::util::counted_loop;
use crate::workload::{Suite, Workload};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct DispatchParams {
    /// Number of node kinds used (2–6). ≤3 fits the typeswitch.
    pub node_kinds: usize,
    /// Expression tree depth.
    pub depth: u32,
    /// Evaluations per iteration (entry argument).
    pub input: i64,
}

struct Hierarchy {
    expr: ClassId,
    val_f: FieldId,
    idx_f: FieldId,
    left_f: FieldId,
    right_f: FieldId,
    inner_f: FieldId,
    konst: ClassId,
    var: ClassId,
    add: ClassId,
    mul: ClassId,
    neg: ClassId,
    mask: ClassId,
}

fn declare_classes(p: &mut Program) -> Hierarchy {
    let expr = p.add_class("Expr", None);
    let val_f = p.add_field(expr, "val", Type::Int);
    let idx_f = p.add_field(expr, "idx", Type::Int);
    let left_f = p.add_field(expr, "left", Type::Object(expr));
    let right_f = p.add_field(expr, "right", Type::Object(expr));
    let inner_f = p.add_field(expr, "inner", Type::Object(expr));
    let konst = p.add_class("ConstE", Some(expr));
    let var = p.add_class("VarE", Some(expr));
    let add = p.add_class("AddE", Some(expr));
    let mul = p.add_class("MulE", Some(expr));
    let neg = p.add_class("NegE", Some(expr));
    let mask = p.add_class("MaskE", Some(expr));
    Hierarchy {
        expr,
        val_f,
        idx_f,
        left_f,
        right_f,
        inner_f,
        konst,
        var,
        add,
        mul,
        neg,
        mask,
    }
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, params: DispatchParams) -> Workload {
    let mut p = Program::new();
    let h = declare_classes(&mut p);
    let env_ty = Type::Array(ElemType::Int);

    // eval(this, env) on each node kind.
    let m_const = p.declare_method(h.konst, "eval", vec![env_ty], Type::Int);
    let m_var = p.declare_method(h.var, "eval", vec![env_ty], Type::Int);
    let m_add = p.declare_method(h.add, "eval", vec![env_ty], Type::Int);
    let m_mul = p.declare_method(h.mul, "eval", vec![env_ty], Type::Int);
    let m_neg = p.declare_method(h.neg, "eval", vec![env_ty], Type::Int);
    let m_mask = p.declare_method(h.mask, "eval", vec![env_ty], Type::Int);
    let sel_eval = p.selector_by_name("eval", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, m_const);
    let this = fb.param(0);
    let v = fb.get_field(h.val_f, this);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(m_const, g);

    let mut fb = FunctionBuilder::new(&p, m_var);
    let this = fb.param(0);
    let env = fb.param(1);
    let idx = fb.get_field(h.idx_f, this);
    let v = fb.array_get(env, idx);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(m_var, g);

    for (m, op) in [(m_add, BinOp::IAdd), (m_mul, BinOp::IMul)] {
        let mut fb = FunctionBuilder::new(&p, m);
        let this = fb.param(0);
        let env = fb.param(1);
        let l = fb.get_field(h.left_f, this);
        let r = fb.get_field(h.right_f, this);
        let lv = fb.call_virtual(sel_eval, vec![l, env]).unwrap();
        let rv = fb.call_virtual(sel_eval, vec![r, env]).unwrap();
        let out = fb.binop(op, lv, rv);
        // Bound growth so repeated evaluation stays in range.
        let m16 = fb.const_int(0xFFFF);
        let out = fb.binop(BinOp::IAnd, out, m16);
        fb.ret(Some(out));
        let g = fb.finish();
        p.define_method(m, g);
    }

    let mut fb = FunctionBuilder::new(&p, m_neg);
    let this = fb.param(0);
    let env = fb.param(1);
    let e = fb.get_field(h.inner_f, this);
    let ev = fb.call_virtual(sel_eval, vec![e, env]).unwrap();
    let out = fb.ineg(ev);
    let m16 = fb.const_int(0xFFFF);
    let out = fb.binop(BinOp::IAnd, out, m16);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_neg, g);

    let mut fb = FunctionBuilder::new(&p, m_mask);
    let this = fb.param(0);
    let env = fb.param(1);
    let e = fb.get_field(h.inner_f, this);
    let ev = fb.call_virtual(sel_eval, vec![e, env]).unwrap();
    let k = fb.const_int(255);
    let out = fb.binop(BinOp::IAnd, ev, k);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_mask, g);

    // main(n): build a fixed tree, then evaluate repeatedly.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let four = fb.const_int(4);
    let env = fb.new_array(ElemType::Int, four);

    let mut rng = 0x9E37_79B9u64 ^ params.node_kinds as u64;
    let root = emit_tree(
        &mut fb,
        &h,
        params.depth,
        params.node_kinds.clamp(2, 6),
        &mut rng,
    );

    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let slot = fb.binop(BinOp::IRem, i, four);
        fb.array_set(env, slot, i);
        let v = fb.call_virtual(sel_eval, vec![root, env]).unwrap();
        let acc = fb.binop(BinOp::IXor, state[0], v);
        let acc2 = fb.iadd(acc, v);
        vec![acc2]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);

    Workload::new(name, suite, p, main, params.input, 16)
}

/// Deterministic xorshift.
fn next(rng: &mut u64) -> u64 {
    let mut x = *rng;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *rng = x;
    x
}

/// Emits construction code for a pseudo-random expression tree and returns
/// the root value (typed `Object(Expr)`).
fn emit_tree(
    fb: &mut FunctionBuilder<'_>,
    h: &Hierarchy,
    depth: u32,
    kinds: usize,
    rng: &mut u64,
) -> ValueId {
    if depth == 0 {
        // Leaf: Const or Var.
        if next(rng).is_multiple_of(2) {
            let obj = fb.new_object(h.konst);
            let v = fb.const_int((next(rng) % 100) as i64);
            fb.set_field(h.val_f, obj, v);
            widen(fb, h, obj)
        } else {
            let obj = fb.new_object(h.var);
            let idx = fb.const_int((next(rng) % 4) as i64);
            fb.set_field(h.idx_f, obj, idx);
            widen(fb, h, obj)
        }
    } else {
        // Inner node among the enabled kinds (kind 0/1 are the leaves).
        let pick = 2 + (next(rng) as usize % (kinds.max(3) - 2));
        match pick {
            2 => {
                let l = emit_tree(fb, h, depth - 1, kinds, rng);
                let r = emit_tree(fb, h, depth - 1, kinds, rng);
                let obj = fb.new_object(h.add);
                fb.set_field(h.left_f, obj, l);
                fb.set_field(h.right_f, obj, r);
                widen(fb, h, obj)
            }
            3 => {
                let l = emit_tree(fb, h, depth - 1, kinds, rng);
                let r = emit_tree(fb, h, depth - 1, kinds, rng);
                let obj = fb.new_object(h.mul);
                fb.set_field(h.left_f, obj, l);
                fb.set_field(h.right_f, obj, r);
                widen(fb, h, obj)
            }
            4 => {
                let e = emit_tree(fb, h, depth - 1, kinds, rng);
                let obj = fb.new_object(h.neg);
                fb.set_field(h.inner_f, obj, e);
                widen(fb, h, obj)
            }
            _ => {
                let e = emit_tree(fb, h, depth - 1, kinds, rng);
                let obj = fb.new_object(h.mask);
                fb.set_field(h.inner_f, obj, e);
                widen(fb, h, obj)
            }
        }
    }
}

/// Widens a concrete node to `Object(Expr)` through a cast, so that the
/// stored trees look like what a frontend would produce.
fn widen(fb: &mut FunctionBuilder<'_>, h: &Hierarchy, obj: ValueId) -> ValueId {
    fb.cast(h.expr, obj)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn megamorphic_variant_verifies() {
        let w = build(
            "jython",
            Suite::DaCapo,
            DispatchParams {
                node_kinds: 6,
                depth: 4,
                input: 30,
            },
        );
        w.verify_all();
    }

    #[test]
    fn trimorphic_variant_verifies() {
        let w = build(
            "scalac",
            Suite::ScalaDaCapo,
            DispatchParams {
                node_kinds: 3,
                depth: 5,
                input: 20,
            },
        );
        w.verify_all();
    }
}
