//! Graph-database traversal queries (`neo4j`): friend-of-friend counting
//! over a CSR adjacency structure with polymorphic node filters.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let iarr = Type::Array(ElemType::Int);

    let filter = p.add_class("NodeFilter", None);
    let k_f = p.add_field(filter, "k", Type::Int);
    let label_filter = p.add_class("LabelFilter", Some(filter));
    let degree_filter = p.add_class("DegreeFilter", Some(filter));

    // accept(this, node, labels, offsets) -> bool
    let iargs = vec![Type::Int, iarr, iarr];
    let a_label = p.declare_method(label_filter, "accept", iargs.clone(), Type::Bool);
    let a_degree = p.declare_method(degree_filter, "accept", iargs, Type::Bool);
    let sel_accept = p.selector_by_name("accept", 4).unwrap();

    let mut fb = FunctionBuilder::new(&p, a_label);
    let this = fb.param(0);
    let node = fb.param(1);
    let labels = fb.param(2);
    let _offsets = fb.param(3);
    let k = fb.get_field(k_f, this);
    let l = fb.array_get(labels, node);
    let r = fb.cmp(CmpOp::IEq, l, k);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(a_label, g);

    let mut fb = FunctionBuilder::new(&p, a_degree);
    let this = fb.param(0);
    let node = fb.param(1);
    let _labels = fb.param(2);
    let offsets = fb.param(3);
    let k = fb.get_field(k_f, this);
    let one = fb.const_int(1);
    let next = fb.iadd(node, one);
    let lo = fb.array_get(offsets, node);
    let hi = fb.array_get(offsets, next);
    let deg = fb.isub(hi, lo);
    let r = fb.cmp(CmpOp::IGe, deg, k);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(a_degree, g);

    // fof(start, offsets, edges, labels, f) -> count of accepted
    // friends-of-friends.
    let fof = p.declare_function(
        "friends_of_friends",
        vec![Type::Int, iarr, iarr, iarr, Type::Object(filter)],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, fof);
    let start = fb.param(0);
    let offsets = fb.param(1);
    let edges = fb.param(2);
    let labels = fb.param(3);
    let f = fb.param(4);
    let one = fb.const_int(1);
    let s1 = fb.iadd(start, one);
    let lo = fb.array_get(offsets, start);
    let hi = fb.array_get(offsets, s1);
    let width = fb.isub(hi, lo);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, width, &[zero], |fb, i, state| {
        let ei = fb.iadd(lo, i);
        let friend = fb.array_get(edges, ei);
        let f1 = fb.iadd(friend, one);
        let flo = fb.array_get(offsets, friend);
        let fhi = fb.array_get(offsets, f1);
        let fw = fb.isub(fhi, flo);
        let inner = counted_loop(fb, fw, &[state[0]], |fb, j, s| {
            let eij = fb.iadd(flo, j);
            let fof_node = fb.array_get(edges, eij);
            let ok = fb
                .call_virtual(sel_accept, vec![f, fof_node, labels, offsets])
                .unwrap();
            let add = if_else(
                fb,
                ok,
                Type::Int,
                |fb| fb.const_int(1),
                |fb| fb.const_int(0),
            );
            let acc = fb.iadd(s[0], add);
            vec![acc]
        });
        vec![inner[0]]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(fof, g);

    // main(n): ring-with-chords graph of 32 nodes; alternate filters.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let nodes = fb.const_int(32);
    let one = fb.const_int(1);
    let deg = fb.const_int(3);
    let off_len = fb.iadd(nodes, one);
    let offsets = fb.new_array(ElemType::Int, off_len);
    let edge_count = fb.imul(nodes, deg);
    let edges = fb.new_array(ElemType::Int, edge_count);
    let labels = fb.new_array(ElemType::Int, nodes);
    // offsets[i] = 3i; labels[i] = i % 4; edges: i±1 and chord i+8 (ring).
    let _ = counted_loop(&mut fb, off_len, &[], |fb, i, _| {
        let o = fb.imul(i, deg);
        fb.array_set(offsets, i, o);
        vec![]
    });
    let _ = counted_loop(&mut fb, nodes, &[], |fb, i, _| {
        let m4 = fb.const_int(4);
        let l = fb.binop(BinOp::IRem, i, m4);
        fb.array_set(labels, i, l);
        let base = fb.imul(i, deg);
        let prev = fb.iadd(i, nodes);
        let prev = fb.isub(prev, one);
        let prev = fb.binop(BinOp::IRem, prev, nodes);
        let next = fb.iadd(i, one);
        let next = fb.binop(BinOp::IRem, next, nodes);
        let eight = fb.const_int(8);
        let chord = fb.iadd(i, eight);
        let chord = fb.binop(BinOp::IRem, chord, nodes);
        fb.array_set(edges, base, prev);
        let b1 = fb.iadd(base, one);
        fb.array_set(edges, b1, next);
        let two = fb.const_int(2);
        let b2 = fb.iadd(base, two);
        fb.array_set(edges, b2, chord);
        vec![]
    });
    let lf = fb.new_object(label_filter);
    let two = fb.const_int(2);
    fb.set_field(k_f, lf, two);
    let df = fb.new_object(degree_filter);
    fb.set_field(k_f, df, deg);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let start = fb.binop(BinOp::IRem, i, nodes);
        let odd = fb.binop(BinOp::IAnd, i, one);
        let is_odd = fb.cmp(CmpOp::IEq, odd, one);
        let f = if_else(
            fb,
            is_odd,
            Type::Object(filter),
            |fb| fb.cast(filter, df),
            |fb| fb.cast(filter, lf),
        );
        let c = fb
            .call_static(fof, vec![start, offsets, edges, labels, f])
            .unwrap();
        let acc = fb.iadd(state[0], c);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("neo4j", Suite::Other, 20).verify_all();
    }
}
