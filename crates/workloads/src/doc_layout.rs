//! Binary document emission (`apparat` SWF processing, `scalaxb` XML
//! binding): builder chains of small encoder functions writing into a
//! buffer — `emit_tag` calls `emit_u16` calls `emit_u8` calls `put`.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, ElemType, Program, Type};

use crate::util::counted_loop;
use crate::workload::{Suite, Workload};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct LayoutParams {
    /// Elements emitted per document.
    pub elements: i64,
    /// Documents per iteration (entry argument).
    pub input: i64,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, params: LayoutParams) -> Workload {
    let mut p = Program::new();
    let iarr = Type::Array(ElemType::Int);

    // put(buf, pos, v) -> pos+1 : the bottom of the chain.
    let put = p.declare_function("put", vec![iarr, Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, put);
    let buf = fb.param(0);
    let pos = fb.param(1);
    let v = fb.param(2);
    let len = fb.array_len(buf);
    let slot = fb.binop(BinOp::IRem, pos, len); // ring buffer, len ≥ 1
    let m255 = fb.const_int(255);
    let b = fb.binop(BinOp::IAnd, v, m255);
    fb.array_set(buf, slot, b);
    let one = fb.const_int(1);
    let np = fb.iadd(pos, one);
    fb.ret(Some(np));
    let g = fb.finish();
    p.define_method(put, g);

    // emit_u8(buf, pos, v) -> pos'
    let emit_u8 = p.declare_function("emit_u8", vec![iarr, Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, emit_u8);
    let buf = fb.param(0);
    let pos = fb.param(1);
    let v = fb.param(2);
    let np = fb.call_static(put, vec![buf, pos, v]).unwrap();
    fb.ret(Some(np));
    let g = fb.finish();
    p.define_method(emit_u8, g);

    // emit_u16(buf, pos, v) -> pos': two bytes, little endian.
    let emit_u16 = p.declare_function("emit_u16", vec![iarr, Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, emit_u16);
    let buf = fb.param(0);
    let pos = fb.param(1);
    let v = fb.param(2);
    let p1 = fb.call_static(emit_u8, vec![buf, pos, v]).unwrap();
    let eight = fb.const_int(8);
    let hi = fb.binop(BinOp::IShr, v, eight);
    let p2 = fb.call_static(emit_u8, vec![buf, p1, hi]).unwrap();
    fb.ret(Some(p2));
    let g = fb.finish();
    p.define_method(emit_u16, g);

    // emit_tag(buf, pos, tag, payload) -> pos': tag byte + u16 + checksum.
    let emit_tag = p.declare_function(
        "emit_tag",
        vec![iarr, Type::Int, Type::Int, Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, emit_tag);
    let buf = fb.param(0);
    let pos = fb.param(1);
    let tag = fb.param(2);
    let payload = fb.param(3);
    let p1 = fb.call_static(emit_u8, vec![buf, pos, tag]).unwrap();
    let p2 = fb.call_static(emit_u16, vec![buf, p1, payload]).unwrap();
    let sum = fb.iadd(tag, payload);
    let p3 = fb.call_static(emit_u8, vec![buf, p2, sum]).unwrap();
    fb.ret(Some(p3));
    let g = fb.finish();
    p.define_method(emit_tag, g);

    // emit_doc(buf, salt) -> checksum over emitted bytes.
    let emit_doc = p.declare_function("emit_doc", vec![iarr, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, emit_doc);
    let buf = fb.param(0);
    let salt = fb.param(1);
    let elems = fb.const_int(params.elements);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, elems, &[zero], |fb, e, state| {
        // state = position
        let m15 = fb.const_int(15);
        let tag = fb.binop(BinOp::IAnd, e, m15);
        let pay = fb.imul(e, salt);
        let m16 = fb.const_int(0xFFFF);
        let pay = fb.binop(BinOp::IAnd, pay, m16);
        let np = fb
            .call_static(emit_tag, vec![buf, state[0], tag, pay])
            .unwrap();
        vec![np]
    });
    // Checksum a slice of the buffer.
    let sixteen = fb.const_int(16);
    let check = counted_loop(&mut fb, sixteen, &[zero], |fb, i, s| {
        let v = fb.array_get(buf, i);
        let acc = fb.iadd(s[0], v);
        vec![acc]
    });
    let r = fb.iadd(out[0], check[0]);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(emit_doc, g);

    // main(n)
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let cap = fb.const_int(256);
    let buf = fb.new_array(ElemType::Int, cap);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let seven = fb.const_int(7);
        let salt = fb.iadd(i, seven);
        let c = fb.call_static(emit_doc, vec![buf, salt]).unwrap();
        let acc = fb.iadd(state[0], c);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, params.input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build(
            "apparat",
            Suite::ScalaDaCapo,
            LayoutParams {
                elements: 16,
                input: 10,
            },
        )
        .verify_all();
    }
}
