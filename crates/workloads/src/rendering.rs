//! Ray-tracer-style shading (`sunflow`): dense float arithmetic through
//! mid-size vector-math helper functions.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let vec3 = p.add_class("Vec3", None);
    let x_f = p.add_field(vec3, "x", Type::Float);
    let y_f = p.add_field(vec3, "y", Type::Float);
    let z_f = p.add_field(vec3, "z", Type::Float);
    let v3 = Type::Object(vec3);

    // dot(a, b)
    let dot = p.declare_function("dot", vec![v3, v3], Type::Float);
    let mut fb = FunctionBuilder::new(&p, dot);
    let a = fb.param(0);
    let b = fb.param(1);
    let ax = fb.get_field(x_f, a);
    let bx = fb.get_field(x_f, b);
    let ay = fb.get_field(y_f, a);
    let by = fb.get_field(y_f, b);
    let az = fb.get_field(z_f, a);
    let bz = fb.get_field(z_f, b);
    let xx = fb.fmul(ax, bx);
    let yy = fb.fmul(ay, by);
    let zz = fb.fmul(az, bz);
    let s = fb.fadd(xx, yy);
    let s = fb.fadd(s, zz);
    fb.ret(Some(s));
    let g = fb.finish();
    p.define_method(dot, g);

    // scale_into(out, a, k)
    let scale = p.declare_function("scale_into", vec![v3, v3, Type::Float], Type::Float);
    let mut fb = FunctionBuilder::new(&p, scale);
    let out = fb.param(0);
    let a = fb.param(1);
    let k = fb.param(2);
    for f in [x_f, y_f, z_f] {
        let v = fb.get_field(f, a);
        let s = fb.fmul(v, k);
        fb.set_field(f, out, s);
    }
    let r = fb.get_field(x_f, out);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(scale, g);

    // reflect(out, d, nrm): out = d − 2(d·nrm)·nrm
    let reflect = p.declare_function("reflect", vec![v3, v3, v3], Type::Float);
    let mut fb = FunctionBuilder::new(&p, reflect);
    let out = fb.param(0);
    let d = fb.param(1);
    let nrm = fb.param(2);
    let dn = fb.call_static(dot, vec![d, nrm]).unwrap();
    let two = fb.const_float(2.0);
    let k = fb.fmul(two, dn);
    for f in [x_f, y_f, z_f] {
        let dv = fb.get_field(f, d);
        let nv = fb.get_field(f, nrm);
        let knv = fb.fmul(k, nv);
        let rv = fb.binop(BinOp::FSub, dv, knv);
        fb.set_field(f, out, rv);
    }
    fb.ret(Some(dn));
    let g = fb.finish();
    p.define_method(reflect, g);

    // shade(d, nrm, tmp) -> float: diffuse + specular-ish term.
    let shade = p.declare_function("shade", vec![v3, v3, v3], Type::Float);
    let mut fb = FunctionBuilder::new(&p, shade);
    let d = fb.param(0);
    let nrm = fb.param(1);
    let tmp = fb.param(2);
    let diffuse = fb.call_static(dot, vec![d, nrm]).unwrap();
    let _ = fb.call_static(reflect, vec![tmp, d, nrm]).unwrap();
    let spec = fb.call_static(dot, vec![tmp, tmp]).unwrap();
    let half = fb.const_float(0.5);
    let sd = fb.fmul(diffuse, half);
    let quarter = fb.const_float(0.25);
    let ss = fb.fmul(spec, quarter);
    let sum = fb.fadd(sd, ss);
    let zero = fb.const_float(0.0);
    let pos = fb.cmp(CmpOp::FLt, zero, sum);
    let clamped = if_else(&mut fb, pos, Type::Float, |_| sum, |fb| fb.const_float(0.0));
    fb.ret(Some(clamped));
    let g = fb.finish();
    p.define_method(shade, g);

    // main(n): shade n "pixels".
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let d = fb.new_object(vec3);
    let nrm = fb.new_object(vec3);
    let tmp = fb.new_object(vec3);
    let nz = fb.const_float(1.0);
    fb.set_field(z_f, nrm, nz);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        // Perturb the ray per pixel.
        let m64 = fb.const_int(63);
        let xi = fb.binop(BinOp::IAnd, i, m64);
        let xf = fb.int_to_float(xi);
        let k = fb.const_float(1.0 / 64.0);
        let dx = fb.fmul(xf, k);
        fb.set_field(x_f, d, dx);
        let one = fb.const_float(0.7);
        fb.set_field(y_f, d, one);
        let neg = fb.const_float(-0.4);
        fb.set_field(z_f, d, neg);
        let c = fb.call_static(shade, vec![d, nrm, tmp]).unwrap();
        let kk = fb.const_float(255.0);
        let ci = fb.fmul(c, kk);
        let px = fb.float_to_int(ci);
        let acc = fb.iadd(state[0], px);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("sunflow", Suite::DaCapo, 50).verify_all();
    }
}
