//! Assertion/matcher chains (`specs`) and typer-style subtype checks
//! (`dotty`): many small polymorphic predicates invoked from a driver.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Which flavor to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecVariant {
    /// Matcher-based assertion suite (`specs`).
    Matchers,
    /// Subtype-test chains over a type lattice (`dotty`).
    Typer,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, variant: SpecVariant, input: i64) -> Workload {
    match variant {
        SpecVariant::Matchers => matchers(name, suite, input),
        SpecVariant::Typer => typer(name, suite, input),
    }
}

fn matchers(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let matcher = p.add_class("Matcher", None);
    let a_f = p.add_field(matcher, "a", Type::Int);
    let b_f = p.add_field(matcher, "b", Type::Int);
    let eq_m = p.add_class("EqMatcher", Some(matcher));
    let gt_m = p.add_class("GtMatcher", Some(matcher));
    let range_m = p.add_class("RangeMatcher", Some(matcher));

    let m_eq = p.declare_method(eq_m, "matches", vec![Type::Int], Type::Bool);
    let m_gt = p.declare_method(gt_m, "matches", vec![Type::Int], Type::Bool);
    let m_range = p.declare_method(range_m, "matches", vec![Type::Int], Type::Bool);
    let sel_matches = p.selector_by_name("matches", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, m_eq);
    let this = fb.param(0);
    let v = fb.param(1);
    let a = fb.get_field(a_f, this);
    let r = fb.cmp(CmpOp::IEq, v, a);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(m_eq, g);

    let mut fb = FunctionBuilder::new(&p, m_gt);
    let this = fb.param(0);
    let v = fb.param(1);
    let a = fb.get_field(a_f, this);
    let r = fb.cmp(CmpOp::IGt, v, a);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(m_gt, g);

    let mut fb = FunctionBuilder::new(&p, m_range);
    let this = fb.param(0);
    let v = fb.param(1);
    let a = fb.get_field(a_f, this);
    let b = fb.get_field(b_f, this);
    let ge = fb.cmp(CmpOp::IGe, v, a);
    let out = if_else(
        &mut fb,
        ge,
        Type::Bool,
        |fb| fb.cmp(CmpOp::ILe, v, b),
        |fb| fb.const_bool(false),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_range, g);

    // assert_that(v, m) -> 1 if matched else 0 (failure counter).
    let assert_that = p.declare_function(
        "assert_that",
        vec![Type::Int, Type::Object(matcher)],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, assert_that);
    let v = fb.param(0);
    let m = fb.param(1);
    let ok = fb.call_virtual(sel_matches, vec![m, v]).unwrap();
    let out = if_else(
        &mut fb,
        ok,
        Type::Int,
        |fb| fb.const_int(1),
        |fb| fb.const_int(0),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(assert_that, g);

    // main(n)
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let three = fb.const_int(3);
    let ms = fb.new_array(ElemType::Object(matcher), three);
    let e = fb.new_object(eq_m);
    let k5 = fb.const_int(5);
    fb.set_field(a_f, e, k5);
    let gt = fb.new_object(gt_m);
    let k100 = fb.const_int(100);
    fb.set_field(a_f, gt, k100);
    let rg = fb.new_object(range_m);
    let k10 = fb.const_int(10);
    let k20 = fb.const_int(20);
    fb.set_field(a_f, rg, k10);
    fb.set_field(b_f, rg, k20);
    for (i, obj) in [(0i64, e), (1, gt), (2, rg)] {
        let up = fb.cast(matcher, obj);
        let idx = fb.const_int(i);
        fb.array_set(ms, idx, up);
    }
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let inner = counted_loop(fb, three, &[state[0]], |fb, k, s| {
            let m = fb.array_get(ms, k);
            let m255 = fb.const_int(255);
            let v = fb.binop(BinOp::IAnd, i, m255);
            let passed = fb.call_static(assert_that, vec![v, m]).unwrap();
            let acc = fb.iadd(s[0], passed);
            vec![acc]
        });
        vec![inner[0]]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

fn typer(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    // A small type lattice as classes: the "typer" relates pairs of type
    // representations through virtual + instanceof-heavy code.
    let ty = p.add_class("Ty", None);
    let id_f = p.add_field(ty, "id", Type::Int);
    let named = p.add_class("NamedTy", Some(ty));
    let arrow = p.add_class("ArrowTy", Some(ty));
    let dom_f = p.add_field(arrow, "dom", Type::Object(ty));
    let cod_f = p.add_field(arrow, "cod", Type::Object(ty));

    // subtype_of(this, other) -> bool
    let s_named = p.declare_method(named, "subtype_of", vec![Type::Object(ty)], Type::Bool);
    let s_arrow = p.declare_method(arrow, "subtype_of", vec![Type::Object(ty)], Type::Bool);
    let sel_sub = p.selector_by_name("subtype_of", 2).unwrap();

    // Named: id-divisibility lattice (id_b divides id_a → subtype).
    let mut fb = FunctionBuilder::new(&p, s_named);
    let this = fb.param(0);
    let other = fb.param(1);
    let is_named = fb.instance_of(named, other);
    let out = if_else(
        &mut fb,
        is_named,
        Type::Bool,
        |fb| {
            let o = fb.cast(named, other);
            let a = fb.get_field(id_f, this);
            let b = fb.get_field(id_f, o);
            let one = fb.const_int(1);
            let b1 = {
                let zero = fb.const_int(0);
                let eq = fb.cmp(CmpOp::IEq, b, zero);
                if_else(fb, eq, Type::Int, |_| one, |_| b)
            };
            let m = fb.binop(BinOp::IRem, a, b1);
            let zero = fb.const_int(0);
            fb.cmp(CmpOp::IEq, m, zero)
        },
        |fb| fb.const_bool(false),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(s_named, g);

    // Arrow: contravariant domain, covariant codomain.
    let mut fb = FunctionBuilder::new(&p, s_arrow);
    let this = fb.param(0);
    let other = fb.param(1);
    let is_arrow = fb.instance_of(arrow, other);
    let out = if_else(
        &mut fb,
        is_arrow,
        Type::Bool,
        |fb| {
            let o = fb.cast(arrow, other);
            let d1 = fb.get_field(dom_f, this);
            let d2 = fb.get_field(dom_f, o);
            let c1 = fb.get_field(cod_f, this);
            let c2 = fb.get_field(cod_f, o);
            let dom_ok = fb.call_virtual(sel_sub, vec![d2, d1]).unwrap();
            if_else(
                fb,
                dom_ok,
                Type::Bool,
                |fb| fb.call_virtual(sel_sub, vec![c1, c2]).unwrap(),
                |fb| fb.const_bool(false),
            )
        },
        |fb| fb.const_bool(false),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(s_arrow, g);

    // main(n): relate pairs from a pool of types.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let pool_len = fb.const_int(6);
    let pool = fb.new_array(ElemType::Object(ty), pool_len);
    let mk_named = |fb: &mut FunctionBuilder<'_>, id: i64| {
        let o = fb.new_object(named);
        let k = fb.const_int(id);
        fb.set_field(id_f, o, k);
        fb.cast(ty, o)
    };
    let n2 = mk_named(&mut fb, 2);
    let n3 = mk_named(&mut fb, 3);
    let n6 = mk_named(&mut fb, 6);
    let n12 = mk_named(&mut fb, 12);
    let arrow1 = {
        let o = fb.new_object(arrow);
        fb.set_field(dom_f, o, n2);
        fb.set_field(cod_f, o, n6);
        fb.cast(ty, o)
    };
    let arrow2 = {
        let o = fb.new_object(arrow);
        fb.set_field(dom_f, o, n6);
        fb.set_field(cod_f, o, n12);
        fb.cast(ty, o)
    };
    for (i, v) in [n2, n3, n6, n12, arrow1, arrow2].into_iter().enumerate() {
        let idx = fb.const_int(i as i64);
        fb.array_set(pool, idx, v);
    }
    let six = fb.const_int(6);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let ai = fb.binop(BinOp::IRem, i, six);
        let shift = fb.const_int(1);
        let bi0 = fb.iadd(i, shift);
        let bi = fb.binop(BinOp::IRem, bi0, six);
        let a = fb.array_get(pool, ai);
        let b = fb.array_get(pool, bi);
        let rel = fb.call_virtual(sel_sub, vec![a, b]).unwrap();
        let add = if_else(
            fb,
            rel,
            Type::Int,
            |fb| fb.const_int(1),
            |fb| fb.const_int(0),
        );
        let acc = fb.iadd(state[0], add);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_variants_verify() {
        build("specs", Suite::ScalaDaCapo, SpecVariant::Matchers, 20).verify_all();
        build("dotty", Suite::Other, SpecVariant::Typer, 20).verify_all();
    }
}
