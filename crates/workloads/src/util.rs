//! Shared construction helpers for workload programs.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{CmpOp, Type, ValueId};

/// Emits a counted loop `for i in 0..n` threading `init` state values
/// through loop-carried block parameters. `body` receives the builder
/// (positioned inside the loop body), the induction variable and the
/// current state, and returns the next state. Returns the final state.
///
/// The closure may create additional blocks; whichever block it leaves the
/// cursor on receives the back edge.
pub fn counted_loop<F>(
    fb: &mut FunctionBuilder<'_>,
    n: ValueId,
    init: &[ValueId],
    body: F,
) -> Vec<ValueId>
where
    F: FnOnce(&mut FunctionBuilder<'_>, ValueId, &[ValueId]) -> Vec<ValueId>,
{
    let mut param_tys = vec![Type::Int];
    param_tys.extend(init.iter().map(|&v| fb.value_type(v)));
    let (head, hp) = fb.add_block_with_params(&param_tys);
    let body_block = fb.add_block();
    let state_tys: Vec<Type> = param_tys[1..].to_vec();
    let (exit, exit_state) = fb.add_block_with_params(&state_tys);

    let zero = fb.const_int(0);
    let mut entry_args = vec![zero];
    entry_args.extend_from_slice(init);
    fb.jump(head, entry_args);

    fb.switch_to(head);
    let cond = fb.cmp(CmpOp::ILt, hp[0], n);
    fb.branch(cond, (body_block, vec![]), (exit, hp[1..].to_vec()));

    fb.switch_to(body_block);
    let next_state = body(fb, hp[0], &hp[1..]);
    assert_eq!(
        next_state.len(),
        init.len(),
        "loop body must return the full state"
    );
    let one = fb.const_int(1);
    let i_next = fb.iadd(hp[0], one);
    let mut back_args = vec![i_next];
    back_args.extend(next_state);
    fb.jump(head, back_args);

    fb.switch_to(exit);
    exit_state
}

/// Emits `if cond { then } else { other }` producing one merged value.
/// Both closures receive the builder positioned in their own block and
/// return the branch's value; the cursor ends on the join block.
pub fn if_else<T, E>(
    fb: &mut FunctionBuilder<'_>,
    cond: ValueId,
    ty: Type,
    then: T,
    other: E,
) -> ValueId
where
    T: FnOnce(&mut FunctionBuilder<'_>) -> ValueId,
    E: FnOnce(&mut FunctionBuilder<'_>) -> ValueId,
{
    let tb = fb.add_block();
    let eb = fb.add_block();
    let (join, jp) = fb.add_block_with_params(&[ty]);
    fb.branch(cond, (tb, vec![]), (eb, vec![]));
    fb.switch_to(tb);
    let tv = then(fb);
    fb.jump(join, vec![tv]);
    fb.switch_to(eb);
    let ev = other(fb);
    fb.jump(join, vec![ev]);
    fb.switch_to(join);
    jp[0]
}

/// Emits `rounds` of non-foldable integer mixing over `v` (each round is
/// three dependent ops). Used to pad archetype methods up to realistic
/// IR sizes — the paper's thresholds (`r1 ≈ 3000`, `t2 = 120`) only bind
/// when methods and call towers have Graal-like sizes. The result depends
/// on `v`, so neither constant folding nor DCE can remove the chain.
pub fn pad_mix(fb: &mut FunctionBuilder<'_>, v: ValueId, rounds: usize) -> ValueId {
    let mut x = v;
    for i in 0..rounds {
        let k = fb.const_int(0x9E37 + 2 * i as i64 + 1);
        let a = fb.imul(x, k);
        let s = fb.const_int(((i % 3) + 1) as i64);
        let b = fb.binop(incline_ir::BinOp::IShr, a, s);
        x = fb.binop(incline_ir::BinOp::IXor, a, b);
    }
    let mask = fb.const_int(0xFF_FFFF);
    fb.binop(incline_ir::BinOp::IAnd, x, mask)
}

/// Float analog of [`pad_mix`].
pub fn pad_fmix(fb: &mut FunctionBuilder<'_>, v: ValueId, rounds: usize) -> ValueId {
    let mut x = v;
    for i in 0..rounds {
        let k = fb.const_float(1.0 + 0.03 * i as f64);
        let a = fb.fmul(x, k);
        let one = fb.const_float(1.0);
        let d = fb.fadd(a, one);
        x = fb.binop(incline_ir::BinOp::FDiv, a, d);
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::verify::verify;
    use incline_ir::{Program, RetType};

    #[test]
    fn counted_loop_builds_verified_sum() {
        let mut p = Program::new();
        let m = p.declare_function("sum", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
            let acc = fb.iadd(state[0], i);
            vec![acc]
        });
        fb.ret(Some(out[0]));
        let g = fb.finish();
        p.define_method(m, g);
        verify(&p, p.method(m)).unwrap();
    }

    #[test]
    fn if_else_merges() {
        let mut p = Program::new();
        let m = p.declare_function("pick", vec![Type::Bool], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let c = fb.param(0);
        let v = if_else(
            &mut fb,
            c,
            Type::Int,
            |fb| fb.const_int(1),
            |fb| fb.const_int(2),
        );
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(m, g);
        verify(&p, p.method(m)).unwrap();
    }

    #[test]
    fn nested_loops_verify() {
        let mut p = Program::new();
        let m = p.declare_function("nest", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
            let inner = counted_loop(fb, i, &[state[0]], |fb, j, s| {
                let a = fb.iadd(s[0], j);
                vec![a]
            });
            vec![inner[0]]
        });
        fb.ret(Some(out[0]));
        let g = fb.finish();
        p.define_method(m, g);
        verify(&p, p.method(m)).unwrap();
        assert_eq!(
            incline_ir::loops::LoopForest::compute(&p.method(m).graph)
                .loops
                .len(),
            2
        );
    }

    #[test]
    fn ret_type_helper() {
        let _: RetType = Type::Int.into();
    }

    #[test]
    fn pad_mix_is_not_foldable() {
        let mut p = Program::new();
        let m = p.declare_function("padded", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let v = pad_mix(&mut fb, x, 10);
        fb.ret(Some(v));
        let mut g = fb.finish();
        let before = g.size();
        assert!(before > 30, "padding must add size: {before}");
        incline_opt::optimize(&p, &mut g);
        assert!(
            g.size() as f64 > before as f64 * 0.8,
            "padding must survive the optimizer"
        );
    }

    #[test]
    fn pad_fmix_verifies() {
        let mut p = Program::new();
        let m = p.declare_function("fpadded", vec![Type::Float], Type::Float);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let v = pad_fmix(&mut fb, x, 8);
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(m, g);
        verify(&p, p.method(m)).unwrap();
    }
}
