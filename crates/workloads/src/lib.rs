#![warn(missing_docs)]

//! # incline-workloads
//!
//! The benchmark programs of the reproduction. The paper evaluates on
//! Java DaCapo (10), Scala DaCapo (12), Spark-Perf (3), Neo4j, Dotty and
//! STMBench7 — 28 benchmarks we cannot run on a Rust substrate, so each
//! is **simulated by an archetype program** that reproduces its
//! inlining-relevant structure (DESIGN.md §4): megamorphic dispatch
//! loops, tiny-hot-method clusters, closure-shaped float kernels, visitor
//! trees, transactional read/write sets, and so on. Names and suite
//! groupings match the paper's figures.
//!
//! [`all_benchmarks`] returns the full set; [`by_name`] fetches one;
//! [`generator::generate`] produces seeded random programs for
//! differential testing.

pub mod actors;
pub mod cache_pressure;
pub mod collections;
pub mod dispatch_loop;
pub mod doc_layout;
pub mod event_sim;
pub mod factor_graph;
pub mod generator;
pub mod graphdb;
pub mod numeric;
pub mod phase_change;
pub mod rendering;
pub mod search_index;
pub mod spec_suite;
pub mod sql_engine;
pub mod stm;
pub mod tenants;
pub mod tree_transform;
pub mod util;
pub mod workload;

pub use generator::{generate, shrink, GenConfig};
pub use workload::{Suite, Workload};

use actors::ActorParams;
use collections::CollectionsParams;
use dispatch_loop::DispatchParams;
use doc_layout::LayoutParams;
use numeric::SparkKernel;
use search_index::IndexMode;
use spec_suite::SpecVariant;
use tree_transform::{TreeParams, TreeVariant};

/// Builds every benchmark of the paper's evaluation (28 total).
pub fn all_benchmarks() -> Vec<Workload> {
    use Suite::*;
    vec![
        // ---- Java DaCapo (10) ------------------------------------------------
        event_sim::build("avrora", DaCapo, 40),
        tree_transform::build(
            "batik",
            DaCapo,
            TreeParams {
                variant: TreeVariant::Render,
                depth: 4,
                input: 30,
            },
        ),
        tree_transform::build(
            "fop",
            DaCapo,
            TreeParams {
                variant: TreeVariant::Layout,
                depth: 4,
                input: 30,
            },
        ),
        sql_engine::build("h2", DaCapo, 15),
        dispatch_loop::build(
            "jython",
            DaCapo,
            DispatchParams {
                node_kinds: 6,
                depth: 4,
                input: 60,
            },
        ),
        search_index::build("luindex", DaCapo, IndexMode::Index, 25),
        search_index::build("lusearch", DaCapo, IndexMode::Search, 20),
        tree_transform::build(
            "pmd",
            DaCapo,
            TreeParams {
                variant: TreeVariant::RuleMatch,
                depth: 4,
                input: 30,
            },
        ),
        rendering::build("sunflow", DaCapo, 120),
        tree_transform::build(
            "xalan",
            DaCapo,
            TreeParams {
                variant: TreeVariant::Transform,
                depth: 4,
                input: 30,
            },
        ),
        // ---- Scala DaCapo (12) ------------------------------------------------
        actors::build(
            "actors",
            ScalaDaCapo,
            ActorParams {
                message_kinds: 3,
                input: 150,
            },
        ),
        doc_layout::build(
            "apparat",
            ScalaDaCapo,
            LayoutParams {
                elements: 24,
                input: 25,
            },
        ),
        factor_graph::build("factorie", ScalaDaCapo, 20),
        collections::build(
            "kiama",
            ScalaDaCapo,
            CollectionsParams {
                fn_classes: 3,
                strided_seq: false,
                seq_len: 40,
                input: 25,
            },
        ),
        dispatch_loop::build(
            "scalac",
            ScalaDaCapo,
            DispatchParams {
                node_kinds: 3,
                depth: 5,
                input: 40,
            },
        ),
        dispatch_loop::build(
            "scaladoc",
            ScalaDaCapo,
            DispatchParams {
                node_kinds: 4,
                depth: 4,
                input: 40,
            },
        ),
        collections::build(
            "scalap",
            ScalaDaCapo,
            CollectionsParams {
                fn_classes: 2,
                strided_seq: true,
                seq_len: 32,
                input: 25,
            },
        ),
        collections::build(
            "scalariform",
            ScalaDaCapo,
            CollectionsParams {
                fn_classes: 2,
                strided_seq: false,
                seq_len: 48,
                input: 25,
            },
        ),
        collections::build(
            "scalatest",
            ScalaDaCapo,
            CollectionsParams {
                fn_classes: 1,
                strided_seq: false,
                seq_len: 24,
                input: 40,
            },
        ),
        doc_layout::build(
            "scalaxb",
            ScalaDaCapo,
            LayoutParams {
                elements: 16,
                input: 30,
            },
        ),
        spec_suite::build("specs", ScalaDaCapo, SpecVariant::Matchers, 120),
        actors::build(
            "tmt",
            ScalaDaCapo,
            ActorParams {
                message_kinds: 2,
                input: 150,
            },
        ),
        // ---- Spark-Perf (3) ----------------------------------------------------
        numeric::build("gauss-mix", SparkPerf, SparkKernel::GaussMix, 120),
        numeric::build("dec-tree", SparkPerf, SparkKernel::DecTree, 120),
        numeric::build("naive-bayes", SparkPerf, SparkKernel::NaiveBayes, 60),
        // ---- Other (3) ----------------------------------------------------------
        graphdb::build("neo4j", Other, 60),
        spec_suite::build("dotty", Other, SpecVariant::Typer, 150),
        stm::build("stmbench7", Other, 60),
    ]
}

/// Extra workloads outside the paper's 28-benchmark evaluation set: they
/// are addressable through [`by_name`] (and thus the CLI) but do not
/// participate in the figure-matching suites.
pub fn extra_benchmarks() -> Vec<Workload> {
    vec![
        phase_change::build("phase_change", Suite::Other, 60),
        cache_pressure::standard(),
    ]
}

/// Fetches one benchmark by its paper name (including the extras).
pub fn by_name(name: &str) -> Option<Workload> {
    all_benchmarks()
        .into_iter()
        .chain(extra_benchmarks())
        .find(|w| w.name == name)
}

/// The benchmarks of one suite, in figure order.
pub fn suite(s: Suite) -> Vec<Workload> {
    all_benchmarks()
        .into_iter()
        .filter(|w| w.suite == s)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_28_benchmarks_with_unique_names() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 28);
        let mut names: Vec<&str> = all.iter().map(|w| w.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 28);
    }

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(suite(Suite::DaCapo).len(), 10);
        assert_eq!(suite(Suite::ScalaDaCapo).len(), 12);
        assert_eq!(suite(Suite::SparkPerf).len(), 3);
        assert_eq!(suite(Suite::Other).len(), 3);
    }

    #[test]
    fn every_benchmark_verifies() {
        for w in all_benchmarks() {
            w.verify_all();
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert!(by_name("factorie").is_some());
        assert!(by_name("gauss-mix").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn extras_resolve_but_stay_out_of_the_suites() {
        let extra = by_name("phase_change").expect("extra workload resolves");
        extra.verify_all();
        assert!(all_benchmarks().iter().all(|w| w.name != "phase_change"));
    }
}
