//! Software-transactional-memory operations over a shared structure
//! (`stmbench7` on ScalaSTM): transactions built from *tiny hot methods*
//! — `tx_read`, `tx_write`, `validate`, `commit` — that only pay off when
//! the whole cluster is inlined into the transaction loop.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let tref = p.add_class("TRef", None);
    let val_f = p.add_field(tref, "value", Type::Int);
    let ver_f = p.add_field(tref, "version", Type::Int);
    let refarr = Type::Array(ElemType::Object(tref));

    // tx_read(ref, expected_ver) -> value (or -1 on conflict)
    let tx_read = p.declare_function("tx_read", vec![Type::Object(tref), Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, tx_read);
    let r = fb.param(0);
    let ver = fb.param(1);
    let rv = fb.get_field(ver_f, r);
    let ok = fb.cmp(CmpOp::ILe, rv, ver);
    let out = if_else(
        &mut fb,
        ok,
        Type::Int,
        |fb| fb.get_field(val_f, r),
        |fb| fb.const_int(-1),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(tx_read, g);

    // tx_write(ref, v, ver): store + stamp.
    let tx_write = p.declare_function(
        "tx_write",
        vec![Type::Object(tref), Type::Int, Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, tx_write);
    let r = fb.param(0);
    let v = fb.param(1);
    let ver = fb.param(2);
    fb.set_field(val_f, r, v);
    fb.set_field(ver_f, r, ver);
    let one = fb.const_int(1);
    fb.ret(Some(one));
    let g = fb.finish();
    p.define_method(tx_write, g);

    // validate(read_sum): parity check — decides commit vs retry.
    let validate = p.declare_function("validate", vec![Type::Int], Type::Bool);
    let mut fb = FunctionBuilder::new(&p, validate);
    let s = fb.param(0);
    let zero = fb.const_int(0);
    let ok = fb.cmp(CmpOp::IGe, s, zero);
    fb.ret(Some(ok));
    let g = fb.finish();
    p.define_method(validate, g);

    // transaction(refs, ver, salt) -> committed value
    let transaction =
        p.declare_function("transaction", vec![refarr, Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, transaction);
    let refs = fb.param(0);
    let ver = fb.param(1);
    let salt = fb.param(2);
    let len = fb.array_len(refs);
    let zero = fb.const_int(0);
    // Read phase.
    let read = counted_loop(&mut fb, len, &[zero], |fb, i, state| {
        let r = fb.array_get(refs, i);
        let v = fb.call_static(tx_read, vec![r, ver]).unwrap();
        let acc = fb.iadd(state[0], v);
        vec![acc]
    });
    // Validate, then write phase.
    let ok = fb.call_static(validate, vec![read[0]]).unwrap();
    let committed = if_else(
        &mut fb,
        ok,
        Type::Int,
        |fb| {
            let wsum = counted_loop(fb, len, &[zero], |fb, i, state| {
                let r = fb.array_get(refs, i);
                let old = fb.get_field(val_f, r);
                let nv = fb.iadd(old, salt);
                let mask = fb.const_int(0xFFFF);
                let nv = fb.binop(BinOp::IAnd, nv, mask);
                let w = fb.call_static(tx_write, vec![r, nv, ver]).unwrap();
                let acc = fb.iadd(state[0], w);
                vec![acc]
            });
            wsum[0]
        },
        |fb| fb.const_int(0),
    );
    let total = fb.iadd(read[0], committed);
    fb.ret(Some(total));
    let g = fb.finish();
    p.define_method(transaction, g);

    // main(n): n transactions over 8 refs.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let count = fb.const_int(8);
    let refs = fb.new_array(ElemType::Object(tref), count);
    let _ = counted_loop(&mut fb, count, &[], |fb, i, _| {
        let obj = fb.new_object(tref);
        let v = fb.imul(i, i);
        fb.set_field(val_f, obj, v);
        fb.array_set(refs, i, obj);
        vec![]
    });
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let seven = fb.const_int(7);
        let salt = fb.binop(BinOp::IAnd, i, seven);
        let t = fb.call_static(transaction, vec![refs, i, salt]).unwrap();
        let acc = fb.iadd(state[0], t);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("stmbench7", Suite::Other, 20).verify_all();
    }
}
