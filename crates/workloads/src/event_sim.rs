//! Discrete-event microcontroller simulation (`avrora`): a ring of device
//! state machines stepped in a hot loop through a virtual `step`.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let device = p.add_class("Device", None);
    let state_f = p.add_field(device, "state", Type::Int);
    let timer = p.add_class("Timer", Some(device));
    let period_f = p.add_field(timer, "period", Type::Int);
    let radio = p.add_class("Radio", Some(device));
    let cpu = p.add_class("Cpu", Some(device));

    // step(this, tick) -> int (events produced)
    let s_timer = p.declare_method(timer, "step", vec![Type::Int], Type::Int);
    let s_radio = p.declare_method(radio, "step", vec![Type::Int], Type::Int);
    let s_cpu = p.declare_method(cpu, "step", vec![Type::Int], Type::Int);
    let sel_step = p.selector_by_name("step", 2).unwrap();

    // Timer: fires when tick % period == 0.
    let mut fb = FunctionBuilder::new(&p, s_timer);
    let this = fb.param(0);
    let tick = fb.param(1);
    let period = fb.get_field(period_f, this);
    let m = fb.binop(BinOp::IRem, tick, period); // period ≥ 1 by construction
    let zero = fb.const_int(0);
    let fires = fb.cmp(CmpOp::IEq, m, zero);
    let out = if_else(
        &mut fb,
        fires,
        Type::Int,
        |fb| {
            let st = fb.get_field(state_f, this);
            let one = fb.const_int(1);
            let ns = fb.iadd(st, one);
            fb.set_field(state_f, this, ns);
            one
        },
        |fb| fb.const_int(0),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(s_timer, g);

    // Radio: toggles a bit, produces an event on the rising edge.
    let mut fb = FunctionBuilder::new(&p, s_radio);
    let this = fb.param(0);
    let tick = fb.param(1);
    let st = fb.get_field(state_f, this);
    let one = fb.const_int(1);
    let ns = fb.binop(BinOp::IXor, st, one);
    fb.set_field(state_f, this, ns);
    let three = fb.const_int(3);
    let busy = fb.binop(BinOp::IAnd, tick, three);
    let zero = fb.const_int(0);
    let edge = fb.cmp(CmpOp::IEq, busy, zero);
    let out = if_else(
        &mut fb,
        edge,
        Type::Int,
        |fb| fb.const_int(1),
        |fb| fb.const_int(0),
    );
    let out = fb.imul(out, ns);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(s_radio, g);

    // Cpu: small arithmetic state machine.
    let mut fb = FunctionBuilder::new(&p, s_cpu);
    let this = fb.param(0);
    let tick = fb.param(1);
    let st = fb.get_field(state_f, this);
    let k = fb.const_int(5);
    let mixed = fb.imul(st, k);
    let mixed = fb.iadd(mixed, tick);
    let mask = fb.const_int(0xFFFF);
    let ns = fb.binop(BinOp::IAnd, mixed, mask);
    fb.set_field(state_f, this, ns);
    let m7 = fb.const_int(7);
    let r = fb.binop(BinOp::IAnd, ns, m7);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(s_cpu, g);

    // main(n): step the device ring n times.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let count = fb.const_int(6);
    let devices = fb.new_array(ElemType::Object(device), count);
    for i in 0..6i64 {
        let obj = match i % 3 {
            0 => {
                let t = fb.new_object(timer);
                let per = fb.const_int(2 + i);
                fb.set_field(period_f, t, per);
                fb.cast(device, t)
            }
            1 => {
                let r = fb.new_object(radio);
                fb.cast(device, r)
            }
            _ => {
                let c = fb.new_object(cpu);
                fb.cast(device, c)
            }
        };
        let idx = fb.const_int(i);
        fb.array_set(devices, idx, obj);
    }
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, tick, state| {
        let inner = counted_loop(fb, count, &[state[0]], |fb, d, s| {
            let dev = fb.array_get(devices, d);
            let ev = fb.call_virtual(sel_step, vec![dev, tick]).unwrap();
            let acc = fb.iadd(s[0], ev);
            vec![acc]
        });
        vec![inner[0]]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("avrora", Suite::DaCapo, 30).verify_all();
    }
}
