//! The [`Workload`] type: a named, runnable benchmark program.

use incline_ir::{MethodId, Program};

/// Which of the paper's suites a benchmark belongs to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Java DaCapo (10 benchmarks).
    DaCapo,
    /// Scala DaCapo (12 benchmarks).
    ScalaDaCapo,
    /// Spark-Perf MLlib kernels (3 benchmarks).
    SparkPerf,
    /// Neo4j / Dotty / STMBench7.
    Other,
}

impl Suite {
    /// Display name matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Suite::DaCapo => "DaCapo",
            Suite::ScalaDaCapo => "Scala DaCapo",
            Suite::SparkPerf => "Spark-Perf",
            Suite::Other => "Other",
        }
    }
}

/// A runnable benchmark: program, entry point and default workload size.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (matches the paper's benchmark names).
    pub name: String,
    /// Suite grouping.
    pub suite: Suite,
    /// The program.
    pub program: Program,
    /// Entry method with signature `fn(int) -> int`.
    pub entry: MethodId,
    /// Default entry argument (work per iteration).
    pub input: i64,
    /// Default repetition count for the measurement protocol.
    pub iterations: usize,
}

impl Workload {
    /// Creates a workload.
    pub fn new(
        name: impl Into<String>,
        suite: Suite,
        program: Program,
        entry: MethodId,
        input: i64,
        iterations: usize,
    ) -> Self {
        Workload {
            name: name.into(),
            suite,
            program,
            entry,
            input,
            iterations,
        }
    }

    /// Verifies every method of the program.
    ///
    /// # Panics
    ///
    /// Panics with the verifier diagnostic if any method is ill-formed —
    /// workload construction bugs should fail loudly in tests.
    pub fn verify_all(&self) {
        for m in self.program.method_ids() {
            let method = self.program.method(m);
            if let Err(e) = incline_ir::verify::verify(&self.program, method) {
                panic!(
                    "workload {}: method {} fails to verify: {e}",
                    self.name, method.name
                );
            }
        }
    }

    /// A scaled copy (smaller/larger input for quick tests or stress).
    pub fn with_input(mut self, input: i64) -> Self {
        self.input = input;
        self
    }

    /// A copy with a different repetition count.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }
}
