//! Seeded random program generator for differential testing.
//!
//! Generates well-typed, terminating programs: an acyclic call DAG of
//! integer functions with bounded loops, guarded divisions, conditionals,
//! field traffic through a small class pair, and a virtual callsite whose
//! receiver alternates (exercising typeswitch emission). Differential
//! tests run each program interpreted and compiled under every inliner
//! and require identical outputs.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, MethodId, Program, Rng64, Type, ValueId};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Tunables for generated programs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GenConfig {
    /// Number of generated functions (call-DAG depth).
    pub functions: usize,
    /// Expression operations per function body.
    pub ops_per_function: usize,
    /// Probability of a bounded loop per function (0–1).
    pub loop_prob: f64,
    /// Probability of a conditional per function (0–1).
    pub branch_prob: f64,
    /// Number of `GenBase` subclasses (clamped to ≥ 2). With more than
    /// two, the loop-nested polymorphic callsite becomes megamorphic.
    pub subclasses: usize,
    /// Probability of a loop-nested polymorphic `mix` call per function
    /// (0–1): a bounded loop whose single virtual callsite cycles its
    /// receiver through every subclass.
    pub loop_poly_prob: f64,
    /// Maximum static calls to earlier functions per body (≥ 1). Higher
    /// fanout produces deeper, busier call chains.
    pub call_fanout: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            functions: 6,
            ops_per_function: 14,
            loop_prob: 0.5,
            branch_prob: 0.6,
            subclasses: 2,
            loop_poly_prob: 0.0,
            call_fanout: 2,
        }
    }
}

impl GenConfig {
    /// The hardened corpus preset: deeper call chains, megamorphic
    /// receiver sets and loop-nested polymorphic callsites. This is the
    /// configuration the differential trial-cache identity tests sweep.
    pub fn hardened() -> GenConfig {
        GenConfig {
            functions: 12,
            ops_per_function: 20,
            loop_prob: 0.7,
            branch_prob: 0.8,
            subclasses: 4,
            loop_poly_prob: 0.6,
            call_fanout: 3,
        }
    }
}

/// Generates a random workload from a seed.
pub fn generate(seed: u64, config: GenConfig) -> Workload {
    let mut rng = Rng64::new(seed);
    let mut p = Program::new();

    // A class family with a virtual `mix`: `subclasses` concrete
    // receivers, each with a distinct body so devirtualizing to the
    // wrong class changes the answer.
    let base = p.add_class("GenBase", None);
    let k_f = p.add_field(base, "k", Type::Int);
    let n_sub = config.subclasses.max(2);
    let classes: Vec<_> = (0..n_sub)
        .map(|j| p.add_class(format!("GenSub{j}"), Some(base)))
        .collect();
    let mix_methods: Vec<_> = classes
        .iter()
        .map(|&cls| p.declare_method(cls, "mix", vec![Type::Int], Type::Int))
        .collect();
    let sel_mix = p.selector_by_name("mix", 2).unwrap();

    for (j, &mix) in mix_methods.iter().enumerate() {
        let mut fb = FunctionBuilder::new(&p, mix);
        let this = fb.param(0);
        let x = fb.param(1);
        let k = fb.get_field(k_f, this);
        let r = match j % 4 {
            0 => fb.iadd(x, k),
            1 => fb.binop(BinOp::IXor, x, k),
            2 => {
                let t = fb.imul(x, k);
                let mask = fb.const_int(0xFFFF);
                fb.binop(BinOp::IAnd, t, mask)
            }
            _ => {
                let t = fb.isub(x, k);
                let c = fb.const_int(j as i64 + 1);
                fb.iadd(t, c)
            }
        };
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(mix, g);
    }

    // Declare the function DAG up front (bodies may call earlier ones).
    let mut funcs: Vec<MethodId> = Vec::new();
    for i in 0..config.functions {
        funcs.push(p.declare_function(format!("gen_f{i}"), vec![Type::Int, Type::Int], Type::Int));
    }

    for (i, &f) in funcs.iter().enumerate() {
        let graph = {
            let mut fb = FunctionBuilder::new(&p, f);
            let a = fb.param(0);
            let b = fb.param(1);
            let mut pool: Vec<ValueId> = vec![a, b];

            // Optionally allocate an object for field traffic + virtual mix.
            let obj = if rng.gen_bool(0.5) {
                let cls = classes[rng.gen_index(classes.len())];
                let o = fb.new_object(cls);
                let kv = fb.const_int(rng.gen_range(1, 50));
                fb.set_field(k_f, o, kv);
                Some(fb.cast(base, o))
            } else {
                None
            };

            for _ in 0..config.ops_per_function {
                let v = emit_op(&mut fb, &mut rng, &pool, obj, sel_mix, k_f);
                pool.push(v);
            }

            // Optionally a bounded loop accumulating over the pool.
            if rng.gen_bool(config.loop_prob) {
                let trips = fb.const_int(rng.gen_range(2, 7));
                let seed_v = *last(&pool);
                let picked = pool[rng.gen_index(pool.len())];
                let out = counted_loop(&mut fb, trips, &[seed_v], |fb, iv, s| {
                    let t = fb.iadd(s[0], picked);
                    let t = fb.binop(BinOp::IXor, t, iv);
                    let mask = fb.const_int(0xFFFF);
                    let t = fb.binop(BinOp::IAnd, t, mask);
                    vec![t]
                });
                pool.push(out[0]);
            }

            // Optionally a loop-nested polymorphic call: one receiver per
            // subclass, and a single virtual callsite inside a bounded
            // loop whose receiver cycles through all of them — the
            // megamorphic shape the clustering and typeswitch paths must
            // get right.
            if rng.gen_bool(config.loop_poly_prob) {
                let recvs: Vec<ValueId> = classes
                    .iter()
                    .map(|&cls| {
                        let o = fb.new_object(cls);
                        let kv = fb.const_int(rng.gen_range(1, 50));
                        fb.set_field(k_f, o, kv);
                        fb.cast(base, o)
                    })
                    .collect();
                let trips = fb.const_int(rng.gen_range(3, 9));
                let seed_v = *last(&pool);
                let out = counted_loop(&mut fb, trips, &[seed_v], |fb, iv, s| {
                    // Select the receiver by a masked induction value
                    // folded through an if-else chain, so one callsite
                    // sees every subclass.
                    let mask = fb.const_int(recvs.len().next_power_of_two() as i64 - 1);
                    let idx = fb.binop(BinOp::IAnd, iv, mask);
                    let mut sel = recvs[recvs.len() - 1];
                    for j in (0..recvs.len() - 1).rev() {
                        let jc = fb.const_int(j as i64);
                        let c = fb.cmp(CmpOp::IEq, idx, jc);
                        let prev = sel;
                        sel = if_else(fb, c, Type::Object(base), |_fb| recvs[j], |_fb| prev);
                    }
                    let r = fb.call_virtual(sel_mix, vec![sel, s[0]]).unwrap();
                    let t = fb.iadd(s[0], r);
                    let mask16 = fb.const_int(0xFFFF);
                    let t = fb.binop(BinOp::IAnd, t, mask16);
                    vec![t]
                });
                pool.push(out[0]);
            }

            // Optionally a conditional.
            if rng.gen_bool(config.branch_prob) {
                let l = pool[rng.gen_index(pool.len())];
                let r = pool[rng.gen_index(pool.len())];
                let c = fb.cmp(CmpOp::ILt, l, r);
                let x1 = pool[rng.gen_index(pool.len())];
                let x2 = pool[rng.gen_index(pool.len())];
                let v = if_else(
                    &mut fb,
                    c,
                    Type::Int,
                    |fb| fb.iadd(x1, x1),
                    |fb| {
                        let one = fb.const_int(1);
                        fb.iadd(x2, one)
                    },
                );
                pool.push(v);
            }

            // Call earlier functions (acyclic), up to `call_fanout` times.
            if i > 0 {
                let fanout = config.call_fanout.max(1) as i64;
                for _ in 0..rng.gen_range(1, fanout + 1) {
                    let callee = funcs[rng.gen_index(i)];
                    let x = pool[rng.gen_index(pool.len())];
                    let y = pool[rng.gen_index(pool.len())];
                    let r = fb.call_static(callee, vec![x, y]).unwrap();
                    pool.push(r);
                }
            }

            let result = *last(&pool);
            let mask = fb.const_int(0xFF_FFFF);
            let result = fb.binop(BinOp::IAnd, result, mask);
            fb.ret(Some(result));
            fb.finish()
        };
        p.define_method(f, graph);
    }

    // main(n): drive the top function, print a checkpoint occasionally.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let graph = {
        let mut fb = FunctionBuilder::new(&p, main);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let top = *funcs.last().expect("at least one function");
        let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
            let r = fb.call_static(top, vec![state[0], i]).unwrap();
            let acc = fb.iadd(state[0], r);
            let mask = fb.const_int(0x7FFF_FFFF);
            let acc = fb.binop(BinOp::IAnd, acc, mask);
            // Observable side effect every 8 iterations.
            let seven = fb.const_int(7);
            let low = fb.binop(BinOp::IAnd, i, seven);
            let zero2 = fb.const_int(0);
            let tick = fb.cmp(CmpOp::IEq, low, zero2);
            let tb = fb.add_block();
            let (join, _) = fb.add_block_with_params(&[]);
            fb.branch(tick, (tb, vec![]), (join, vec![]));
            fb.switch_to(tb);
            fb.print(acc);
            fb.jump(join, vec![]);
            fb.switch_to(join);
            vec![acc]
        });
        fb.ret(Some(out[0]));
        fb.finish()
    };
    p.define_method(main, graph);

    Workload::new(format!("gen-{seed}"), Suite::Other, p, main, 40, 8)
}

fn last(pool: &[ValueId]) -> &ValueId {
    pool.last().expect("pool never empty")
}

/// Candidate one-step reductions of a config, most aggressive first.
fn shrink_candidates(c: GenConfig) -> Vec<GenConfig> {
    let mut out = Vec::new();
    if c.functions > 1 {
        out.push(GenConfig {
            functions: c.functions / 2,
            ..c
        });
        out.push(GenConfig {
            functions: c.functions - 1,
            ..c
        });
    }
    if c.ops_per_function > 1 {
        out.push(GenConfig {
            ops_per_function: c.ops_per_function / 2,
            ..c
        });
        out.push(GenConfig {
            ops_per_function: c.ops_per_function - 1,
            ..c
        });
    }
    if c.loop_poly_prob > 0.0 {
        out.push(GenConfig {
            loop_poly_prob: 0.0,
            ..c
        });
    }
    if c.subclasses > 2 {
        out.push(GenConfig { subclasses: 2, ..c });
    }
    if c.call_fanout > 1 {
        out.push(GenConfig {
            call_fanout: c.call_fanout - 1,
            ..c
        });
    }
    if c.loop_prob > 0.0 {
        out.push(GenConfig {
            loop_prob: 0.0,
            ..c
        });
    }
    if c.branch_prob > 0.0 {
        out.push(GenConfig {
            branch_prob: 0.0,
            ..c
        });
    }
    out
}

/// Shrinks a failing generated program, JOG-style: given a seed and a
/// config whose workload makes `failing` return `true`, greedily applies
/// the first one-step reduction that still fails until no reduction
/// does, and returns the minimized config plus its workload. Fully
/// deterministic for a deterministic predicate: the search order is
/// fixed and regeneration is seeded.
///
/// The differential tests call this before reporting a divergence, so
/// the assertion message names the smallest reproducer found rather
/// than the original (much larger) program.
pub fn shrink<F>(seed: u64, config: GenConfig, failing: &mut F) -> (GenConfig, Workload)
where
    F: FnMut(&Workload) -> bool,
{
    let mut best = config;
    loop {
        let step = shrink_candidates(best)
            .into_iter()
            .find(|&cand| failing(&generate(seed, cand)));
        match step {
            Some(cand) => best = cand,
            None => return (best, generate(seed, best)),
        }
    }
}

/// Emits one random integer operation over the pool.
fn emit_op(
    fb: &mut FunctionBuilder<'_>,
    rng: &mut Rng64,
    pool: &[ValueId],
    obj: Option<ValueId>,
    sel_mix: incline_ir::SelectorId,
    k_f: incline_ir::FieldId,
) -> ValueId {
    let pick = |rng: &mut Rng64| pool[rng.gen_index(pool.len())];
    match rng.gen_index(10) {
        0 => {
            let k = fb.const_int(rng.gen_range(-100, 100));
            let x = pick(rng);
            fb.iadd(x, k)
        }
        1 => {
            let x = pick(rng);
            let y = pick(rng);
            fb.isub(x, y)
        }
        2 => {
            let x = pick(rng);
            let y = pick(rng);
            let r = fb.imul(x, y);
            let mask = fb.const_int(0xFFFF);
            fb.binop(BinOp::IAnd, r, mask)
        }
        3 => {
            // Guarded division: divisor = (y & 7) + 1 ≥ 1.
            let x = pick(rng);
            let y = pick(rng);
            let seven = fb.const_int(7);
            let one = fb.const_int(1);
            let d = fb.binop(BinOp::IAnd, y, seven);
            let d = fb.iadd(d, one);
            fb.binop(BinOp::IDiv, x, d)
        }
        4 => {
            let x = pick(rng);
            let y = pick(rng);
            fb.binop(BinOp::IXor, x, y)
        }
        5 => {
            let x = pick(rng);
            let k = fb.const_int(rng.gen_range(0, 5));
            fb.binop(BinOp::IShl, x, k)
        }
        6 => {
            let x = pick(rng);
            fb.ineg(x)
        }
        7 => match obj {
            Some(o) => {
                let x = pick(rng);
                fb.call_virtual(sel_mix, vec![o, x]).unwrap()
            }
            None => {
                let x = pick(rng);
                let k = fb.const_int(3);
                fb.imul(x, k)
            }
        },
        8 => match obj {
            Some(o) => {
                let x = pick(rng);
                let m = fb.const_int(0xFFF);
                let nv = fb.binop(BinOp::IAnd, x, m);
                fb.set_field(k_f, o, nv);
                fb.get_field(k_f, o)
            }
            None => {
                let x = pick(rng);
                let y = pick(rng);
                fb.binop(BinOp::IOr, x, y)
            }
        },
        _ => {
            let x = pick(rng);
            let y = pick(rng);
            let c = fb.cmp(CmpOp::ILe, x, y);
            if_else(fb, c, Type::Int, |fb| fb.const_int(1), |fb| fb.const_int(0))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_programs_verify_across_seeds() {
        for seed in 0..30 {
            let w = generate(seed, GenConfig::default());
            w.verify_all();
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(42, GenConfig::default());
        let b = generate(42, GenConfig::default());
        assert_eq!(
            incline_ir::print::program_str(&a.program),
            incline_ir::print::program_str(&b.program)
        );
    }

    #[test]
    fn hardened_programs_verify_across_seeds() {
        for seed in 0..30 {
            let w = generate(seed, GenConfig::hardened());
            w.verify_all();
        }
    }

    #[test]
    fn hardened_corpus_contains_megamorphic_sites() {
        // With loop_poly_prob well above zero, some seed in a small range
        // must emit the loop-nested polymorphic callsite over all four
        // subclasses.
        let found = (0..10).any(|seed| {
            let w = generate(seed, GenConfig::hardened());
            incline_ir::print::program_str(&w.program).contains("GenSub3")
        });
        assert!(found, "hardened preset must allocate megamorphic receivers");
    }

    #[test]
    fn shrinker_minimizes_a_monotone_predicate() {
        // Predicate: "the program still declares gen_f4" — true iff
        // functions > 4, so the shrinker must land exactly on 5.
        let mut failing =
            |w: &Workload| incline_ir::print::program_str(&w.program).contains("gen_f4");
        let start = GenConfig::hardened();
        assert!(failing(&generate(7, start)));
        let (min_cfg, min_w) = shrink(7, start, &mut failing);
        assert_eq!(min_cfg.functions, 5);
        assert!(failing(&min_w));
        // Everything orthogonal to the predicate shrinks to the floor.
        assert_eq!(min_cfg.loop_poly_prob, 0.0);
        assert_eq!(min_cfg.subclasses, 2);
        assert_eq!(min_cfg.call_fanout, 1);
    }

    #[test]
    fn shrinker_is_deterministic() {
        let pred = |w: &Workload| w.program.method_ids().count() > 6;
        let (a, _) = shrink(3, GenConfig::hardened(), &mut { pred });
        let (b, _) = shrink(3, GenConfig::hardened(), &mut { pred });
        assert_eq!(a, b);
    }
}
