//! A phase-change workload: the receiver distribution at a hot virtual
//! callsite flips mid-run.
//!
//! The first half of every run dispatches `area` on `Square` receivers
//! only, so a speculating compiler sees a monomorphic profile with full
//! coverage and — with deoptimization enabled — compiles the callsite with
//! an uncommon-trap fallback. At the midpoint the program switches to
//! `Tri` receivers: the trap fires, the code is invalidated, profiling
//! resumes, and the recompilation (against the merged profile) must cover
//! the new dominant receiver. This is the adversarial input for the
//! deoptimization subsystem; with deoptimization disabled it is just
//! another bimorphic dispatch loop.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, Program, Type};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload. `input` is the per-run loop trip count; the
/// receiver mix flips once `2*i >= input`.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let shape = p.add_class("Shape", None);
    let scale_f = p.add_field(shape, "scale", Type::Int);
    let square = p.add_class("Square", Some(shape));
    let tri = p.add_class("Tri", Some(shape));

    // area(this, x) per concrete shape.
    let m_square = p.declare_method(square, "area", vec![Type::Int], Type::Int);
    let m_tri = p.declare_method(tri, "area", vec![Type::Int], Type::Int);
    let sel_area = p.selector_by_name("area", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, m_square);
    let this = fb.param(0);
    let x = fb.param(1);
    let s = fb.get_field(scale_f, this);
    let sq = fb.binop(BinOp::IMul, x, x);
    let out = fb.iadd(sq, s);
    let m16 = fb.const_int(0xFFFF);
    let out = fb.binop(BinOp::IAnd, out, m16);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_square, g);

    let mut fb = FunctionBuilder::new(&p, m_tri);
    let this = fb.param(0);
    let x = fb.param(1);
    let s = fb.get_field(scale_f, this);
    let three = fb.const_int(3);
    let t = fb.binop(BinOp::IMul, x, three);
    let out = fb.iadd(t, s);
    let m16 = fb.const_int(0xFFFF);
    let out = fb.binop(BinOp::IAnd, out, m16);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_tri, g);

    // step(s, x): the hot method holding the speculated virtual callsite.
    let step = p.declare_function("step", vec![Type::Object(shape), Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, step);
    let recv = fb.param(0);
    let x = fb.param(1);
    let a = fb.call_virtual(sel_area, vec![recv, x]).unwrap();
    let out = fb.iadd(a, x);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(step, g);

    // main(n): Square receivers while 2*i < n, Tri receivers afterwards.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let sq_obj = fb.new_object(square);
    let seven = fb.const_int(7);
    fb.set_field(scale_f, sq_obj, seven);
    let sq_ref = fb.cast(shape, sq_obj);
    let tri_obj = fb.new_object(tri);
    let three = fb.const_int(3);
    fb.set_field(scale_f, tri_obj, three);
    let tri_ref = fb.cast(shape, tri_obj);

    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let twice = fb.iadd(i, i);
        let first_phase = fb.cmp(CmpOp::ILt, twice, n);
        let recv = if_else(
            fb,
            first_phase,
            Type::Object(shape),
            |_| sq_ref,
            |_| tri_ref,
        );
        let v = fb.call_static(step, vec![recv, i]).unwrap();
        let acc = fb.binop(BinOp::IXor, state[0], v);
        let acc2 = fb.iadd(acc, v);
        vec![acc2]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);

    Workload::new(name, suite, p, main, input, 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_change_verifies() {
        build("phase_change", Suite::Other, 60).verify_all();
    }
}
