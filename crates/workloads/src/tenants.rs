//! Multi-tenant program mixes for the server simulation.
//!
//! The server harness (`incline_vm::server`) runs *N* tenants on one
//! shared machine, so all tenant entry points must live in **one**
//! [`Program`]. [`build`] assembles that program from three archetypes,
//! cycling per tenant with seeded variation:
//!
//! * **dispatch** — a `phase_change`-style virtual-dispatch loop whose
//!   receiver class depends on the phase, so a mid-run flip invalidates
//!   monomorphic speculation;
//! * **registry** — a `cache_pressure`-style group registry whose hot
//!   half rotates with the phase, churning the bounded code cache;
//! * **kernel** — a static-call arithmetic kernel that switches helper
//!   chains with the phase, re-steering the inliner's cluster choice.
//!
//! Every entry has signature `fn(Int) -> Int` and encodes its phase in
//! the argument: `x < pivot` is phase A with trip count `x`, `x ≥ pivot`
//! is phase B with trip count `x - pivot`. The server decides *when* to
//! flip (per-tenant `flip_after`); the program decides *what* a flip
//! means. This crate depends only on `incline-ir`, so tenants are plain
//! [`TenantInfo`] data — the bench crate converts them into VM-level
//! tenant specs.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, MethodId, Program, Rng64, Type, ValueId};

use crate::util::{counted_loop, if_else};

/// Phase pivot shared by every generated tenant entry: arguments below it
/// are phase A, arguments at or above it are phase B with the pivot
/// subtracted off. Far larger than any realistic trip count.
pub const PHASE_PIVOT: i64 = 1 << 20;

/// One tenant of a generated mix — plain data, convertible into the VM's
/// tenant spec by the bench crate.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantInfo {
    /// Tenant name (`"t0_dispatch"`, `"t1_registry"`, …).
    pub name: String,
    /// Entry method inside the shared program, `fn(Int) -> Int`.
    pub entry: MethodId,
    /// Relative traffic weight.
    pub weight: u32,
    /// Phase-A entry argument (the per-request trip count).
    pub work: i64,
    /// Phase pivot (always [`PHASE_PIVOT`] for generated tenants).
    pub pivot: i64,
    /// Fraction of the tenant's requests served before its phase flip.
    pub flip_after: f64,
}

/// A generated multi-tenant mix: one shared program plus tenant metadata.
#[derive(Clone, Debug)]
pub struct TenantMix {
    /// The shared program holding every tenant's methods.
    pub program: Program,
    /// Per-tenant metadata, in generation order.
    pub tenants: Vec<TenantInfo>,
}

impl TenantMix {
    /// Verifies every method of the shared program, panicking on the
    /// first failure (mirrors `Workload::verify_all`).
    pub fn verify_all(&self) {
        for m in self.program.method_ids() {
            let method = self.program.method(m);
            if let Err(e) = incline_ir::verify::verify(&self.program, method) {
                panic!("tenant mix: method {} fails to verify: {e}", method.name);
            }
        }
    }
}

/// Builds a mix of `count` tenants into one program. Equal `(seed, count)`
/// ⇒ identical programs and metadata. Archetypes cycle
/// dispatch → registry → kernel; weights, trip counts and flip points are
/// seeded per tenant.
pub fn build(seed: u64, count: usize) -> TenantMix {
    assert!(count > 0, "a tenant mix needs at least one tenant");
    let mut rng = Rng64::new(seed);
    let mut p = Program::new();
    let mut tenants = Vec::with_capacity(count);
    for i in 0..count {
        let (kind, entry) = match i % 3 {
            0 => ("dispatch", dispatch_tenant(&mut p, i, &mut rng)),
            1 => ("registry", registry_tenant(&mut p, i, &mut rng)),
            _ => ("kernel", kernel_tenant(&mut p, i, &mut rng)),
        };
        tenants.push(TenantInfo {
            name: format!("t{i}_{kind}"),
            entry,
            weight: 1 + rng.gen_index(3) as u32,
            work: rng.gen_range(16, 40),
            pivot: PHASE_PIVOT,
            flip_after: [0.4, 0.5, 0.6][rng.gen_index(3)],
        });
    }
    TenantMix {
        program: p,
        tenants,
    }
}

/// Emits the shared entry prologue: phase test and phase-local trip
/// count. Returns `(phase_a, trips)`.
fn phase_prologue(fb: &mut FunctionBuilder<'_>, x: ValueId) -> (ValueId, ValueId) {
    let pivot = fb.const_int(PHASE_PIVOT);
    let phase_a = fb.cmp(CmpOp::ILt, x, pivot);
    let shifted = fb.binop(BinOp::ISub, x, pivot);
    let trips = if_else(fb, phase_a, Type::Int, |_| x, |_| shifted);
    (phase_a, trips)
}

/// Virtual-dispatch tenant: phase A drives `area` on Square receivers
/// only, phase B on Tri — the server-side generalization of the
/// `phase_change` workload.
fn dispatch_tenant(p: &mut Program, idx: usize, rng: &mut Rng64) -> MethodId {
    let shape = p.add_class(format!("Shape_{idx}"), None);
    let scale_f = p.add_field(shape, "scale", Type::Int);
    let square = p.add_class(format!("Square_{idx}"), Some(shape));
    let tri = p.add_class(format!("Tri_{idx}"), Some(shape));
    let sel_name = format!("area_{idx}");
    let m_square = p.declare_method(square, &sel_name, vec![Type::Int], Type::Int);
    let m_tri = p.declare_method(tri, &sel_name, vec![Type::Int], Type::Int);
    let sel = p.selector_by_name(&sel_name, 2).unwrap();

    let mut fb = FunctionBuilder::new(p, m_square);
    let this = fb.param(0);
    let x = fb.param(1);
    let s = fb.get_field(scale_f, this);
    let sq = fb.binop(BinOp::IMul, x, x);
    let out = fb.iadd(sq, s);
    let mask = fb.const_int(0xFFFF);
    let out = fb.binop(BinOp::IAnd, out, mask);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_square, g);

    let mut fb = FunctionBuilder::new(p, m_tri);
    let this = fb.param(0);
    let x = fb.param(1);
    let s = fb.get_field(scale_f, this);
    let k = fb.const_int(rng.gen_range(2, 9));
    let t = fb.binop(BinOp::IMul, x, k);
    let out = fb.iadd(t, s);
    let mask = fb.const_int(0xFFFF);
    let out = fb.binop(BinOp::IAnd, out, mask);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(m_tri, g);

    // step: the hot method holding the speculated virtual callsite.
    let step = p.declare_function(
        format!("step_{idx}"),
        vec![Type::Object(shape), Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(p, step);
    let recv = fb.param(0);
    let x = fb.param(1);
    let a = fb.call_virtual(sel, vec![recv, x]).unwrap();
    let out = fb.iadd(a, x);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(step, g);

    let entry = p.declare_function(format!("serve_dispatch_{idx}"), vec![Type::Int], Type::Int);
    let scale = rng.gen_range(2, 12);
    let mut fb = FunctionBuilder::new(p, entry);
    let x = fb.param(0);
    let (phase_a, trips) = phase_prologue(&mut fb, x);
    let sq_obj = fb.new_object(square);
    let k = fb.const_int(scale);
    fb.set_field(scale_f, sq_obj, k);
    let sq_ref = fb.cast(shape, sq_obj);
    let tri_obj = fb.new_object(tri);
    let k = fb.const_int(scale + 1);
    fb.set_field(scale_f, tri_obj, k);
    let tri_ref = fb.cast(shape, tri_obj);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, trips, &[zero], |fb, i, state| {
        let recv = if_else(fb, phase_a, Type::Object(shape), |_| sq_ref, |_| tri_ref);
        let v = fb.call_static(step, vec![recv, i]).unwrap();
        let acc = fb.binop(BinOp::IXor, state[0], v);
        let acc = fb.iadd(acc, v);
        vec![acc]
    });
    let mask = fb.const_int(0x7FFF_FFFF);
    let out = fb.binop(BinOp::IAnd, out[0], mask);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(entry, g);
    entry
}

/// Registry tenant: a small group registry driven round robin; the phase
/// decides which half of the registry is hot, so a flip evicts one hot
/// set and re-heats the other — cache churn under a bounded budget.
fn registry_tenant(p: &mut Program, idx: usize, rng: &mut Rng64) -> MethodId {
    let groups = 4 + rng.gen_index(3);
    let mut drivers: Vec<MethodId> = Vec::with_capacity(groups);
    for g in 0..groups {
        let d = p.declare_function(format!("driver_{idx}_{g}"), vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(p, d);
        let x = fb.param(0);
        let mut v = x;
        for _ in 0..(2 + rng.gen_index(3)) {
            v = match rng.gen_index(3) {
                0 => {
                    let k = fb.const_int(rng.gen_range(1, 100));
                    fb.iadd(v, k)
                }
                1 => {
                    let k = fb.const_int(rng.gen_range(1, 9));
                    let t = fb.imul(v, k);
                    let m = fb.const_int(0xFFFF);
                    fb.binop(BinOp::IAnd, t, m)
                }
                _ => {
                    let k = fb.const_int(rng.gen_range(0, 64));
                    fb.binop(BinOp::IXor, v, k)
                }
            };
        }
        fb.ret(Some(v));
        let body = fb.finish();
        p.define_method(d, body);
        drivers.push(d);
    }

    let entry = p.declare_function(format!("serve_registry_{idx}"), vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(p, entry);
    let x = fb.param(0);
    let (phase_a, trips) = phase_prologue(&mut fb, x);
    // Phase B shifts the round-robin origin by half the registry, so the
    // hot groups rotate at the flip.
    let zero_k = fb.const_int(0);
    let half_k = fb.const_int((groups / 2) as i64);
    let offset = if_else(&mut fb, phase_a, Type::Int, |_| zero_k, |_| half_k);
    let group_count = fb.const_int(groups as i64);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, trips, &[zero], |fb, i, state| {
        let shifted = fb.iadd(i, offset);
        let g = fb.binop(BinOp::IRem, shifted, group_count);
        let v = emit_dispatch(fb, &drivers, 0, g, state[0]);
        let acc = fb.iadd(state[0], v);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(entry, g);
    entry
}

/// Kernel tenant: a static-call arithmetic loop that switches between two
/// helper chains at the flip, re-steering the inliner's cluster choice.
fn kernel_tenant(p: &mut Program, idx: usize, rng: &mut Rng64) -> MethodId {
    let mk_helper = |p: &mut Program, name: String, mul: i64, add: i64| {
        let f = p.declare_function(name, vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(p, f);
        let x = fb.param(0);
        let k = fb.const_int(mul);
        let v = fb.imul(x, k);
        let k = fb.const_int(add);
        let v = fb.iadd(v, k);
        let m = fb.const_int(0xF_FFFF);
        let v = fb.binop(BinOp::IAnd, v, m);
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(f, g);
        f
    };
    let fa = mk_helper(
        p,
        format!("kernel_a_{idx}"),
        rng.gen_range(3, 17),
        rng.gen_range(1, 64),
    );
    let fz = mk_helper(
        p,
        format!("kernel_b_{idx}"),
        rng.gen_range(3, 17),
        rng.gen_range(1, 64),
    );

    let entry = p.declare_function(format!("serve_kernel_{idx}"), vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(p, entry);
    let x = fb.param(0);
    let (phase_a, trips) = phase_prologue(&mut fb, x);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, trips, &[zero], |fb, i, state| {
        let seed = fb.iadd(state[0], i);
        let v = if_else(
            fb,
            phase_a,
            Type::Int,
            |fb| fb.call_static(fa, vec![seed]).unwrap(),
            |fb| fb.call_static(fz, vec![seed]).unwrap(),
        );
        let acc = fb.binop(BinOp::IXor, state[0], v);
        let acc = fb.iadd(acc, i);
        vec![acc]
    });
    let mask = fb.const_int(0x7FFF_FFFF);
    let out = fb.binop(BinOp::IAnd, out[0], mask);
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(entry, g);
    entry
}

/// Static binary-search dispatch over `drivers[lo..]` keyed on `g` — the
/// same if-else chain idiom as `cache_pressure`, kept monomorphic so the
/// inliner sees plain static calls.
fn emit_dispatch(
    fb: &mut FunctionBuilder<'_>,
    drivers: &[MethodId],
    lo: usize,
    g: ValueId,
    arg: ValueId,
) -> ValueId {
    if drivers.len() == 1 {
        return fb.call_static(drivers[0], vec![arg]).unwrap();
    }
    let mid = drivers.len() / 2;
    let mid_k = fb.const_int((lo + mid) as i64);
    let cond = fb.cmp(CmpOp::ILt, g, mid_k);
    if_else(
        fb,
        cond,
        Type::Int,
        |fb| emit_dispatch(fb, &drivers[..mid], lo, g, arg),
        |fb| emit_dispatch(fb, &drivers[mid..], lo + mid, g, arg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_verifies_and_is_deterministic() {
        let m1 = build(11, 5);
        m1.verify_all();
        let m2 = build(11, 5);
        assert_eq!(m1.tenants, m2.tenants);
        assert_eq!(m1.tenants.len(), 5);
        // Archetypes cycle.
        assert!(m1.tenants[0].name.ends_with("dispatch"));
        assert!(m1.tenants[1].name.ends_with("registry"));
        assert!(m1.tenants[2].name.ends_with("kernel"));
        assert!(m1.tenants[3].name.ends_with("dispatch"));
        for t in &m1.tenants {
            assert!(t.weight >= 1 && t.work >= 16 && t.pivot == PHASE_PIVOT);
            assert!(t.flip_after > 0.0 && t.flip_after < 1.0);
        }
    }

    #[test]
    fn seeds_vary_the_mix() {
        let m1 = build(1, 3);
        let m2 = build(2, 3);
        assert_ne!(
            m1.tenants.iter().map(|t| t.work).collect::<Vec<_>>(),
            m2.tenants.iter().map(|t| t.work).collect::<Vec<_>>()
        );
    }
}
