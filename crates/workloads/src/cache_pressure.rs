//! A cache-pressure workload: a method registry far larger than any
//! reasonable code-cache budget, driven with a cycling working set.
//!
//! The program is a seeded registry of `groups × fns_per_group` small
//! arithmetic functions. Each group has a driver that calls every
//! function in the group, and `main(n)` cycles through the groups round
//! robin (`g = i mod groups`), so every driver re-heats on every cycle.
//! Under a finite [`incline_vm::VmConfig::code_cache_budget`] the
//! working set cannot fit: installs force evictions, evicted drivers
//! re-heat a few iterations later and must clear admission again, and
//! idle groups age out — exactly the churn the bounded-cache subsystem
//! is built to survive. With an unbounded cache it is just a wide,
//! well-typed dispatch workload.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, MethodId, Program, Rng64, Type, ValueId};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload. `seed` varies the per-function arithmetic,
/// `groups × fns_per_group` is the registry size, and `input` is the
/// per-run trip count (each iteration exercises one group).
pub fn build(name: &str, seed: u64, groups: usize, fns_per_group: usize, input: i64) -> Workload {
    assert!(
        groups > 0 && fns_per_group > 0,
        "registry must be non-empty"
    );
    let mut rng = Rng64::new(seed);
    let mut p = Program::new();

    // The leaf registry: small, distinct arithmetic functions.
    let mut leaves: Vec<Vec<MethodId>> = Vec::with_capacity(groups);
    for g in 0..groups {
        let mut group = Vec::with_capacity(fns_per_group);
        for j in 0..fns_per_group {
            let f = p.declare_function(format!("leaf_{g}_{j}"), vec![Type::Int], Type::Int);
            let mut fb = FunctionBuilder::new(&p, f);
            let x = fb.param(0);
            let mut v = x;
            // A few seeded ops so leaves differ in shape and size.
            for _ in 0..(2 + rng.gen_index(4)) {
                v = match rng.gen_index(4) {
                    0 => {
                        let k = fb.const_int(rng.gen_range(1, 100));
                        fb.iadd(v, k)
                    }
                    1 => {
                        let k = fb.const_int(rng.gen_range(1, 9));
                        let t = fb.imul(v, k);
                        let m = fb.const_int(0xFFFF);
                        fb.binop(BinOp::IAnd, t, m)
                    }
                    2 => {
                        let k = fb.const_int(rng.gen_range(0, 64));
                        fb.binop(BinOp::IXor, v, k)
                    }
                    _ => {
                        let k = fb.const_int(rng.gen_range(1, 4));
                        fb.binop(BinOp::IShr, v, k)
                    }
                };
            }
            fb.ret(Some(v));
            let body = fb.finish();
            p.define_method(f, body);
            group.push(f);
        }
        leaves.push(group);
    }

    // One driver per group: folds its whole group over the argument. Once
    // the inliner expands the leaves, a compiled driver is the unit of
    // code-cache occupancy the eviction policies fight over.
    let mut drivers: Vec<MethodId> = Vec::with_capacity(groups);
    for (g, group) in leaves.iter().enumerate() {
        let d = p.declare_function(format!("driver_{g}"), vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, d);
        let x = fb.param(0);
        let mut acc = x;
        for &f in group {
            let r = fb.call_static(f, vec![acc]).unwrap();
            acc = fb.iadd(acc, r);
            let m = fb.const_int(0xF_FFFF);
            acc = fb.binop(BinOp::IAnd, acc, m);
        }
        fb.ret(Some(acc));
        let body = fb.finish();
        p.define_method(d, body);
        drivers.push(d);
    }

    // main(n): round-robin over the groups, printing a checkpoint every
    // 8 iterations so differential runs compare observable output.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let zero = fb.const_int(0);
    let group_count = fb.const_int(groups as i64);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let g = fb.binop(BinOp::IRem, i, group_count);
        let v = emit_dispatch(fb, &drivers, 0, g, state[0]);
        let acc = fb.iadd(state[0], v);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        let seven = fb.const_int(7);
        let low = fb.binop(BinOp::IAnd, i, seven);
        let zero2 = fb.const_int(0);
        let tick = fb.cmp(CmpOp::IEq, low, zero2);
        let tb = fb.add_block();
        let (join, _) = fb.add_block_with_params(&[]);
        fb.branch(tick, (tb, vec![]), (join, vec![]));
        fb.switch_to(tb);
        fb.print(acc);
        fb.jump(join, vec![]);
        fb.switch_to(join);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let body = fb.finish();
    p.define_method(main, body);

    Workload::new(name, Suite::Other, p, main, input, 8)
}

/// The default cache-pressure instance used by the extra-benchmark
/// registry: modest enough for the differential matrices.
pub fn standard() -> Workload {
    build("cache_pressure", 0xCA4E, 24, 12, 48)
}

/// A registry an order of magnitude wider, for the `cache` benchmark and
/// the CI pressure job — far larger than any sane budget.
pub fn storm() -> Workload {
    build("cache_pressure_storm", 0xCA4E, 96, 12, 192)
}

/// Compares `g` against each driver index in turn (a static if-else
/// chain — deliberately *not* a virtual callsite, so cache churn is not
/// confounded with speculation churn).
fn emit_dispatch(
    fb: &mut FunctionBuilder<'_>,
    drivers: &[MethodId],
    idx: usize,
    g: ValueId,
    x: ValueId,
) -> ValueId {
    if idx + 1 == drivers.len() {
        return fb.call_static(drivers[idx], vec![x]).unwrap();
    }
    let k = fb.const_int(idx as i64);
    let c = fb.cmp(CmpOp::IEq, g, k);
    if_else(
        fb,
        c,
        Type::Int,
        |fb| fb.call_static(drivers[idx], vec![x]).unwrap(),
        |fb| emit_dispatch(fb, drivers, idx + 1, g, x),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_pressure_verifies() {
        standard().verify_all();
    }

    #[test]
    fn generation_is_deterministic() {
        let a = build("w", 7, 4, 3, 16);
        let b = build("w", 7, 4, 3, 16);
        assert_eq!(
            incline_ir::print::program_str(&a.program),
            incline_ir::print::program_str(&b.program)
        );
    }

    #[test]
    fn registry_scales_with_parameters() {
        let small = build("s", 1, 2, 2, 8);
        let big = build("b", 1, 8, 4, 8);
        assert!(big.program.method_count() > small.program.method_count());
    }
}
