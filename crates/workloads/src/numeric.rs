//! Spark-Perf MLlib stand-ins: float kernels behind small-method APIs.
//!
//! * `gauss-mix` — Gaussian-mixture scoring: per-component rational
//!   density (we have no `exp`, a Cauchy-like kernel preserves the code
//!   shape) behind a virtual `Component.density`,
//! * `dec-tree` — decision-tree classification: recursive virtual
//!   `Node.decide` over feature vectors,
//! * `naive-bayes` — per-class feature-weight scoring through tiny helper
//!   functions.
//!
//! The paper's biggest single win (≈59% on gauss-mix, Figure 9) comes from
//! inlining these closure-shaped float kernels into their driver loops.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type, ValueId};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Which Spark kernel to build.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SparkKernel {
    /// Gaussian mixture model scoring.
    GaussMix,
    /// Decision tree classification.
    DecTree,
    /// Multinomial naive Bayes scoring.
    NaiveBayes,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, kernel: SparkKernel, input: i64) -> Workload {
    match kernel {
        SparkKernel::GaussMix => gauss_mix(name, suite, input),
        SparkKernel::DecTree => dec_tree(name, suite, input),
        SparkKernel::NaiveBayes => naive_bayes(name, suite, input),
    }
}

fn gauss_mix(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let comp = p.add_class("Component", None);
    let mean_f = p.add_field(comp, "mean", Type::Float);
    let var_f = p.add_field(comp, "variance", Type::Float);
    let weight_f = p.add_field(comp, "weight", Type::Float);
    let narrow = p.add_class("NarrowComponent", Some(comp));
    let wide = p.add_class("WideComponent", Some(comp));

    // sq(x) = x * x — the tiny hot helper.
    let sq = p.declare_function("sq", vec![Type::Float], Type::Float);
    let mut fb = FunctionBuilder::new(&p, sq);
    let x = fb.param(0);
    let r = fb.fmul(x, x);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(sq, g);

    // density(this, x) = w / (1 + (x-mean)^2 / var)
    let d_narrow = p.declare_method(narrow, "density", vec![Type::Float], Type::Float);
    let d_wide = p.declare_method(wide, "density", vec![Type::Float], Type::Float);
    for (m, extra) in [(d_narrow, 1.0f64), (d_wide, 0.5f64)] {
        let mut fb = FunctionBuilder::new(&p, m);
        let this = fb.param(0);
        let x = fb.param(1);
        let mean = fb.get_field(mean_f, this);
        let var = fb.get_field(var_f, this);
        let w = fb.get_field(weight_f, this);
        let diff = fb.binop(BinOp::FSub, x, mean);
        let d2 = fb.call_static(sq, vec![diff]).unwrap();
        let ratio = fb.binop(BinOp::FDiv, d2, var);
        let one = fb.const_float(extra);
        let denom = fb.fadd(one, ratio);
        let r = fb.binop(BinOp::FDiv, w, denom);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(m, g);
    }
    let sel_density = p.selector_by_name("density", 2).unwrap();

    // prep_point(x, mode) / finish_score(s, mode): generically written
    // kernels (mode selects a normalization scheme). The benchmark always
    // runs mode 1, whose path is a handful of ops; the generic path is a
    // large float pipeline. Only deep inlining trials — which propagate
    // the constant `mode` two levels down and prune the generic branch —
    // can see that these are cheap to inline (§IV; the paper's largest
    // deep-trials win is on this benchmark).
    // The generic transformation sits one level below the wrappers, so
    // shallow trials (which specialize only root-level callsites) never
    // see that the constant mode prunes it.
    let transform = p.declare_function("transform", vec![Type::Float, Type::Int], Type::Float);
    let mut fb = FunctionBuilder::new(&p, transform);
    let v = fb.param(0);
    let mode = fb.param(1);
    let one = fb.const_int(1);
    let fast = fb.cmp(CmpOp::IEq, mode, one);
    let out = if_else(
        &mut fb,
        fast,
        Type::Float,
        |fb| {
            let k = fb.const_float(1.0 / 16.0);
            fb.fmul(v, k)
        },
        |fb| crate::util::pad_fmix(fb, v, 150),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(transform, g);

    let mode_gated = |p: &mut Program, name: &str, bias: f64| -> incline_ir::MethodId {
        let m = p.declare_function(name, vec![Type::Float, Type::Int], Type::Float);
        let mut fb = FunctionBuilder::new(p, m);
        let v = fb.param(0);
        let mode = fb.param(1);
        let b = fb.const_float(bias);
        let shifted = fb.fadd(v, b);
        let t = fb.call_static(transform, vec![shifted, mode]).unwrap();
        fb.ret(Some(t));
        let g = fb.finish();
        p.define_method(m, g);
        m
    };
    let prep_point = mode_gated(&mut p, "prep_point", 0.125);
    let finish_score = mode_gated(&mut p, "finish_score", 0.5);

    // score(components, x, mode) = finish(Σ density(prep(x)))
    let comp_arr_ty = Type::Array(ElemType::Object(comp));
    let score = p.declare_function(
        "score",
        vec![comp_arr_ty, Type::Float, Type::Int],
        Type::Float,
    );
    let mut fb = FunctionBuilder::new(&p, score);
    let comps = fb.param(0);
    let x = fb.param(1);
    let mode = fb.param(2);
    let xp = fb.call_static(prep_point, vec![x, mode]).unwrap();
    let len = fb.array_len(comps);
    let zero = fb.const_float(0.0);
    let out = counted_loop(&mut fb, len, &[zero], |fb, i, state| {
        let c = fb.array_get(comps, i);
        let d = fb.call_virtual(sel_density, vec![c, xp]).unwrap();
        let acc = fb.fadd(state[0], d);
        vec![acc]
    });
    let finished = fb.call_static(finish_score, vec![out[0], mode]).unwrap();
    fb.ret(Some(finished));
    let g = fb.finish();
    p.define_method(score, g);

    // main(n): K components; score n points; checksum = Σ floor(1000·s).
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let k = fb.const_int(4);
    let comps = fb.new_array(ElemType::Object(comp), k);
    for i in 0..4 {
        let cls = if i % 2 == 0 { narrow } else { wide };
        let obj = fb.new_object(cls);
        let mean = fb.const_float(i as f64 * 2.5);
        let var = fb.const_float(1.0 + i as f64);
        let w = fb.const_float(0.25);
        fb.set_field(mean_f, obj, mean);
        fb.set_field(var_f, obj, var);
        fb.set_field(weight_f, obj, w);
        let up = fb.cast(comp, obj);
        let idx = fb.const_int(i);
        fb.array_set(comps, idx, up);
    }
    let zero = fb.const_int(0);
    let mode = fb.const_int(1); // the constant deep trials propagate
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let xf = fb.int_to_float(i);
        let k01 = fb.const_float(0.01);
        let x = fb.fmul(xf, k01);
        let s = fb.call_static(score, vec![comps, x, mode]).unwrap();
        let kk = fb.const_float(1000.0);
        let scaled = fb.fmul(s, kk);
        let si = fb.float_to_int(scaled);
        let acc = fb.iadd(state[0], si);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

fn dec_tree(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let node = p.add_class("TreeNode", None);
    let feat_f = p.add_field(node, "feature", Type::Int);
    let thr_f = p.add_field(node, "threshold", Type::Float);
    let cls_f = p.add_field(node, "class_id", Type::Int);
    let left_f = p.add_field(node, "left", Type::Object(node));
    let right_f = p.add_field(node, "right", Type::Object(node));
    let split = p.add_class("Split", Some(node));
    let leaf = p.add_class("Leaf", Some(node));

    let feat_ty = Type::Array(ElemType::Float);
    let d_split = p.declare_method(split, "decide", vec![feat_ty], Type::Int);
    let d_leaf = p.declare_method(leaf, "decide", vec![feat_ty], Type::Int);
    let sel_decide = p.selector_by_name("decide", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, d_leaf);
    let this = fb.param(0);
    let c = fb.get_field(cls_f, this);
    fb.ret(Some(c));
    let g = fb.finish();
    p.define_method(d_leaf, g);

    let mut fb = FunctionBuilder::new(&p, d_split);
    let this = fb.param(0);
    let x = fb.param(1);
    let feat = fb.get_field(feat_f, this);
    let thr = fb.get_field(thr_f, this);
    let v = fb.array_get(x, feat);
    let below = fb.cmp(CmpOp::FLt, v, thr);
    let child = if_else(
        &mut fb,
        below,
        Type::Object(node),
        |fb| fb.get_field(left_f, this),
        |fb| fb.get_field(right_f, this),
    );
    let r = fb.call_virtual(sel_decide, vec![child, x]).unwrap();
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(d_split, g);

    // main(n): fixed depth-4 tree, classify n synthetic points.
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let root = emit_split_tree(
        &mut fb, node, split, leaf, feat_f, thr_f, cls_f, left_f, right_f, 4, &mut 7u64,
    );
    let four = fb.const_int(4);
    let x = fb.new_array(ElemType::Float, four);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        // Fill the feature vector from the counter.
        for f in 0..4i64 {
            let fi = fb.const_int(f);
            let k = fb.const_int(3 + f);
            let mix = fb.imul(i, k);
            let m255 = fb.const_int(255);
            let mix = fb.binop(BinOp::IAnd, mix, m255);
            let xf = fb.int_to_float(mix);
            let s = fb.const_float(1.0 / 32.0);
            let v = fb.fmul(xf, s);
            fb.array_set(x, fi, v);
        }
        let c = fb.call_virtual(sel_decide, vec![root, x]).unwrap();
        let three = fb.const_int(3);
        let acc = fb.imul(state[0], three);
        let acc = fb.iadd(acc, c);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[allow(clippy::too_many_arguments)]
fn emit_split_tree(
    fb: &mut FunctionBuilder<'_>,
    node: incline_ir::ClassId,
    split: incline_ir::ClassId,
    leaf: incline_ir::ClassId,
    feat_f: incline_ir::FieldId,
    thr_f: incline_ir::FieldId,
    cls_f: incline_ir::FieldId,
    left_f: incline_ir::FieldId,
    right_f: incline_ir::FieldId,
    depth: u32,
    rng: &mut u64,
) -> ValueId {
    let bump = |r: &mut u64| {
        *r = r
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        *r >> 33
    };
    if depth == 0 {
        let obj = fb.new_object(leaf);
        let c = fb.const_int((bump(rng) % 5) as i64);
        fb.set_field(cls_f, obj, c);
        fb.cast(node, obj)
    } else {
        let l = emit_split_tree(
            fb,
            node,
            split,
            leaf,
            feat_f,
            thr_f,
            cls_f,
            left_f,
            right_f,
            depth - 1,
            rng,
        );
        let r = emit_split_tree(
            fb,
            node,
            split,
            leaf,
            feat_f,
            thr_f,
            cls_f,
            left_f,
            right_f,
            depth - 1,
            rng,
        );
        let obj = fb.new_object(split);
        let feat = fb.const_int((bump(rng) % 4) as i64);
        let thr = fb.const_float((bump(rng) % 8) as f64);
        fb.set_field(feat_f, obj, feat);
        fb.set_field(thr_f, obj, thr);
        fb.set_field(left_f, obj, l);
        fb.set_field(right_f, obj, r);
        fb.cast(node, obj)
    }
}

fn naive_bayes(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();

    // feature_score(w, x) = w * x / (1 + x) — tiny hot helper.
    let fscore = p.declare_function("feature_score", vec![Type::Float, Type::Float], Type::Float);
    let mut fb = FunctionBuilder::new(&p, fscore);
    let w = fb.param(0);
    let x = fb.param(1);
    let wx = fb.fmul(w, x);
    let one = fb.const_float(1.0);
    let denom = fb.fadd(one, x);
    let r = fb.binop(BinOp::FDiv, wx, denom);
    fb.ret(Some(r));
    let g = fb.finish();
    p.define_method(fscore, g);

    // class_score(weights, xs) = Σ feature_score
    let farr = Type::Array(ElemType::Float);
    let cscore = p.declare_function("class_score", vec![farr, farr], Type::Float);
    let mut fb = FunctionBuilder::new(&p, cscore);
    let ws = fb.param(0);
    let xs = fb.param(1);
    let len = fb.array_len(xs);
    let zero = fb.const_float(0.0);
    let out = counted_loop(&mut fb, len, &[zero], |fb, i, state| {
        let w = fb.array_get(ws, i);
        let x = fb.array_get(xs, i);
        let s = fb.call_static(fscore, vec![w, x]).unwrap();
        let acc = fb.fadd(state[0], s);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(cscore, g);

    // argmax over 3 classes
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let feats = fb.const_int(8);
    let xs = fb.new_array(ElemType::Float, feats);
    let mut class_ws = Vec::new();
    for c in 0..3i64 {
        let ws = fb.new_array(ElemType::Float, feats);
        let _ = counted_loop(&mut fb, feats, &[], |fb, i, _| {
            let ii = fb.iadd(i, i);
            let cc = fb.const_int(c + 1);
            let mix = fb.imul(ii, cc);
            let m7 = fb.const_int(7);
            let mix = fb.binop(BinOp::IRem, mix, m7);
            let f = fb.int_to_float(mix);
            let s = fb.const_float(0.25);
            let wv = fb.fmul(f, s);
            fb.array_set(ws, i, wv);
            vec![]
        });
        class_ws.push(ws);
    }
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let _ = counted_loop(fb, feats, &[], |fb, k, _| {
            let mix = fb.iadd(i, k);
            let m31 = fb.const_int(31);
            let mix = fb.binop(BinOp::IAnd, mix, m31);
            let f = fb.int_to_float(mix);
            let s = fb.const_float(0.125);
            let v = fb.fmul(f, s);
            fb.array_set(xs, k, v);
            vec![]
        });
        // Score each class, tracking the argmax.
        let neg = fb.const_float(-1.0);
        let zero_i = fb.const_int(0);
        let mut best_score = neg;
        let mut best_class = zero_i;
        for (c, &ws) in class_ws.iter().enumerate() {
            let s = fb.call_static(cscore, vec![ws, xs]).unwrap();
            let better = fb.cmp(CmpOp::FLt, best_score, s);
            let cc = fb.const_int(c as i64);
            let prev_score = best_score;
            let prev_class = best_class;
            best_score = if_else(fb, better, Type::Float, |_| s, |_| prev_score);
            // Re-test in the join continuation (values must dominate).
            let better2 = fb.cmp(CmpOp::FEq, best_score, s);
            best_class = if_else(fb, better2, Type::Int, |_| cc, |_| prev_class);
        }
        let acc = fb.iadd(state[0], best_class);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_kernels_verify() {
        for (name, k) in [
            ("gauss-mix", SparkKernel::GaussMix),
            ("dec-tree", SparkKernel::DecTree),
            ("naive-bayes", SparkKernel::NaiveBayes),
        ] {
            let w = build(name, Suite::SparkPerf, k, 20);
            w.verify_all();
        }
    }
}
