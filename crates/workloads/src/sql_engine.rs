//! An embedded-database query engine (`h2`): predicate expression trees
//! evaluated per row during table scans, with aggregation.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type, ValueId};

use crate::util::{counted_loop, if_else};
use crate::workload::{Suite, Workload};

/// Builds the workload.
pub fn build(name: &str, suite: Suite, input: i64) -> Workload {
    let mut p = Program::new();
    let iarr = Type::Array(ElemType::Int);

    let expr = p.add_class("SqlExpr", None);
    let col_f = p.add_field(expr, "col", Type::Int);
    let k_f = p.add_field(expr, "k", Type::Int);
    let l_f = p.add_field(expr, "l", Type::Object(expr));
    let r_f = p.add_field(expr, "r", Type::Object(expr));
    let col_ref = p.add_class("ColRef", Some(expr));
    let lt = p.add_class("LtExpr", Some(expr));
    let and = p.add_class("AndExpr", Some(expr));

    // eval(this, row) -> int (booleans as 0/1, columns as values)
    let e_col = p.declare_method(col_ref, "eval", vec![iarr], Type::Int);
    let e_lt = p.declare_method(lt, "eval", vec![iarr], Type::Int);
    let e_and = p.declare_method(and, "eval", vec![iarr], Type::Int);
    let sel_eval = p.selector_by_name("eval", 2).unwrap();

    let mut fb = FunctionBuilder::new(&p, e_col);
    let this = fb.param(0);
    let row = fb.param(1);
    let c = fb.get_field(col_f, this);
    let v = fb.array_get(row, c);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(e_col, g);

    let mut fb = FunctionBuilder::new(&p, e_lt);
    let this = fb.param(0);
    let row = fb.param(1);
    let l = fb.get_field(l_f, this);
    let lv = fb.call_virtual(sel_eval, vec![l, row]).unwrap();
    let k = fb.get_field(k_f, this);
    let below = fb.cmp(CmpOp::ILt, lv, k);
    let out = if_else(
        &mut fb,
        below,
        Type::Int,
        |fb| fb.const_int(1),
        |fb| fb.const_int(0),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(e_lt, g);

    let mut fb = FunctionBuilder::new(&p, e_and);
    let this = fb.param(0);
    let row = fb.param(1);
    let l = fb.get_field(l_f, this);
    let lv = fb.call_virtual(sel_eval, vec![l, row]).unwrap();
    let zero = fb.const_int(0);
    let l_true = fb.cmp(CmpOp::INe, lv, zero);
    // Short-circuit: the right side only evaluates when the left is true.
    let out = if_else(
        &mut fb,
        l_true,
        Type::Int,
        |fb| {
            let r = fb.get_field(r_f, this);
            fb.call_virtual(sel_eval, vec![r, row]).unwrap()
        },
        |fb| fb.const_int(0),
    );
    fb.ret(Some(out));
    let g = fb.finish();
    p.define_method(e_and, g);

    // scan(table, width, pred, agg_col) -> sum of agg_col over matches
    let scan = p.declare_function(
        "scan",
        vec![iarr, Type::Int, Type::Object(expr), Type::Int],
        Type::Int,
    );
    let mut fb = FunctionBuilder::new(&p, scan);
    let table = fb.param(0);
    let width = fb.param(1);
    let pred = fb.param(2);
    let agg_col = fb.param(3);
    let total = fb.array_len(table);
    let rows = fb.binop(BinOp::IDiv, total, width); // width ≥ 1
    let row_buf = fb.new_array(ElemType::Int, width);
    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, rows, &[zero], |fb, r, state| {
        // Materialize the row.
        let base = fb.imul(r, width);
        let _ = counted_loop(fb, width, &[], |fb, c, _| {
            let idx = fb.iadd(base, c);
            let v = fb.array_get(table, idx);
            fb.array_set(row_buf, c, v);
            vec![]
        });
        let m = fb.call_virtual(sel_eval, vec![pred, row_buf]).unwrap();
        let zero2 = fb.const_int(0);
        let hit = fb.cmp(CmpOp::INe, m, zero2);
        let add = if_else(
            fb,
            hit,
            Type::Int,
            |fb| fb.array_get(row_buf, agg_col),
            |fb| fb.const_int(0),
        );
        let acc = fb.iadd(state[0], add);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(scan, g);

    // main(n): fill a 4-column table, run n scans with a fixed predicate:
    //   WHERE col0 < 500 AND col2 < 300  → SUM(col1)
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);
    let width = fb.const_int(4);
    let rows = fb.const_int(32);
    let cells = fb.imul(rows, width);
    let table = fb.new_array(ElemType::Int, cells);
    let _ = counted_loop(&mut fb, cells, &[], |fb, i, _| {
        let k = fb.const_int(37);
        let v = fb.imul(i, k);
        let m = fb.const_int(997);
        let v = fb.binop(BinOp::IRem, v, m);
        fb.array_set(table, i, v);
        vec![]
    });

    let mk_col = |fb: &mut FunctionBuilder<'_>, c: i64| -> ValueId {
        let obj = fb.new_object(col_ref);
        let cc = fb.const_int(c);
        fb.set_field(col_f, obj, cc);
        fb.cast(expr, obj)
    };
    let mk_lt = |fb: &mut FunctionBuilder<'_>, l: ValueId, k: i64| -> ValueId {
        let obj = fb.new_object(lt);
        let kk = fb.const_int(k);
        fb.set_field(l_f, obj, l);
        fb.set_field(k_f, obj, kk);
        fb.cast(expr, obj)
    };
    let c0 = mk_col(&mut fb, 0);
    let c2 = mk_col(&mut fb, 2);
    let p0 = mk_lt(&mut fb, c0, 500);
    let p2 = mk_lt(&mut fb, c2, 300);
    let pred = {
        let obj = fb.new_object(and);
        fb.set_field(l_f, obj, p0);
        fb.set_field(r_f, obj, p2);
        fb.cast(expr, obj)
    };

    let zero = fb.const_int(0);
    let one = fb.const_int(1);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        let s = fb.call_static(scan, vec![table, width, pred, one]).unwrap();
        // Perturb the table a little between scans.
        let slot = fb.binop(BinOp::IRem, i, cells);
        let old = fb.array_get(table, slot);
        let bumped = fb.iadd(old, one);
        let m = fb.const_int(997);
        let bumped = fb.binop(BinOp::IRem, bumped, m);
        fb.array_set(table, slot, bumped);
        let acc = fb.iadd(state[0], s);
        let mask = fb.const_int(0x7FFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);
    Workload::new(name, suite, p, main, input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verifies() {
        build("h2", Suite::DaCapo, 10).verify_all();
    }
}
