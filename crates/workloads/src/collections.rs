//! The paper's Figure 1 motif: generic collection traversal through
//! polymorphic `length`/`get`/`apply` callsites.
//!
//! `foreach` is only worth inlining if the tiny accessors inside its loop
//! are inlined *with* it — the cluster-or-nothing payoff that motivates
//! callsite clustering (§III). Models `scalatest`, `scalariform`,
//! `kiama` and `scalap` with varying closure polymorphism and sequence
//! implementations.

use incline_ir::builder::FunctionBuilder;
use incline_ir::{BinOp, CmpOp, ElemType, Program, Type};

use crate::util::counted_loop;
use crate::workload::{Suite, Workload};

/// Construction parameters.
#[derive(Clone, Copy, Debug)]
pub struct CollectionsParams {
    /// Number of distinct closure classes rotated through the hot loop
    /// (1 = monomorphic apply, 3 = the typeswitch limit).
    pub fn_classes: usize,
    /// Whether a second sequence implementation is mixed in (making
    /// `length`/`get` bimorphic).
    pub strided_seq: bool,
    /// Elements per traversal.
    pub seq_len: i64,
    /// Traversals per benchmark iteration (entry argument).
    pub input: i64,
}

/// Builds the workload.
pub fn build(name: &str, suite: Suite, params: CollectionsParams) -> Workload {
    let mut p = Program::new();

    // --- class hierarchy -----------------------------------------------------
    let fn_base = p.add_class("Fn", None);
    let k_field = p.add_field(fn_base, "k", Type::Int);
    let add_k = p.add_class("AddK", Some(fn_base));
    let mul_k = p.add_class("MulK", Some(fn_base));
    let xor_k = p.add_class("XorK", Some(fn_base));

    let seq_base = p.add_class("IntSeq", None);
    let data_field = p.add_field(seq_base, "data", Type::Array(ElemType::Int));
    let plain_seq = p.add_class("PlainSeq", Some(seq_base));
    let strided = p.add_class("StridedSeq", Some(seq_base));
    let stride_field = p.add_field(strided, "stride", Type::Int);

    // --- the helper tower under `apply` -----------------------------------------
    // Scala-style abstraction: apply → combine → blend, each a real method
    // with enough body that fixed exploration budgets and 1-by-1 analysis
    // have something to get wrong.
    let blend = p.declare_function("blend", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, blend);
    let x = fb.param(0);
    let k = fb.param(1);
    let mixed = fb.binop(BinOp::IXor, x, k);
    let padded = crate::util::pad_mix(&mut fb, mixed, 8);
    fb.ret(Some(padded));
    let g = fb.finish();
    p.define_method(blend, g);

    let combine = p.declare_function("combine", vec![Type::Int, Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, combine);
    let x = fb.param(0);
    let k = fb.param(1);
    let b = fb.call_static(blend, vec![x, k]).unwrap();
    let sum = fb.iadd(b, k);
    let padded = crate::util::pad_mix(&mut fb, sum, 5);
    fb.ret(Some(padded));
    let g = fb.finish();
    p.define_method(combine, g);

    // --- Fn.apply overloads ---------------------------------------------------
    let apply_base = p.declare_method(fn_base, "apply", vec![Type::Int], Type::Int);
    let apply_add = p.declare_method(add_k, "apply", vec![Type::Int], Type::Int);
    let apply_mul = p.declare_method(mul_k, "apply", vec![Type::Int], Type::Int);
    let apply_xor = p.declare_method(xor_k, "apply", vec![Type::Int], Type::Int);

    let mut fb = FunctionBuilder::new(&p, apply_base);
    let x = fb.param(1);
    fb.ret(Some(x));
    let g = fb.finish();
    p.define_method(apply_base, g);

    for (m, op) in [
        (apply_add, BinOp::IAdd),
        (apply_mul, BinOp::IMul),
        (apply_xor, BinOp::IXor),
    ] {
        let mut fb = FunctionBuilder::new(&p, m);
        let this = fb.param(0);
        let x = fb.param(1);
        let k = fb.get_field(k_field, this);
        let r = fb.binop(op, x, k);
        let c = fb.call_static(combine, vec![r, k]).unwrap();
        fb.ret(Some(c));
        let g = fb.finish();
        p.define_method(m, g);
    }

    // --- IntSeq.length / IntSeq.get --------------------------------------------
    let length = p.declare_method(seq_base, "length", vec![], Type::Int);
    let get_base = p.declare_method(seq_base, "get", vec![Type::Int], Type::Int);
    let get_plain = p.declare_method(plain_seq, "get", vec![Type::Int], Type::Int);
    let get_strided = p.declare_method(strided, "get", vec![Type::Int], Type::Int);

    let mut fb = FunctionBuilder::new(&p, length);
    let this = fb.param(0);
    let arr = fb.get_field(data_field, this);
    let len = fb.array_len(arr);
    fb.ret(Some(len));
    let g = fb.finish();
    p.define_method(length, g);

    let mut fb = FunctionBuilder::new(&p, get_base);
    let this = fb.param(0);
    let i = fb.param(1);
    let arr = fb.get_field(data_field, this);
    let v = fb.array_get(arr, i);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(get_base, g);

    let mut fb = FunctionBuilder::new(&p, get_plain);
    let this = fb.param(0);
    let i = fb.param(1);
    let arr = fb.get_field(data_field, this);
    let v = fb.array_get(arr, i);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(get_plain, g);

    let mut fb = FunctionBuilder::new(&p, get_strided);
    let this = fb.param(0);
    let i = fb.param(1);
    let arr = fb.get_field(data_field, this);
    let stride = fb.get_field(stride_field, this);
    let len = fb.array_len(arr);
    let scaled = fb.imul(i, stride);
    let idx = fb.binop(BinOp::IRem, scaled, len); // len > 0 by construction
    let v = fb.array_get(arr, idx);
    fb.ret(Some(v));
    let g = fb.finish();
    p.define_method(get_strided, g);

    // --- foreach(seq, f, acc) ----------------------------------------------------
    let foreach = p.declare_function(
        "foreach",
        vec![Type::Object(seq_base), Type::Object(fn_base), Type::Int],
        Type::Int,
    );
    let sel_length = p.selector_by_name("length", 1).unwrap();
    let sel_get = p.selector_by_name("get", 2).unwrap();
    let sel_apply = p.selector_by_name("apply", 2).unwrap();
    let mut fb = FunctionBuilder::new(&p, foreach);
    let seq = fb.param(0);
    let f = fb.param(1);
    let acc0 = fb.param(2);
    let len = fb.call_virtual(sel_length, vec![seq]).unwrap();
    let out = counted_loop(&mut fb, len, &[acc0], |fb, i, state| {
        let v = fb.call_virtual(sel_get, vec![seq, i]).unwrap();
        let fv = fb.call_virtual(sel_apply, vec![f, v]).unwrap();
        let acc = fb.iadd(state[0], fv);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(foreach, g);

    // --- main(n) --------------------------------------------------------------
    let main = p.declare_function("main", vec![Type::Int], Type::Int);
    let mut fb = FunctionBuilder::new(&p, main);
    let n = fb.param(0);

    // Build the sequence(s).
    let seq_len = fb.const_int(params.seq_len);
    let data = fb.new_array(ElemType::Int, seq_len);
    let filled = counted_loop(&mut fb, seq_len, &[], |fb, i, _| {
        let seven = fb.const_int(7);
        let v = fb.imul(i, seven);
        let mask = fb.const_int(1023);
        let v = fb.binop(BinOp::IAnd, v, mask);
        fb.array_set(data, i, v);
        vec![]
    });
    drop(filled);
    let seq_obj = fb.new_object(plain_seq);
    fb.set_field(data_field, seq_obj, data);
    let seq2_obj = fb.new_object(strided);
    fb.set_field(data_field, seq2_obj, data);
    let three = fb.const_int(3);
    fb.set_field(stride_field, seq2_obj, three);

    // Build the closures.
    let classes = [add_k, mul_k, xor_k];
    let mut fns = Vec::new();
    for (idx, &c) in classes
        .iter()
        .take(params.fn_classes.clamp(1, 3))
        .enumerate()
    {
        let obj = fb.new_object(c);
        let k = fb.const_int(idx as i64 + 3);
        fb.set_field(k_field, obj, k);
        fns.push(obj);
    }

    let zero = fb.const_int(0);
    let out = counted_loop(&mut fb, n, &[zero], |fb, i, state| {
        // Rotate closures to shape the receiver profile.
        let fcount = fb.const_int(fns.len() as i64);
        let sel = fb.binop(BinOp::IRem, i, fcount);
        // Chain of equality tests picks the closure object.
        let mut f = fns[0];
        for (k, &cand) in fns.iter().enumerate().skip(1) {
            let kk = fb.const_int(k as i64);
            let is_k = fb.cmp(CmpOp::IEq, sel, kk);
            f = crate::util::if_else(fb, is_k, Type::Object(fn_base), |_| cand, |_| f);
        }
        // Alternate sequence implementations if configured.
        let seq = if params.strided_seq {
            let two = fb.const_int(2);
            let odd = fb.binop(BinOp::IRem, i, two);
            let one = fb.const_int(1);
            let is_odd = fb.cmp(CmpOp::IEq, odd, one);
            crate::util::if_else(
                fb,
                is_odd,
                Type::Object(seq_base),
                |_| seq2_obj,
                |_| seq_obj,
            )
        } else {
            seq_obj
        };
        let acc = fb.call_static(foreach, vec![seq, f, state[0]]).unwrap();
        let mask = fb.const_int(0xFFFF_FFFF);
        let acc = fb.binop(BinOp::IAnd, acc, mask);
        vec![acc]
    });
    fb.ret(Some(out[0]));
    let g = fb.finish();
    p.define_method(main, g);

    Workload::new(name, suite, p, main, params.input, 16)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_verifies() {
        let w = build(
            "kiama",
            Suite::ScalaDaCapo,
            CollectionsParams {
                fn_classes: 3,
                strided_seq: false,
                seq_len: 32,
                input: 10,
            },
        );
        w.verify_all();
    }

    #[test]
    fn strided_variant_verifies() {
        let w = build(
            "scalap",
            Suite::ScalaDaCapo,
            CollectionsParams {
                fn_classes: 2,
                strided_seq: true,
                seq_len: 16,
                input: 5,
            },
        );
        w.verify_all();
    }
}
