//! Robustness tests for the textual-IR parser: malformed input must
//! produce a `ParseError`, never a panic, and error positions must be
//! within the input.

use proptest::prelude::*;

use incline_ir::parse::parse_program;

const VALID: &str = r#"
class Base
class Impl : Base {
  field n: int
}

method Impl.get(Impl) -> int {
b0(v0: Impl):
  v1 = getfield Impl.n v0
  ret v1
}

fn main(int) -> int {
b0(v0: int):
  v1 = new Impl
  setfield Impl.n v1, v0
  v2 = callv get(v1)
  v3 = newarray int, v0
  v4 = alen v3
  v5 = iadd v2, v4
  print v5
  ret v5
}
"#;

#[test]
fn valid_program_parses() {
    let p = parse_program(VALID).expect("fixture parses");
    assert_eq!(p.method_count(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_ascii_never_panics(s in "[ -~\n]{0,200}") {
        let _ = parse_program(&s);
    }

    #[test]
    fn truncations_never_panic(cut in 0usize..VALID.len()) {
        // Truncate at a char boundary.
        let mut cut = cut;
        while !VALID.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_program(&VALID[..cut]);
    }

    #[test]
    fn single_byte_mutations_never_panic(pos in 0usize..VALID.len(), byte in 32u8..127) {
        let mut bytes = VALID.as_bytes().to_vec();
        let mut pos = pos;
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        bytes[pos] = byte;
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse_program(s);
        }
    }

    #[test]
    fn error_positions_inside_input(s in "(fn|class|method) [a-z ()>{}:,-]{0,60}") {
        if let Err(e) = parse_program(&s) {
            let lines = s.lines().count().max(1) as u32;
            prop_assert!(e.line <= lines + 1, "line {} beyond input ({} lines)", e.line, lines);
        }
    }

    #[test]
    fn shuffled_valid_lines_never_panic(seed in any::<u64>()) {
        // A deterministic shuffle of the fixture's lines: structurally
        // plausible but almost always invalid input.
        let mut lines: Vec<&str> = VALID.lines().collect();
        let mut state = seed.max(1);
        for i in (1..lines.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lines.swap(i, (state as usize) % (i + 1));
        }
        let shuffled = lines.join("\n");
        let _ = parse_program(&shuffled);
    }
}
