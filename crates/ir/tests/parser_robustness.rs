//! Robustness tests for the textual-IR parser: malformed input must
//! produce a `ParseError`, never a panic, and error positions must be
//! within the input. Randomized cases are driven by the in-repo seeded
//! [`Rng64`] so the suite runs without external crates and is fully
//! deterministic.

use incline_ir::parse::parse_program;
use incline_ir::Rng64;

const VALID: &str = r#"
class Base
class Impl : Base {
  field n: int
}

method Impl.get(Impl) -> int {
b0(v0: Impl):
  v1 = getfield Impl.n v0
  ret v1
}

fn main(int) -> int {
b0(v0: int):
  v1 = new Impl
  setfield Impl.n v1, v0
  v2 = callv get(v1)
  v3 = newarray int, v0
  v4 = alen v3
  v5 = iadd v2, v4
  print v5
  ret v5
}
"#;

#[test]
fn valid_program_parses() {
    let p = parse_program(VALID).expect("fixture parses");
    assert_eq!(p.method_count(), 2);
}

#[test]
fn arbitrary_ascii_never_panics() {
    let mut rng = Rng64::new(0xA5C11);
    for _ in 0..256 {
        let len = rng.gen_index(201);
        let s: String = (0..len)
            .map(|_| {
                // Printable ASCII plus newline.
                match rng.gen_index(16) {
                    0 => '\n',
                    _ => (rng.gen_range(0x20, 0x7F) as u8) as char,
                }
            })
            .collect();
        let _ = parse_program(&s);
    }
}

#[test]
fn truncations_never_panic() {
    for mut cut in 0..VALID.len() {
        // Truncate at a char boundary.
        while !VALID.is_char_boundary(cut) {
            cut -= 1;
        }
        let _ = parse_program(&VALID[..cut]);
    }
}

#[test]
fn single_byte_mutations_never_panic() {
    let mut rng = Rng64::new(0xB17E);
    for _ in 0..256 {
        let mut pos = rng.gen_index(VALID.len());
        let byte = rng.gen_range(32, 127) as u8;
        let mut bytes = VALID.as_bytes().to_vec();
        while !VALID.is_char_boundary(pos) {
            pos -= 1;
        }
        bytes[pos] = byte;
        if let Ok(s) = std::str::from_utf8(&bytes) {
            let _ = parse_program(s);
        }
    }
}

#[test]
fn error_positions_inside_input() {
    let mut rng = Rng64::new(0xE4404);
    const ALPHABET: &[u8] = b"abcdefghijklmnopqrstuvwxyz ()>{}:,-";
    for _ in 0..256 {
        let head = ["fn", "class", "method"][rng.gen_index(3)];
        let len = rng.gen_index(61);
        let tail: String = (0..len)
            .map(|_| ALPHABET[rng.gen_index(ALPHABET.len())] as char)
            .collect();
        let s = format!("{head} {tail}");
        if let Err(e) = parse_program(&s) {
            let lines = s.lines().count().max(1) as u32;
            assert!(
                e.line <= lines + 1,
                "line {} beyond input ({} lines)",
                e.line,
                lines
            );
        }
    }
}

#[test]
fn shuffled_valid_lines_never_panic() {
    // A deterministic shuffle of the fixture's lines: structurally
    // plausible but almost always invalid input.
    let mut rng = Rng64::new(0x5FF1E);
    for _ in 0..256 {
        let mut lines: Vec<&str> = VALID.lines().collect();
        for i in (1..lines.len()).rev() {
            let j = rng.gen_index(i + 1);
            lines.swap(i, j);
        }
        let shuffled = lines.join("\n");
        let _ = parse_program(&shuffled);
    }
}
