//! Dominator analysis (Cooper–Harvey–Kennedy) over the block CFG.
//!
//! Used by the verifier (defs must dominate uses), by GVN (dominator-tree
//! scoped hash table) and by loop detection (back edges).

use std::collections::HashMap;

use crate::graph::Graph;
use crate::ids::BlockId;

/// Immediate-dominator tree for the reachable blocks of a graph.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// Reverse postorder of reachable blocks.
    rpo: Vec<BlockId>,
    /// Position of each block in `rpo` (`usize::MAX` for unreachable).
    rpo_index: Vec<usize>,
    /// Immediate dominator of each reachable block (entry maps to itself).
    idom: HashMap<BlockId, BlockId>,
    /// Children in the dominator tree.
    children: HashMap<BlockId, Vec<BlockId>>,
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree of `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let entry = graph.entry();
        let rpo = reverse_postorder(graph);
        let mut rpo_index = vec![usize::MAX; graph.block_count()];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let preds = graph.predecessors();

        // idom in rpo-position space; entry's idom is itself.
        let mut idom: Vec<Option<usize>> = vec![None; rpo.len()];
        idom[0] = Some(0);
        let mut changed = true;
        while changed {
            changed = false;
            for i in 1..rpo.len() {
                let b = rpo[i];
                let mut new_idom: Option<usize> = None;
                for &p in preds.get(&b).map(Vec::as_slice).unwrap_or(&[]) {
                    let pi = rpo_index[p.index()];
                    if pi == usize::MAX || idom[pi].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => pi,
                        Some(cur) => intersect(&idom, cur, pi),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[i] != Some(ni) {
                        idom[i] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        let mut idom_map = HashMap::new();
        let mut children: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for (i, &b) in rpo.iter().enumerate() {
            let d = rpo[idom[i].expect("reachable block must acquire an idom")];
            idom_map.insert(b, d);
            if i != 0 {
                children.entry(d).or_default().push(b);
            }
        }
        DomTree {
            rpo,
            rpo_index,
            idom: idom_map,
            children,
            entry,
        }
    }

    /// Reverse postorder of reachable blocks (entry first).
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: BlockId) -> bool {
        block.index() < self.rpo_index.len() && self.rpo_index[block.index()] != usize::MAX
    }

    /// Immediate dominator of `block` (the entry dominates itself).
    pub fn idom(&self, block: BlockId) -> Option<BlockId> {
        self.idom.get(&block).copied()
    }

    /// Children of `block` in the dominator tree.
    pub fn children(&self, block: BlockId) -> &[BlockId] {
        self.children.get(&block).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            cur = self.idom[&cur];
        }
    }

    /// Preorder walk of the dominator tree.
    pub fn preorder(&self) -> Vec<BlockId> {
        let mut out = Vec::with_capacity(self.rpo.len());
        let mut stack = vec![self.entry];
        while let Some(b) = stack.pop() {
            out.push(b);
            for &c in self.children(b) {
                stack.push(c);
            }
        }
        out
    }
}

fn intersect(idom: &[Option<usize>], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while a > b {
            a = idom[a].expect("intersect on processed node");
        }
        while b > a {
            b = idom[b].expect("intersect on processed node");
        }
    }
    a
}

/// Reverse postorder over reachable blocks.
pub fn reverse_postorder(graph: &Graph) -> Vec<BlockId> {
    let mut post = Vec::new();
    let mut seen = vec![false; graph.block_count()];
    // Iterative DFS with an explicit "exit" marker.
    let mut stack = vec![(graph.entry(), false)];
    while let Some((b, processed)) = stack.pop() {
        if processed {
            post.push(b);
            continue;
        }
        if seen[b.index()] {
            continue;
        }
        seen[b.index()] = true;
        stack.push((b, true));
        for s in graph.block(b).term.successors() {
            if !seen[s.index()] {
                stack.push((s, false));
            }
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Op, Terminator};
    use crate::types::Type;

    /// Builds the classic diamond: e -> {t, f} -> j.
    fn diamond() -> (Graph, BlockId, BlockId, BlockId, BlockId) {
        let mut g = Graph::empty();
        let e = g.entry();
        let c = g
            .append(e, Op::ConstBool(true), vec![], Some(Type::Bool))
            .1
            .unwrap();
        let t = g.add_block();
        let f = g.add_block();
        let j = g.add_block();
        g.set_terminator(
            e,
            Terminator::Branch {
                cond: c,
                then_dest: (t, vec![]),
                else_dest: (f, vec![]),
            },
        );
        g.set_terminator(t, Terminator::Jump(j, vec![]));
        g.set_terminator(f, Terminator::Jump(j, vec![]));
        g.set_terminator(j, Terminator::Return(None));
        (g, e, t, f, j)
    }

    #[test]
    fn diamond_idoms() {
        let (g, e, t, f, j) = diamond();
        let dom = DomTree::compute(&g);
        assert_eq!(dom.idom(t), Some(e));
        assert_eq!(dom.idom(f), Some(e));
        assert_eq!(dom.idom(j), Some(e));
        assert!(dom.dominates(e, j));
        assert!(!dom.dominates(t, j));
        assert!(dom.dominates(t, t));
    }

    #[test]
    fn loop_idoms() {
        // e -> h; h -> body | exit; body -> h
        let mut g = Graph::empty();
        let e = g.entry();
        let c = g
            .append(e, Op::ConstBool(true), vec![], Some(Type::Bool))
            .1
            .unwrap();
        let h = g.add_block();
        let body = g.add_block();
        let exit = g.add_block();
        g.set_terminator(e, Terminator::Jump(h, vec![]));
        g.set_terminator(
            h,
            Terminator::Branch {
                cond: c,
                then_dest: (body, vec![]),
                else_dest: (exit, vec![]),
            },
        );
        g.set_terminator(body, Terminator::Jump(h, vec![]));
        g.set_terminator(exit, Terminator::Return(None));
        let dom = DomTree::compute(&g);
        assert_eq!(dom.idom(h), Some(e));
        assert_eq!(dom.idom(body), Some(h));
        assert_eq!(dom.idom(exit), Some(h));
        assert!(dom.dominates(h, body));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let (g, e, ..) = diamond();
        let rpo = reverse_postorder(&g);
        assert_eq!(rpo[0], e);
        assert_eq!(rpo.len(), 4);
    }

    #[test]
    fn unreachable_blocks_excluded() {
        let (mut g, ..) = diamond();
        let dead = g.add_block();
        g.set_terminator(dead, Terminator::Return(None));
        let dom = DomTree::compute(&g);
        assert!(!dom.is_reachable(dead));
        assert_eq!(dom.rpo().len(), 4);
    }

    #[test]
    fn preorder_visits_all_reachable() {
        let (g, ..) = diamond();
        let dom = DomTree::compute(&g);
        let mut pre = dom.preorder();
        pre.sort();
        let mut all = g.reachable_blocks();
        all.sort();
        assert_eq!(pre, all);
    }
}
