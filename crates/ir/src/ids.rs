//! Newtype entity identifiers used throughout the IR.
//!
//! Every arena-allocated entity (values, instructions, blocks, methods,
//! classes, fields, selectors) is referred to by a dense `u32` index wrapped
//! in a dedicated newtype, so that indices of different entity kinds cannot
//! be confused ([C-NEWTYPE]).

use std::fmt;

macro_rules! entity_id {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates an id from a dense index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[inline]
            pub fn new(index: usize) -> Self {
                assert!(index <= u32::MAX as usize, "entity index overflow");
                Self(index as u32)
            }

            /// Returns the dense index of this id.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity_id! {
    /// An SSA value: either a block parameter or the result of an instruction.
    ValueId, "v"
}
entity_id! {
    /// An instruction in a graph's instruction arena.
    InstId, "i"
}
entity_id! {
    /// A basic block in a graph.
    BlockId, "b"
}
entity_id! {
    /// A method of the program (static function or class method).
    MethodId, "m"
}
entity_id! {
    /// A class in the program's class hierarchy.
    ClassId, "c"
}
entity_id! {
    /// A field of a class (globally indexed; carries its layout offset).
    FieldId, "f"
}
entity_id! {
    /// An interned virtual-dispatch selector (method name + arity).
    SelectorId, "s"
}

/// Stable identity of a callsite, assigned when the containing method is
/// built and preserved verbatim when graphs are cloned or inlined.
///
/// Profiles are keyed by `CallSiteId`, so a callsite keeps its profile even
/// after its surrounding code has been transplanted into another method.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CallSiteId {
    /// Method whose source text contains this callsite.
    pub method: MethodId,
    /// Dense per-method callsite index.
    pub index: u32,
}

impl fmt::Debug for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cs({},{})", self.method, self.index)
    }
}

impl fmt::Display for CallSiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_index() {
        let v = ValueId::new(17);
        assert_eq!(v.index(), 17);
        assert_eq!(format!("{v}"), "v17");
        assert_eq!(format!("{v:?}"), "v17");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(BlockId::new(1) < BlockId::new(2));
        assert_eq!(MethodId::new(3), MethodId::new(3));
    }

    #[test]
    #[should_panic(expected = "entity index overflow")]
    fn overflow_panics() {
        let _ = ValueId::new(u32::MAX as usize + 1);
    }

    #[test]
    fn callsite_id_display() {
        let cs = CallSiteId {
            method: MethodId::new(4),
            index: 2,
        };
        assert_eq!(format!("{cs}"), "cs(m4,2)");
    }
}
