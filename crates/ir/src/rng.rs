//! A tiny deterministic PRNG (SplitMix64) used across the workspace.
//!
//! The container this project builds in has no access to crates.io, so
//! everything that needs randomness — the seeded program generator in
//! `incline-workloads`, the fault-injection plans in `incline-vm`, and the
//! randomized property tests — uses this vendor-free generator instead of
//! the `rand` crate. Determinism is a hard requirement: the same seed must
//! produce the same stream on every platform, because benchmark results,
//! differential tests and fault plans are all keyed by seed.

/// A deterministic 64-bit PRNG (SplitMix64, Steele et al. 2014).
///
/// Not cryptographic; statistically solid for test-case generation and
/// fault scheduling. The state advance is a single add, so streams are
/// cheap to fork by reseeding from `next_u64`.
#[derive(Clone, Debug)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds ⇒ equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform float in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 significant bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// A uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A uniform index in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "empty index range");
        (self.next_u64() % n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng64::new(7);
        let mut b = Rng64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_in_bounds() {
        let mut r = Rng64::new(42);
        for _ in 0..1000 {
            let v = r.gen_range(-5, 9);
            assert!((-5..9).contains(&v));
            let i = r.gen_index(3);
            assert!(i < 3);
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng64::new(3);
        for _ in 0..100 {
            assert!(!r.gen_bool(0.0));
            assert!(r.gen_bool(1.0));
        }
    }
}
