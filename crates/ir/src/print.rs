//! Textual rendering of programs and graphs.
//!
//! The format is designed to round-trip through [`crate::parse`]:
//!
//! ```text
//! class Shape
//! class Circle : Shape {
//!   field r: float
//! }
//!
//! fn area2(Circle) -> float {
//! b0(v0: Circle):
//!   v1 = getfield Circle.r v0
//!   v2 = fmul v1, v1
//!   ret v2
//! }
//! ```
//!
//! Blocks are printed in reverse postorder, so every textual use appears
//! after its definition (our CFGs are reducible).

use std::fmt::Write as _;

use crate::dom::reverse_postorder;
use crate::graph::{CallTarget, Graph, Op, Terminator};
use crate::ids::{BlockId, ValueId};
use crate::program::{MethodKind, Program};
use crate::types::{RetType, Type};

/// Renders a type using class names from the program.
pub fn type_str(program: &Program, ty: Type) -> String {
    match ty {
        Type::Int => "int".to_string(),
        Type::Float => "float".to_string(),
        Type::Bool => "bool".to_string(),
        Type::Object(c) => program.class(c).name.clone(),
        Type::Array(e) => format!("[{}]", type_str(program, e.to_type())),
    }
}

/// Renders a return type.
pub fn ret_type_str(program: &Program, ret: RetType) -> String {
    match ret {
        RetType::Void => "void".to_string(),
        RetType::Value(t) => type_str(program, t),
    }
}

fn args_str(args: &[ValueId]) -> String {
    args.iter()
        .map(|v| v.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn edge_str(dest: BlockId, args: &[ValueId]) -> String {
    format!("{dest}({})", args_str(args))
}

/// Renders one instruction (without trailing newline).
pub fn inst_str(program: &Program, graph: &Graph, inst: crate::ids::InstId) -> String {
    let data = graph.inst(inst);
    let lhs = match data.result {
        Some(r) => format!("{r} = "),
        None => String::new(),
    };
    let rhs = match &data.op {
        Op::Nop => "nop".to_string(),
        Op::ConstInt(k) => format!("const.int {k}"),
        Op::ConstFloat(bits) => format!("const.float {:?}", f64::from_bits(*bits)),
        Op::ConstBool(k) => format!("const.bool {k}"),
        Op::ConstNull(t) => format!("const.null {}", type_str(program, *t)),
        Op::Bin(op) => format!("{} {}", op.mnemonic(), args_str(&data.args)),
        Op::Cmp(op) => format!("{} {}", op.mnemonic(), args_str(&data.args)),
        Op::Not => format!("not {}", args_str(&data.args)),
        Op::INeg => format!("ineg {}", args_str(&data.args)),
        Op::FNeg => format!("fneg {}", args_str(&data.args)),
        Op::IntToFloat => format!("i2f {}", args_str(&data.args)),
        Op::FloatToInt => format!("f2i {}", args_str(&data.args)),
        Op::New(c) => format!("new {}", program.class(*c).name),
        Op::GetField(f) => {
            let fd = program.field(*f);
            format!(
                "getfield {}.{} {}",
                program.class(fd.holder).name,
                fd.name,
                args_str(&data.args)
            )
        }
        Op::SetField(f) => {
            let fd = program.field(*f);
            format!(
                "setfield {}.{} {}",
                program.class(fd.holder).name,
                fd.name,
                args_str(&data.args)
            )
        }
        Op::NewArray(e) => format!(
            "newarray {}, {}",
            type_str(program, e.to_type()),
            args_str(&data.args)
        ),
        Op::ArrayGet => format!("aget {}", args_str(&data.args)),
        Op::ArraySet => format!("aset {}", args_str(&data.args)),
        Op::ArrayLen => format!("alen {}", args_str(&data.args)),
        Op::Call(info) => match info.target {
            CallTarget::Static(m) => {
                let md = program.method(m);
                match md.holder {
                    // Devirtualized calls target class methods directly.
                    Some(h) => format!(
                        "call {}::{}({})",
                        program.class(h).name,
                        md.name,
                        args_str(&data.args)
                    ),
                    None => format!("call {}({})", md.name, args_str(&data.args)),
                }
            }
            CallTarget::Virtual(sel) => {
                format!(
                    "callv {}({})",
                    program.selector(sel).name,
                    args_str(&data.args)
                )
            }
        },
        Op::InstanceOf(c) => format!(
            "instanceof {} {}",
            program.class(*c).name,
            args_str(&data.args)
        ),
        Op::Cast(c) => format!("cast {} {}", program.class(*c).name, args_str(&data.args)),
        Op::Print => format!("print {}", args_str(&data.args)),
    };
    format!("{lhs}{rhs}")
}

/// Renders a graph body (blocks in reverse postorder).
pub fn graph_str(program: &Program, graph: &Graph) -> String {
    let mut out = String::new();
    for &b in &reverse_postorder(graph) {
        let bd = graph.block(b);
        let params = bd
            .params
            .iter()
            .map(|&p| format!("{p}: {}", type_str(program, graph.value_type(p))))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "{b}({params}):");
        for &i in &bd.insts {
            let _ = writeln!(out, "  {}", inst_str(program, graph, i));
        }
        let term = match &bd.term {
            Terminator::Jump(d, args) => format!("jump {}", edge_str(*d, args)),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => format!(
                "br {cond}, {}, {}",
                edge_str(then_dest.0, &then_dest.1),
                edge_str(else_dest.0, &else_dest.1)
            ),
            Terminator::Return(Some(v)) => format!("ret {v}"),
            Terminator::Return(None) => "ret".to_string(),
            Terminator::Deopt { reason } => format!("deopt {reason}"),
            Terminator::Unterminated => "<unterminated>".to_string(),
        };
        let _ = writeln!(out, "  {term}");
    }
    out
}

/// Renders the whole program: classes, then every defined method.
pub fn program_str(program: &Program) -> String {
    let mut out = String::new();
    for c in program.class_ids() {
        let cd = program.class(c);
        let _ = write!(out, "class {}", cd.name);
        if let Some(p) = cd.parent {
            let _ = write!(out, " : {}", program.class(p).name);
        }
        if cd.declared_fields.is_empty() {
            let _ = writeln!(out);
        } else {
            let _ = writeln!(out, " {{");
            for &f in &cd.declared_fields {
                let fd = program.field(f);
                let _ = writeln!(out, "  field {}: {}", fd.name, type_str(program, fd.ty));
            }
            let _ = writeln!(out, "}}");
        }
    }
    for m in program.method_ids() {
        let md = program.method(m);
        let _ = writeln!(out);
        let kw = match (md.kind, md.holder) {
            (MethodKind::Opaque, None) => "opaque fn".to_string(),
            (MethodKind::Normal, None) => "fn".to_string(),
            (MethodKind::Opaque, Some(h)) => format!("opaque method {}.", program.class(h).name),
            (MethodKind::Normal, Some(h)) => format!("method {}.", program.class(h).name),
        };
        let sep = if md.holder.is_some() { "" } else { " " };
        let params = md
            .params
            .iter()
            .map(|&t| type_str(program, t))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(
            out,
            "{kw}{sep}{}({params}) -> {} {{",
            md.name,
            ret_type_str(program, md.ret)
        );
        let _ = write!(out, "{}", graph_str(program, &md.graph));
        let _ = writeln!(out, "}}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::graph::CmpOp;

    #[test]
    fn prints_simple_function() {
        let mut p = Program::new();
        let m = p.declare_function("inc", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let one = fb.const_int(1);
        let r = fb.iadd(x, one);
        fb.ret(Some(r));
        p.define_method(m, fb.finish());
        let s = program_str(&p);
        assert!(s.contains("fn inc(int) -> int {"), "{s}");
        assert!(s.contains("const.int 1"), "{s}");
        assert!(s.contains("iadd"), "{s}");
        assert!(s.contains("ret v2"), "{s}");
    }

    #[test]
    fn prints_classes_and_fields() {
        let mut p = Program::new();
        let a = p.add_class("Shape", None);
        p.add_field(a, "tag", Type::Int);
        let b = p.add_class("Circle", Some(a));
        p.add_field(b, "r", Type::Float);
        let s = program_str(&p);
        assert!(s.contains("class Shape {"), "{s}");
        assert!(s.contains("field tag: int"), "{s}");
        assert!(s.contains("class Circle : Shape {"), "{s}");
    }

    #[test]
    fn prints_branches_with_edge_args() {
        let mut p = Program::new();
        let m = p.declare_function("max0", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let c = fb.cmp(CmpOp::ILt, x, zero);
        let (j, jp) = fb.add_block_with_params(&[Type::Int]);
        fb.branch(c, (j, vec![zero]), (j, vec![x]));
        fb.switch_to(j);
        fb.ret(Some(jp[0]));
        p.define_method(m, fb.finish());
        let s = program_str(&p);
        assert!(s.contains("br v2, b1(v1), b1(v0)"), "{s}");
    }

    #[test]
    fn float_constants_round_trip_textually() {
        let mut p = Program::new();
        let m = p.declare_function("k", vec![], Type::Float);
        let mut fb = FunctionBuilder::new(&p, m);
        let v = fb.const_float(0.1 + 0.2);
        fb.ret(Some(v));
        p.define_method(m, fb.finish());
        let s = program_str(&p);
        // Rust's {:?} for f64 prints the shortest lossless representation.
        assert!(s.contains(&format!("const.float {:?}", 0.1 + 0.2)), "{s}");
    }
}
