//! Convenience builder for authoring method bodies.
//!
//! [`FunctionBuilder`] wraps a [`Graph`] with a current-block cursor, typed
//! helpers for every [`Op`], and automatic minting of stable
//! [`CallSiteId`]s. It borrows the [`Program`] immutably so that field and
//! method signatures do not have to be restated at every use; declare all
//! classes, fields and method signatures first, then build bodies.
//!
//! ```
//! use incline_ir::{Program, FunctionBuilder, Type};
//!
//! let mut p = Program::new();
//! let double = p.declare_function("double", vec![Type::Int], Type::Int);
//! let mut fb = FunctionBuilder::new(&p, double);
//! let x = fb.param(0);
//! let two = fb.const_int(2);
//! let r = fb.imul(x, two);
//! fb.ret(Some(r));
//! let graph = fb.finish();
//! p.define_method(double, graph);
//! assert!(incline_ir::verify::verify(&p, p.method(double)).is_ok());
//! ```

use crate::graph::{BinOp, CallInfo, CallTarget, CmpOp, Graph, Op, Terminator};
use crate::ids::{BlockId, CallSiteId, ClassId, FieldId, MethodId, SelectorId, ValueId};
use crate::program::Program;
use crate::types::{ElemType, RetType, Type};

/// Builds the body of one declared method.
#[derive(Debug)]
pub struct FunctionBuilder<'p> {
    program: &'p Program,
    graph: Graph,
    method: MethodId,
    cur: BlockId,
    next_site: u32,
}

impl<'p> FunctionBuilder<'p> {
    /// Starts building the body of `method`, creating one entry-block
    /// parameter per declared parameter type.
    pub fn new(program: &'p Program, method: MethodId) -> Self {
        let mut graph = Graph::empty();
        let entry = graph.entry();
        for &ty in &program.method(method).params {
            graph.add_block_param(entry, ty);
        }
        FunctionBuilder {
            program,
            graph,
            method,
            cur: entry,
            next_site: 0,
        }
    }

    /// The program being built against.
    pub fn program(&self) -> &Program {
        self.program
    }

    /// The method whose body is being built.
    pub fn method(&self) -> MethodId {
        self.method
    }

    /// The `i`-th parameter of the method (receiver is parameter 0 for
    /// class methods).
    pub fn param(&self, i: usize) -> ValueId {
        self.graph.block(self.graph.entry()).params[i]
    }

    /// Static type of a value built so far.
    pub fn value_type(&self, v: ValueId) -> Type {
        self.graph.value_type(v)
    }

    /// Consumes the builder and returns the finished graph.
    pub fn finish(self) -> Graph {
        self.graph
    }

    // ---- blocks -----------------------------------------------------------

    /// Creates a new block (does not switch to it).
    pub fn add_block(&mut self) -> BlockId {
        self.graph.add_block()
    }

    /// Creates a new block with the given parameter types; returns the block
    /// and its parameter values.
    pub fn add_block_with_params(&mut self, tys: &[Type]) -> (BlockId, Vec<ValueId>) {
        let b = self.graph.add_block();
        let params = tys
            .iter()
            .map(|&t| self.graph.add_block_param(b, t))
            .collect();
        (b, params)
    }

    /// Switches the insertion cursor to `block`.
    pub fn switch_to(&mut self, block: BlockId) {
        self.cur = block;
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    // ---- constants --------------------------------------------------------

    /// Appends an integer constant.
    pub fn const_int(&mut self, k: i64) -> ValueId {
        self.emit(Op::ConstInt(k), vec![], Some(Type::Int))
    }

    /// Appends a float constant.
    pub fn const_float(&mut self, k: f64) -> ValueId {
        self.emit(Op::ConstFloat(k.to_bits()), vec![], Some(Type::Float))
    }

    /// Appends a boolean constant.
    pub fn const_bool(&mut self, k: bool) -> ValueId {
        self.emit(Op::ConstBool(k), vec![], Some(Type::Bool))
    }

    /// Appends a null constant of reference type `ty`.
    ///
    /// # Panics
    ///
    /// Panics if `ty` is not a reference type.
    pub fn const_null(&mut self, ty: Type) -> ValueId {
        assert!(ty.is_reference(), "null must have a reference type");
        self.emit(Op::ConstNull(ty), vec![], Some(ty))
    }

    // ---- arithmetic -------------------------------------------------------

    /// Appends a binary arithmetic instruction.
    pub fn binop(&mut self, op: BinOp, a: ValueId, b: ValueId) -> ValueId {
        let ty = op.result_type();
        self.emit(Op::Bin(op), vec![a, b], Some(ty))
    }

    /// Integer add.
    pub fn iadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(BinOp::IAdd, a, b)
    }

    /// Integer subtract.
    pub fn isub(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(BinOp::ISub, a, b)
    }

    /// Integer multiply.
    pub fn imul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(BinOp::IMul, a, b)
    }

    /// Float add.
    pub fn fadd(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(BinOp::FAdd, a, b)
    }

    /// Float multiply.
    pub fn fmul(&mut self, a: ValueId, b: ValueId) -> ValueId {
        self.binop(BinOp::FMul, a, b)
    }

    /// Appends a comparison instruction.
    pub fn cmp(&mut self, op: CmpOp, a: ValueId, b: ValueId) -> ValueId {
        self.emit(Op::Cmp(op), vec![a, b], Some(Type::Bool))
    }

    /// Boolean negation.
    pub fn not(&mut self, a: ValueId) -> ValueId {
        self.emit(Op::Not, vec![a], Some(Type::Bool))
    }

    /// Integer negation.
    pub fn ineg(&mut self, a: ValueId) -> ValueId {
        self.emit(Op::INeg, vec![a], Some(Type::Int))
    }

    /// Float negation.
    pub fn fneg(&mut self, a: ValueId) -> ValueId {
        self.emit(Op::FNeg, vec![a], Some(Type::Float))
    }

    /// Int-to-float conversion.
    pub fn int_to_float(&mut self, a: ValueId) -> ValueId {
        self.emit(Op::IntToFloat, vec![a], Some(Type::Float))
    }

    /// Float-to-int (truncating) conversion.
    pub fn float_to_int(&mut self, a: ValueId) -> ValueId {
        self.emit(Op::FloatToInt, vec![a], Some(Type::Int))
    }

    // ---- objects & arrays -------------------------------------------------

    /// Allocates an instance of `class`.
    pub fn new_object(&mut self, class: ClassId) -> ValueId {
        self.emit(Op::New(class), vec![], Some(Type::Object(class)))
    }

    /// Loads a field; result type comes from the field declaration.
    pub fn get_field(&mut self, field: FieldId, obj: ValueId) -> ValueId {
        let ty = self.program.field(field).ty;
        self.emit(Op::GetField(field), vec![obj], Some(ty))
    }

    /// Stores a field.
    pub fn set_field(&mut self, field: FieldId, obj: ValueId, value: ValueId) {
        self.emit_void(Op::SetField(field), vec![obj, value]);
    }

    /// Allocates an array of `elem` with length `len`.
    pub fn new_array(&mut self, elem: ElemType, len: ValueId) -> ValueId {
        self.emit(Op::NewArray(elem), vec![len], Some(Type::Array(elem)))
    }

    /// Loads an array element.
    ///
    /// # Panics
    ///
    /// Panics if `arr`'s static type is not an array.
    pub fn array_get(&mut self, arr: ValueId, idx: ValueId) -> ValueId {
        let ty = match self.graph.value_type(arr) {
            Type::Array(e) => e.to_type(),
            other => panic!("array_get on non-array value of type {other}"),
        };
        self.emit(Op::ArrayGet, vec![arr, idx], Some(ty))
    }

    /// Stores an array element.
    pub fn array_set(&mut self, arr: ValueId, idx: ValueId, value: ValueId) {
        self.emit_void(Op::ArraySet, vec![arr, idx, value]);
    }

    /// Array length.
    pub fn array_len(&mut self, arr: ValueId) -> ValueId {
        self.emit(Op::ArrayLen, vec![arr], Some(Type::Int))
    }

    // ---- calls ------------------------------------------------------------

    /// Direct call to `target`; returns the result value unless `target` is
    /// `void`.
    pub fn call_static(&mut self, target: MethodId, args: Vec<ValueId>) -> Option<ValueId> {
        let ret = self.program.method(target).ret;
        let site = self.fresh_site();
        self.emit_call(
            CallInfo {
                target: CallTarget::Static(target),
                site,
            },
            args,
            ret,
        )
    }

    /// Virtual call through `selector`; `args[0]` is the receiver. The
    /// return type is taken from any declaration of the selector.
    ///
    /// # Panics
    ///
    /// Panics if no class method with this selector exists yet.
    pub fn call_virtual(&mut self, selector: SelectorId, args: Vec<ValueId>) -> Option<ValueId> {
        let ret = self
            .program
            .method_ids()
            .map(|m| self.program.method(m))
            .find(|m| m.selector == Some(selector))
            .unwrap_or_else(|| {
                panic!(
                    "no method declares selector {}",
                    self.program.selector(selector)
                )
            })
            .ret;
        let site = self.fresh_site();
        self.emit_call(
            CallInfo {
                target: CallTarget::Virtual(selector),
                site,
            },
            args,
            ret,
        )
    }

    // ---- type tests -------------------------------------------------------

    /// Dynamic type test.
    pub fn instance_of(&mut self, class: ClassId, obj: ValueId) -> ValueId {
        self.emit(Op::InstanceOf(class), vec![obj], Some(Type::Bool))
    }

    /// Checked downcast to `class`.
    pub fn cast(&mut self, class: ClassId, obj: ValueId) -> ValueId {
        self.emit(Op::Cast(class), vec![obj], Some(Type::Object(class)))
    }

    /// Prints a value to the program output stream.
    pub fn print(&mut self, value: ValueId) {
        self.emit_void(Op::Print, vec![value]);
    }

    // ---- terminators ------------------------------------------------------

    /// Terminates the current block with a jump.
    pub fn jump(&mut self, dest: BlockId, args: Vec<ValueId>) {
        self.graph
            .set_terminator(self.cur, Terminator::Jump(dest, args));
    }

    /// Terminates the current block with a conditional branch.
    pub fn branch(
        &mut self,
        cond: ValueId,
        then_dest: (BlockId, Vec<ValueId>),
        else_dest: (BlockId, Vec<ValueId>),
    ) {
        self.graph.set_terminator(
            self.cur,
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            },
        );
    }

    /// Terminates the current block with a return.
    pub fn ret(&mut self, value: Option<ValueId>) {
        self.graph
            .set_terminator(self.cur, Terminator::Return(value));
    }

    // ---- internals --------------------------------------------------------

    fn fresh_site(&mut self) -> CallSiteId {
        let site = CallSiteId {
            method: self.method,
            index: self.next_site,
        };
        self.next_site += 1;
        site
    }

    fn emit(&mut self, op: Op, args: Vec<ValueId>, ty: Option<Type>) -> ValueId {
        let (_, v) = self.graph.append(self.cur, op, args, ty);
        v.expect("emit used for value-producing op")
    }

    fn emit_void(&mut self, op: Op, args: Vec<ValueId>) {
        self.graph.append(self.cur, op, args, None);
    }

    fn emit_call(&mut self, info: CallInfo, args: Vec<ValueId>, ret: RetType) -> Option<ValueId> {
        let (_, v) = self
            .graph
            .append(self.cur, Op::Call(info), args, ret.value());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_loop_with_params() {
        // sum(n) = 0 + 1 + ... + (n-1), via a loop with block params.
        let mut p = Program::new();
        let m = p.declare_function("sum", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]); // (i, acc)
        let body = fb.add_block();
        let done = fb.add_block_with_params(&[Type::Int]);
        fb.jump(head, vec![zero, zero]);
        fb.switch_to(head);
        let cond = fb.cmp(CmpOp::ILt, hp[0], n);
        fb.branch(cond, (body, vec![]), (done.0, vec![hp[1]]));
        fb.switch_to(body);
        let one = fb.const_int(1);
        let i2 = fb.iadd(hp[0], one);
        let acc2 = fb.iadd(hp[1], hp[0]);
        fb.jump(head, vec![i2, acc2]);
        fb.switch_to(done.0);
        fb.ret(Some(done.1[0]));
        let g = fb.finish();
        assert_eq!(g.reachable_blocks().len(), 4);
        p.define_method(m, g);
        assert_eq!(p.method(m).graph.size(), 13);
    }

    #[test]
    fn callsites_get_distinct_ids() {
        let mut p = Program::new();
        let callee = p.declare_function("f", vec![], RetType::Void);
        let caller = p.declare_function("g", vec![], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, caller);
        fb.call_static(callee, vec![]);
        fb.call_static(callee, vec![]);
        fb.ret(None);
        let g = fb.finish();
        let sites: Vec<_> = g
            .callsites()
            .iter()
            .map(|&(_, i)| g.inst(i).op.call_site().unwrap())
            .collect();
        assert_eq!(sites.len(), 2);
        assert_ne!(sites[0], sites[1]);
        assert!(sites.iter().all(|s| s.method == caller));
    }

    #[test]
    fn field_access_uses_declared_type() {
        let mut p = Program::new();
        let c = p.add_class("Box", None);
        let f = p.add_field(c, "v", Type::Float);
        let m = p.declare_function("probe", vec![Type::Object(c)], Type::Float);
        let mut fb = FunctionBuilder::new(&p, m);
        let obj = fb.param(0);
        let v = fb.get_field(f, obj);
        fb.ret(Some(v));
        let g = fb.finish();
        assert_eq!(g.value_type(v), Type::Float);
    }

    #[test]
    #[should_panic(expected = "non-array")]
    fn array_get_on_scalar_panics() {
        let mut p = Program::new();
        let m = p.declare_function("bad", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let _ = fb.array_get(x, x);
    }
}
