//! The program model: classes, fields, methods, and virtual dispatch.
//!
//! A [`Program`] owns a single-inheritance class hierarchy and a set of
//! methods. Methods are either *static functions* (no holder class) or
//! *class methods* that participate in virtual dispatch through interned
//! [`SelectorId`]s (method name + arity). Class-hierarchy analysis (CHA)
//! queries used by devirtualization live here as well.

use std::collections::HashMap;
use std::fmt;

use crate::graph::Graph;
use crate::ids::{ClassId, FieldId, MethodId, SelectorId};
use crate::types::{RetType, Type};

/// A class in the hierarchy.
#[derive(Clone, Debug)]
pub struct Class {
    /// Human-readable class name (unique within the program).
    pub name: String,
    /// Superclass, if any.
    pub parent: Option<ClassId>,
    /// Fields declared by this class itself (not inherited).
    pub declared_fields: Vec<FieldId>,
    /// Methods declared by this class, keyed by selector (overrides included).
    pub declared_methods: HashMap<SelectorId, MethodId>,
    /// Direct subclasses.
    pub subclasses: Vec<ClassId>,
    /// Number of fields in an instance (inherited + declared).
    pub instance_len: usize,
}

/// A field of a class.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name.
    pub name: String,
    /// Declaring class.
    pub holder: ClassId,
    /// Value type of the field.
    pub ty: Type,
    /// Slot offset within an instance (inherited fields first).
    pub offset: usize,
}

/// Interned virtual-dispatch selector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Selector {
    /// Method name.
    pub name: String,
    /// Number of parameters, including the receiver.
    pub arity: usize,
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// How a method body may be used by the compiler.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MethodKind {
    /// Ordinary method: may be interpreted, compiled and inlined.
    Normal,
    /// Opaque method (paper's `G` nodes): has an executable body but the
    /// compiler must treat it as a call boundary and never inline it.
    Opaque,
}

/// A method: a typed signature plus an IR [`Graph`] body.
#[derive(Clone, Debug)]
pub struct Method {
    /// Method name. For class methods this is the selector name.
    pub name: String,
    /// Holder class for class methods; `None` for static functions.
    pub holder: Option<ClassId>,
    /// Dispatch selector for class methods.
    pub selector: Option<SelectorId>,
    /// Parameter types. For class methods, `params[0]` is the receiver.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: RetType,
    /// The body. Empty until [`Program::define_method`] is called.
    pub graph: Graph,
    /// Inlineability class of the method.
    pub kind: MethodKind,
}

impl Method {
    /// Whether the compiler may inline this method.
    pub fn can_inline(&self) -> bool {
        self.kind == MethodKind::Normal
    }
}

/// A whole program: class hierarchy plus methods.
#[derive(Clone, Debug, Default)]
pub struct Program {
    classes: Vec<Class>,
    fields: Vec<Field>,
    methods: Vec<Method>,
    selectors: Vec<Selector>,
    selector_lookup: HashMap<Selector, SelectorId>,
    class_lookup: HashMap<String, ClassId>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    // ---- classes ----------------------------------------------------------

    /// Adds a class with an optional superclass and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the class name is already taken.
    pub fn add_class(&mut self, name: impl Into<String>, parent: Option<ClassId>) -> ClassId {
        let name = name.into();
        assert!(
            !self.class_lookup.contains_key(&name),
            "duplicate class name `{name}`"
        );
        let id = ClassId::new(self.classes.len());
        let instance_len = parent.map_or(0, |p| self.classes[p.index()].instance_len);
        self.classes.push(Class {
            name: name.clone(),
            parent,
            declared_fields: Vec::new(),
            declared_methods: HashMap::new(),
            subclasses: Vec::new(),
            instance_len,
        });
        if let Some(p) = parent {
            self.classes[p.index()].subclasses.push(id);
        }
        self.class_lookup.insert(name, id);
        id
    }

    /// Adds a field to `class` and returns its id.
    ///
    /// Fields must be declared before any subclass of `class` is created so
    /// that slot offsets of subclasses remain valid.
    ///
    /// # Panics
    ///
    /// Panics if `class` already has subclasses.
    pub fn add_field(&mut self, class: ClassId, name: impl Into<String>, ty: Type) -> FieldId {
        assert!(
            self.classes[class.index()].subclasses.is_empty(),
            "cannot add field to class with existing subclasses"
        );
        let id = FieldId::new(self.fields.len());
        let offset = self.classes[class.index()].instance_len;
        self.fields.push(Field {
            name: name.into(),
            holder: class,
            ty,
            offset,
        });
        let c = &mut self.classes[class.index()];
        c.declared_fields.push(id);
        c.instance_len += 1;
        id
    }

    /// Looks up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_lookup.get(name).copied()
    }

    /// Returns the class data for `id`.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.index()]
    }

    /// Returns the field data for `id`.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.index()]
    }

    /// Finds a field by name, searching `class` and its ancestors.
    pub fn field_by_name(&self, class: ClassId, name: &str) -> Option<FieldId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let data = self.class(c);
            for &f in &data.declared_fields {
                if self.fields[f.index()].name == name {
                    return Some(f);
                }
            }
            cur = data.parent;
        }
        None
    }

    /// Number of classes in the program.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }

    /// Iterates over all class ids.
    pub fn class_ids(&self) -> impl Iterator<Item = ClassId> + '_ {
        (0..self.classes.len()).map(ClassId::new)
    }

    /// Whether `sub` equals `sup` or transitively inherits from it.
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes[c.index()].parent;
        }
        false
    }

    /// Whether a value of type `from` can flow into a slot of type `to`
    /// without a cast (reflexive; covariant only via class subtyping).
    pub fn is_assignable(&self, from: Type, to: Type) -> bool {
        match (from, to) {
            (Type::Object(a), Type::Object(b)) => self.is_subclass(a, b),
            (a, b) => a == b,
        }
    }

    /// All transitive subclasses of `class`, excluding `class` itself.
    pub fn transitive_subclasses(&self, class: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = self.classes[class.index()].subclasses.clone();
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend_from_slice(&self.classes[c.index()].subclasses);
        }
        out
    }

    // ---- selectors --------------------------------------------------------

    /// Interns a selector (name + arity including receiver).
    pub fn intern_selector(&mut self, name: impl Into<String>, arity: usize) -> SelectorId {
        let sel = Selector {
            name: name.into(),
            arity,
        };
        if let Some(&id) = self.selector_lookup.get(&sel) {
            return id;
        }
        let id = SelectorId::new(self.selectors.len());
        self.selectors.push(sel.clone());
        self.selector_lookup.insert(sel, id);
        id
    }

    /// Returns the selector data for `id`.
    pub fn selector(&self, id: SelectorId) -> &Selector {
        &self.selectors[id.index()]
    }

    /// Looks up an existing selector without interning.
    pub fn selector_by_name(&self, name: &str, arity: usize) -> Option<SelectorId> {
        self.selector_lookup
            .get(&Selector {
                name: name.to_string(),
                arity,
            })
            .copied()
    }

    // ---- methods ----------------------------------------------------------

    /// Declares a static function with an empty body; the body is attached
    /// later with [`Program::define_method`]. Two-phase creation lets bodies
    /// reference the `MethodId` of mutually recursive methods.
    pub fn declare_function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret: impl Into<RetType>,
    ) -> MethodId {
        let id = MethodId::new(self.methods.len());
        self.methods.push(Method {
            name: name.into(),
            holder: None,
            selector: None,
            params,
            ret: ret.into(),
            graph: Graph::empty(),
            kind: MethodKind::Normal,
        });
        id
    }

    /// Declares a class method participating in virtual dispatch.
    ///
    /// The receiver parameter (`params[0] = Object(holder)`) is added
    /// implicitly; `params` lists only the non-receiver parameters.
    ///
    /// # Panics
    ///
    /// Panics if the class already declares a method with this selector.
    pub fn declare_method(
        &mut self,
        holder: ClassId,
        name: impl Into<String>,
        params: Vec<Type>,
        ret: impl Into<RetType>,
    ) -> MethodId {
        let name = name.into();
        let mut full_params = Vec::with_capacity(params.len() + 1);
        full_params.push(Type::Object(holder));
        full_params.extend(params);
        let sel = self.intern_selector(name.clone(), full_params.len());
        let id = MethodId::new(self.methods.len());
        self.methods.push(Method {
            name,
            holder: Some(holder),
            selector: Some(sel),
            params: full_params,
            ret: ret.into(),
            graph: Graph::empty(),
            kind: MethodKind::Normal,
        });
        let prev = self.classes[holder.index()]
            .declared_methods
            .insert(sel, id);
        assert!(
            prev.is_none(),
            "class redeclares selector {}",
            self.selectors[sel.index()]
        );
        id
    }

    /// Attaches the body graph to a previously declared method.
    pub fn define_method(&mut self, id: MethodId, graph: Graph) {
        self.methods[id.index()].graph = graph;
    }

    /// Marks a method as opaque (never inlined; the paper's `G` nodes).
    pub fn set_opaque(&mut self, id: MethodId) {
        self.methods[id.index()].kind = MethodKind::Opaque;
    }

    /// Returns the method data for `id`.
    pub fn method(&self, id: MethodId) -> &Method {
        &self.methods[id.index()]
    }

    /// Mutable access to a method (used by compilation to reattach graphs).
    pub fn method_mut(&mut self, id: MethodId) -> &mut Method {
        &mut self.methods[id.index()]
    }

    /// Number of methods in the program.
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }

    /// Iterates over all method ids.
    pub fn method_ids(&self) -> impl Iterator<Item = MethodId> + '_ {
        (0..self.methods.len()).map(MethodId::new)
    }

    /// Finds a static function by name.
    pub fn function_by_name(&self, name: &str) -> Option<MethodId> {
        self.methods
            .iter()
            .position(|m| m.holder.is_none() && m.name == name)
            .map(MethodId::new)
    }

    // ---- dispatch ---------------------------------------------------------

    /// Resolves virtual dispatch of `selector` on a receiver of dynamic
    /// class `class`, walking up the hierarchy.
    pub fn resolve(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(&m) = self.classes[c.index()].declared_methods.get(&selector) {
                return Some(m);
            }
            cur = self.classes[c.index()].parent;
        }
        None
    }

    /// Class-hierarchy analysis: if every possible receiver whose static
    /// type is `class` dispatches `selector` to the same method, returns it.
    ///
    /// This holds when the method resolved at `class` is not overridden by
    /// any transitive subclass of `class`.
    pub fn resolve_unique(&self, class: ClassId, selector: SelectorId) -> Option<MethodId> {
        let target = self.resolve(class, selector)?;
        for sub in self.transitive_subclasses(class) {
            if let Some(&m) = self.classes[sub.index()].declared_methods.get(&selector) {
                if m != target {
                    return None;
                }
            }
        }
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> (Program, ClassId, ClassId, ClassId) {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let c = p.add_class("C", Some(b));
        (p, a, b, c)
    }

    #[test]
    fn subclass_chain() {
        let (p, a, b, c) = hierarchy();
        assert!(p.is_subclass(c, a));
        assert!(p.is_subclass(b, a));
        assert!(p.is_subclass(a, a));
        assert!(!p.is_subclass(a, b));
    }

    #[test]
    fn field_offsets_follow_inheritance() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let fx = p.add_field(a, "x", Type::Int);
        let b = p.add_class("B", Some(a));
        let fy = p.add_field(b, "y", Type::Float);
        assert_eq!(p.field(fx).offset, 0);
        assert_eq!(p.field(fy).offset, 1);
        assert_eq!(p.class(b).instance_len, 2);
        assert_eq!(p.field_by_name(b, "x"), Some(fx));
        assert_eq!(p.field_by_name(b, "y"), Some(fy));
        assert_eq!(p.field_by_name(a, "y"), None);
    }

    #[test]
    #[should_panic(expected = "existing subclasses")]
    fn field_after_subclass_panics() {
        let (mut p, a, _, _) = hierarchy();
        p.add_field(a, "late", Type::Int);
    }

    #[test]
    fn dispatch_resolution_and_cha() {
        let (mut p, a, b, c) = hierarchy();
        let ma = p.declare_method(a, "run", vec![], Type::Int);
        let mb = p.declare_method(b, "run", vec![], Type::Int);
        let sel = p.selector_by_name("run", 1).unwrap();
        assert_eq!(p.resolve(a, sel), Some(ma));
        assert_eq!(p.resolve(b, sel), Some(mb));
        assert_eq!(p.resolve(c, sel), Some(mb));
        // `a`'s dispatch is polymorphic (B overrides), so CHA fails at A…
        assert_eq!(p.resolve_unique(a, sel), None);
        // …but succeeds at B (C does not override).
        assert_eq!(p.resolve_unique(b, sel), Some(mb));
        assert_eq!(p.resolve_unique(c, sel), Some(mb));
    }

    #[test]
    fn assignability() {
        let (p, a, b, _) = hierarchy();
        assert!(p.is_assignable(Type::Object(b), Type::Object(a)));
        assert!(!p.is_assignable(Type::Object(a), Type::Object(b)));
        assert!(p.is_assignable(Type::Int, Type::Int));
        assert!(!p.is_assignable(Type::Int, Type::Float));
    }

    #[test]
    fn selectors_intern_once() {
        let mut p = Program::new();
        let s1 = p.intern_selector("foo", 2);
        let s2 = p.intern_selector("foo", 2);
        let s3 = p.intern_selector("foo", 3);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(p.selector(s1).to_string(), "foo/2");
    }

    #[test]
    fn opaque_methods_cannot_inline() {
        let mut p = Program::new();
        let f = p.declare_function("native_thing", vec![], RetType::Void);
        assert!(p.method(f).can_inline());
        p.set_opaque(f);
        assert!(!p.method(f).can_inline());
    }
}
