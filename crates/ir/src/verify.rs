//! Graph verifier: structural, type and dominance checking.
//!
//! The verifier is the safety net for every transformation in the system —
//! each optimization pass and each inlining step is property-tested to
//! preserve verifiability. Checks performed:
//!
//! * every reachable block is terminated,
//! * branch/jump arguments match target block parameters (count + types),
//! * instruction operands exist and are well-typed for the operation,
//! * call arguments match the callee signature,
//! * every value definition dominates each of its uses,
//! * returned values match the method's return type,
//! * entry-block parameters agree with the declared signature (parameter
//!   types may be *narrowed*, which deep inlining trials rely on).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::dom::DomTree;
use crate::graph::{CallTarget, Graph, InstData, Op, Terminator};
use crate::ids::{BlockId, InstId, ValueId};
use crate::program::{Method, Program};
use crate::types::{RetType, Type};

/// A verification failure.
#[derive(Clone, Debug, PartialEq)]
pub struct VerifyError {
    /// Block where the problem was found, if block-local.
    pub block: Option<BlockId>,
    /// Instruction where the problem was found, if instruction-local.
    pub inst: Option<InstId>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify failed")?;
        if let Some(b) = self.block {
            write!(f, " in {b}")?;
        }
        if let Some(i) = self.inst {
            write!(f, " at {i}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl Error for VerifyError {}

fn err<T>(
    block: Option<BlockId>,
    inst: Option<InstId>,
    message: impl Into<String>,
) -> Result<T, VerifyError> {
    Err(VerifyError {
        block,
        inst,
        message: message.into(),
    })
}

/// Verifies the body of a defined method.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify(program: &Program, method: &Method) -> Result<(), VerifyError> {
    verify_graph(program, &method.graph, &method.params, method.ret)
}

/// Verifies a standalone graph against an expected signature.
///
/// Entry parameters may have types *narrower* than `declared_params`
/// (callsite specialization), but never wider.
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify_graph(
    program: &Program,
    graph: &Graph,
    declared_params: &[Type],
    ret: RetType,
) -> Result<(), VerifyError> {
    let entry = graph.entry();
    let entry_params = &graph.block(entry).params;
    if entry_params.len() != declared_params.len() {
        return err(
            Some(entry),
            None,
            format!(
                "entry has {} params, signature declares {}",
                entry_params.len(),
                declared_params.len()
            ),
        );
    }
    for (i, (&v, &ty)) in entry_params.iter().zip(declared_params).enumerate() {
        let actual = graph.value_type(v);
        if !program.is_assignable(actual, ty) {
            return err(
                Some(entry),
                None,
                format!("entry param {i} has type {actual}, not assignable to declared {ty}"),
            );
        }
    }

    let dom = DomTree::compute(graph);
    let reachable = dom.rpo().to_vec();

    // Map each inst to its (block, position); detect duplicates.
    let mut placement: HashMap<InstId, (BlockId, usize)> = HashMap::new();
    for &b in &reachable {
        for (pos, &i) in graph.block(b).insts.iter().enumerate() {
            if placement.insert(i, (b, pos)).is_some() {
                return err(
                    Some(b),
                    Some(i),
                    "instruction appears in more than one place",
                );
            }
        }
    }

    let value_def_ok = |v: ValueId| v.index() < graph.value_count();

    // Dominance of defs over uses.
    let use_ok = |v: ValueId, ub: BlockId, upos: Option<usize>| -> Result<(), VerifyError> {
        if !value_def_ok(v) {
            return err(Some(ub), None, format!("use of undefined value {v}"));
        }
        match graph.value(v).def {
            crate::graph::ValueDef::Param(pb, _) => {
                if !dom.dominates(pb, ub) {
                    return err(
                        Some(ub),
                        None,
                        format!("param {v} of {pb} does not dominate use in {ub}"),
                    );
                }
            }
            crate::graph::ValueDef::Inst(di) => {
                let Some(&(db, dpos)) = placement.get(&di) else {
                    return err(
                        Some(ub),
                        None,
                        format!("value {v} defined by detached instruction {di}"),
                    );
                };
                let ok = if db == ub {
                    match upos {
                        Some(p) => dpos < p,
                        None => true, // terminator: any position in same block
                    }
                } else {
                    dom.dominates(db, ub)
                };
                if !ok {
                    return err(
                        Some(ub),
                        Some(di),
                        format!("definition of {v} does not dominate its use"),
                    );
                }
            }
        }
        Ok(())
    };

    for &b in &reachable {
        let bd = graph.block(b);
        for (pos, &i) in bd.insts.iter().enumerate() {
            let inst = graph.inst(i);
            for &a in &inst.args {
                use_ok(a, b, Some(pos))?;
            }
            check_inst_types(program, graph, b, i, inst)?;
        }
        match &bd.term {
            Terminator::Unterminated => {
                return err(Some(b), None, "reachable block is unterminated")
            }
            // An uncommon trap abandons the activation; it has no successors,
            // uses no values and is valid under any return type.
            Terminator::Deopt { .. } => {}
            Terminator::Return(v) => {
                if let Some(v) = v {
                    use_ok(*v, b, None)?;
                }
                match (ret, v) {
                    (RetType::Void, Some(v)) => {
                        return err(Some(b), None, format!("void method returns value {v}"))
                    }
                    (RetType::Value(_), None) => {
                        return err(Some(b), None, "non-void method returns nothing")
                    }
                    (RetType::Value(t), Some(v)) => {
                        let vt = graph.value_type(*v);
                        if !program.is_assignable(vt, t) {
                            return err(Some(b), None, format!("returns {vt}, expected {t}"));
                        }
                    }
                    (RetType::Void, None) => {}
                }
            }
            term @ (Terminator::Jump(..) | Terminator::Branch { .. }) => {
                for v in term.uses() {
                    use_ok(v, b, None)?;
                }
                if let Terminator::Branch { cond, .. } = term {
                    if graph.value_type(*cond) != Type::Bool {
                        return err(Some(b), None, "branch condition is not bool");
                    }
                }
                let edges: Vec<(BlockId, &Vec<ValueId>)> = match term {
                    Terminator::Jump(d, args) => vec![(*d, args)],
                    Terminator::Branch {
                        then_dest,
                        else_dest,
                        ..
                    } => {
                        vec![(then_dest.0, &then_dest.1), (else_dest.0, &else_dest.1)]
                    }
                    _ => unreachable!(),
                };
                for (dest, args) in edges {
                    let dparams = &graph.block(dest).params;
                    if dparams.len() != args.len() {
                        return err(
                            Some(b),
                            None,
                            format!(
                                "edge to {dest} passes {} args, block has {} params",
                                args.len(),
                                dparams.len()
                            ),
                        );
                    }
                    for (&arg, &p) in args.iter().zip(dparams) {
                        let at = graph.value_type(arg);
                        let pt = graph.value_type(p);
                        if !program.is_assignable(at, pt) {
                            return err(
                                Some(b),
                                None,
                                format!("edge arg {arg}:{at} not assignable to param {p}:{pt}"),
                            );
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

fn check_inst_types(
    program: &Program,
    graph: &Graph,
    b: BlockId,
    i: InstId,
    inst: &InstData,
) -> Result<(), VerifyError> {
    let argc = inst.args.len();
    let at = |k: usize| graph.value_type(inst.args[k]);
    let want_argc = |n: usize| -> Result<(), VerifyError> {
        if argc != n {
            return err(
                Some(b),
                Some(i),
                format!("expected {n} operands, got {argc}"),
            );
        }
        Ok(())
    };
    let result_is = |t: Type| -> Result<(), VerifyError> {
        match inst.result {
            Some(r) if graph.value_type(r) == t => Ok(()),
            Some(r) => err(
                Some(b),
                Some(i),
                format!("result type {} != expected {t}", graph.value_type(r)),
            ),
            None => err(Some(b), Some(i), format!("missing result of type {t}")),
        }
    };
    let no_result = || -> Result<(), VerifyError> {
        if inst.result.is_some() {
            return err(Some(b), Some(i), "op should not produce a result");
        }
        Ok(())
    };
    let want_ref = |t: Type, what: &str| -> Result<(), VerifyError> {
        if !t.is_reference() {
            return err(
                Some(b),
                Some(i),
                format!("{what} must be a reference, got {t}"),
            );
        }
        Ok(())
    };

    match &inst.op {
        Op::Nop => return err(Some(b), Some(i), "nop must not appear in a block"),
        Op::ConstInt(_) => {
            want_argc(0)?;
            result_is(Type::Int)?;
        }
        Op::ConstFloat(_) => {
            want_argc(0)?;
            result_is(Type::Float)?;
        }
        Op::ConstBool(_) => {
            want_argc(0)?;
            result_is(Type::Bool)?;
        }
        Op::ConstNull(t) => {
            want_argc(0)?;
            want_ref(*t, "null type")?;
            result_is(*t)?;
        }
        Op::Bin(op) => {
            want_argc(2)?;
            let expect = if op.is_float() {
                Type::Float
            } else {
                Type::Int
            };
            if at(0) != expect || at(1) != expect {
                return err(
                    Some(b),
                    Some(i),
                    format!("{} expects {expect} operands", op.mnemonic()),
                );
            }
            result_is(op.result_type())?;
        }
        Op::Cmp(op) => {
            want_argc(2)?;
            match op.operand_kind() {
                Some(t) => {
                    if at(0) != t || at(1) != t {
                        return err(
                            Some(b),
                            Some(i),
                            format!("{} expects {t} operands", op.mnemonic()),
                        );
                    }
                }
                None => {
                    want_ref(at(0), "refeq lhs")?;
                    want_ref(at(1), "refeq rhs")?;
                }
            }
            result_is(Type::Bool)?;
        }
        Op::Not => {
            want_argc(1)?;
            if at(0) != Type::Bool {
                return err(Some(b), Some(i), "not expects bool");
            }
            result_is(Type::Bool)?;
        }
        Op::INeg => {
            want_argc(1)?;
            if at(0) != Type::Int {
                return err(Some(b), Some(i), "ineg expects int");
            }
            result_is(Type::Int)?;
        }
        Op::FNeg => {
            want_argc(1)?;
            if at(0) != Type::Float {
                return err(Some(b), Some(i), "fneg expects float");
            }
            result_is(Type::Float)?;
        }
        Op::IntToFloat => {
            want_argc(1)?;
            if at(0) != Type::Int {
                return err(Some(b), Some(i), "i2f expects int");
            }
            result_is(Type::Float)?;
        }
        Op::FloatToInt => {
            want_argc(1)?;
            if at(0) != Type::Float {
                return err(Some(b), Some(i), "f2i expects float");
            }
            result_is(Type::Int)?;
        }
        Op::New(c) => {
            want_argc(0)?;
            result_is(Type::Object(*c))?;
        }
        Op::GetField(f) => {
            want_argc(1)?;
            let fd = program.field(*f);
            if !program.is_assignable(at(0), Type::Object(fd.holder)) {
                return err(
                    Some(b),
                    Some(i),
                    format!("getfield receiver {} not an instance of holder", at(0)),
                );
            }
            result_is(fd.ty)?;
        }
        Op::SetField(f) => {
            want_argc(2)?;
            let fd = program.field(*f);
            if !program.is_assignable(at(0), Type::Object(fd.holder)) {
                return err(
                    Some(b),
                    Some(i),
                    "setfield receiver not an instance of holder",
                );
            }
            if !program.is_assignable(at(1), fd.ty) {
                return err(
                    Some(b),
                    Some(i),
                    format!("setfield value {} not assignable to field {}", at(1), fd.ty),
                );
            }
            no_result()?;
        }
        Op::NewArray(e) => {
            want_argc(1)?;
            if at(0) != Type::Int {
                return err(Some(b), Some(i), "newarray length must be int");
            }
            result_is(Type::Array(*e))?;
        }
        Op::ArrayGet => {
            want_argc(2)?;
            let Type::Array(e) = at(0) else {
                return err(Some(b), Some(i), "arrayget on non-array");
            };
            if at(1) != Type::Int {
                return err(Some(b), Some(i), "array index must be int");
            }
            result_is(e.to_type())?;
        }
        Op::ArraySet => {
            want_argc(3)?;
            let Type::Array(e) = at(0) else {
                return err(Some(b), Some(i), "arrayset on non-array");
            };
            if at(1) != Type::Int {
                return err(Some(b), Some(i), "array index must be int");
            }
            if !program.is_assignable(at(2), e.to_type()) {
                return err(
                    Some(b),
                    Some(i),
                    "arrayset value not assignable to element type",
                );
            }
            no_result()?;
        }
        Op::ArrayLen => {
            want_argc(1)?;
            if !matches!(at(0), Type::Array(_)) {
                return err(Some(b), Some(i), "arraylen on non-array");
            }
            result_is(Type::Int)?;
        }
        Op::Call(info) => match info.target {
            CallTarget::Static(m) => {
                let callee = program.method(m);
                if callee.params.len() != argc {
                    return err(
                        Some(b),
                        Some(i),
                        format!(
                            "call to {} passes {argc} args, expects {}",
                            callee.name,
                            callee.params.len()
                        ),
                    );
                }
                for (k, &pt) in callee.params.iter().enumerate() {
                    if !program.is_assignable(at(k), pt) {
                        return err(
                            Some(b),
                            Some(i),
                            format!("call arg {k}: {} not assignable to {pt}", at(k)),
                        );
                    }
                }
                match callee.ret {
                    RetType::Void => no_result()?,
                    RetType::Value(t) => result_is(t)?,
                }
            }
            CallTarget::Virtual(sel) => {
                let sd = program.selector(sel);
                if sd.arity != argc {
                    return err(
                        Some(b),
                        Some(i),
                        format!("virtual call arity {argc} != selector {sd}"),
                    );
                }
                let Type::Object(recv_class) = at(0) else {
                    return err(Some(b), Some(i), "virtual call receiver must be an object");
                };
                // The receiver's static class (or an ancestor) should
                // declare the selector; tolerate unresolvable receivers only
                // if some class in the program declares the selector.
                let decl = program.resolve(recv_class, sel).or_else(|| {
                    program
                        .method_ids()
                        .find(|&m| program.method(m).selector == Some(sel))
                });
                let Some(decl) = decl else {
                    return err(Some(b), Some(i), format!("no declaration of selector {sd}"));
                };
                match program.method(decl).ret {
                    RetType::Void => no_result()?,
                    RetType::Value(t) => result_is(t)?,
                }
            }
        },
        Op::InstanceOf(_) => {
            want_argc(1)?;
            want_ref(at(0), "instanceof operand")?;
            result_is(Type::Bool)?;
        }
        Op::Cast(c) => {
            want_argc(1)?;
            want_ref(at(0), "cast operand")?;
            result_is(Type::Object(*c))?;
        }
        Op::Print => {
            want_argc(1)?;
            no_result()?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::graph::{BinOp, CmpOp};

    fn check(p: &Program, m: crate::ids::MethodId) -> Result<(), VerifyError> {
        verify(p, p.method(m))
    }

    #[test]
    fn accepts_well_formed_method() {
        let mut p = Program::new();
        let m = p.declare_function("abs", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let neg = fb.cmp(CmpOp::ILt, x, zero);
        let (tb, _) = fb.add_block_with_params(&[]);
        let (eb, _) = fb.add_block_with_params(&[]);
        fb.branch(neg, (tb, vec![]), (eb, vec![]));
        fb.switch_to(tb);
        let nx = fb.ineg(x);
        fb.ret(Some(nx));
        fb.switch_to(eb);
        fb.ret(Some(x));
        p.define_method(m, fb.finish());
        assert_eq!(check(&p, m), Ok(()));
    }

    #[test]
    fn rejects_unterminated_block() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![], RetType::Void);
        p.define_method(m, Graph::empty());
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("unterminated"), "{e}");
    }

    #[test]
    fn rejects_type_mismatch_in_binop() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Float], Type::Int);
        let fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        // Force an ill-typed iadd via the raw graph API.
        let mut g = fb.finish();
        let e = g.entry();
        let (_, r) = g.append(e, Op::Bin(BinOp::IAdd), vec![x, x], Some(Type::Int));
        g.set_terminator(e, Terminator::Return(r));
        p.define_method(m, g);
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("iadd expects int"), "{e}");
    }

    #[test]
    fn rejects_use_before_def() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![], Type::Int);
        let mut g = Graph::empty();
        let e = g.entry();
        // Create the add first, then the constant it uses — same block, so
        // the def of the constant does not dominate (precede) its use.
        let add = g.create_inst(Op::Bin(BinOp::IAdd), vec![], Some(Type::Int));
        let k = g
            .append(e, Op::ConstInt(1), vec![], Some(Type::Int))
            .1
            .unwrap();
        // Manually attach operands and order: add before const.
        g.inst_mut(add).args = vec![k, k];
        let kinst = g.block(e).insts[0];
        g.block_mut(e).insts = vec![add, kinst];
        let r = g.inst(add).result;
        g.set_terminator(e, Terminator::Return(r));
        p.define_method(m, g);
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("does not dominate"), "{e}");
    }

    #[test]
    fn rejects_bad_edge_arity() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![], RetType::Void);
        let mut g = Graph::empty();
        let e = g.entry();
        let t = g.add_block();
        g.add_block_param(t, Type::Int);
        g.set_terminator(e, Terminator::Jump(t, vec![]));
        g.set_terminator(t, Terminator::Return(None));
        p.define_method(m, g);
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("passes 0 args"), "{e}");
    }

    #[test]
    fn rejects_wrong_return_type() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Float], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        fb.ret(Some(x));
        p.define_method(m, fb.finish());
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("returns float"), "{e}");
    }

    #[test]
    fn rejects_void_returning_value() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        fb.ret(Some(x));
        p.define_method(m, fb.finish());
        let e = check(&p, m).unwrap_err();
        assert!(e.message.contains("void method returns"), "{e}");
    }

    #[test]
    fn accepts_narrowed_entry_params() {
        let mut p = Program::new();
        let sup = p.add_class("Sup", None);
        let sub = p.add_class("Sub", Some(sup));
        let m = p.declare_function("id", vec![Type::Object(sup)], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        fb.ret(None);
        let mut g = fb.finish();
        // Narrow the param to Sub, as callsite specialization would.
        let pv = g.block(g.entry()).params[0];
        g.set_value_type(pv, Type::Object(sub));
        assert!(verify_graph(&p, &g, &[Type::Object(sup)], RetType::Void).is_ok());
        // Widening (param wider than declared) is rejected.
        let m2 = p.declare_function("id2", vec![Type::Object(sub)], RetType::Void);
        let mut fb2 = FunctionBuilder::new(&p, m2);
        fb2.ret(None);
        let mut g2 = fb2.finish();
        let pv2 = g2.block(g2.entry()).params[0];
        g2.set_value_type(pv2, Type::Object(sup));
        assert!(verify_graph(&p, &g2, &[Type::Object(sub)], RetType::Void).is_err());
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut p = Program::new();
        let callee = p.declare_function("callee", vec![Type::Int], RetType::Void);
        let caller = p.declare_function("caller", vec![], RetType::Void);
        let fb = FunctionBuilder::new(&p, caller);
        // Bypass builder typing by hand-crafting the call with no args.
        let mut g = fb.finish();
        let site = crate::ids::CallSiteId {
            method: caller,
            index: 0,
        };
        let e = g.entry();
        g.append(
            e,
            Op::Call(crate::graph::CallInfo {
                target: CallTarget::Static(callee),
                site,
            }),
            vec![],
            None,
        );
        g.set_terminator(e, Terminator::Return(None));
        p.define_method(caller, g);
        let e = check(&p, caller).unwrap_err();
        assert!(e.message.contains("passes 0 args"), "{e}");
    }
}
