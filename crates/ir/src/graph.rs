//! The IR graph: basic blocks with block parameters (SSA without phis).
//!
//! Every value is either a block parameter or the single result of an
//! instruction. Control-flow edges pass arguments to the target block's
//! parameters, which plays the role of phi nodes (as in Cranelift or MLIR).
//!
//! Graphs are plain data and `Clone`; the inliner clones callee graphs into
//! call-tree nodes, specializes them and finally transplants them into the
//! root method (see [`crate::inline`]).

use std::collections::HashMap;

use crate::ids::{BlockId, CallSiteId, ClassId, FieldId, InstId, MethodId, SelectorId, ValueId};
use crate::types::{ElemType, Type};

/// Integer and float binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Integer addition (wrapping).
    IAdd,
    /// Integer subtraction (wrapping).
    ISub,
    /// Integer multiplication (wrapping).
    IMul,
    /// Integer division; traps on division by zero.
    IDiv,
    /// Integer remainder; traps on division by zero.
    IRem,
    /// Bitwise and.
    IAnd,
    /// Bitwise or.
    IOr,
    /// Bitwise xor.
    IXor,
    /// Shift left (modulo 64).
    IShl,
    /// Arithmetic shift right (modulo 64).
    IShr,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl BinOp {
    /// Whether the operator works on floats (otherwise ints).
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Whether the operator can trap at runtime.
    pub fn can_trap(self) -> bool {
        matches!(self, BinOp::IDiv | BinOp::IRem)
    }

    /// Whether `a op b == b op a`.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            BinOp::IAdd
                | BinOp::IMul
                | BinOp::IAnd
                | BinOp::IOr
                | BinOp::IXor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Result type of the operator.
    pub fn result_type(self) -> Type {
        if self.is_float() {
            Type::Float
        } else {
            Type::Int
        }
    }

    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::IAdd => "iadd",
            BinOp::ISub => "isub",
            BinOp::IMul => "imul",
            BinOp::IDiv => "idiv",
            BinOp::IRem => "irem",
            BinOp::IAnd => "iand",
            BinOp::IOr => "ior",
            BinOp::IXor => "ixor",
            BinOp::IShl => "ishl",
            BinOp::IShr => "ishr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }
}

/// Comparison operators producing a `bool`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Integer equality.
    IEq,
    /// Integer inequality.
    INe,
    /// Integer less-than.
    ILt,
    /// Integer less-or-equal.
    ILe,
    /// Integer greater-than.
    IGt,
    /// Integer greater-or-equal.
    IGe,
    /// Float equality.
    FEq,
    /// Float less-than.
    FLt,
    /// Float less-or-equal.
    FLe,
    /// Reference identity (objects, arrays, null).
    RefEq,
}

impl CmpOp {
    /// Mnemonic used by the printer/parser.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::IEq => "ieq",
            CmpOp::INe => "ine",
            CmpOp::ILt => "ilt",
            CmpOp::ILe => "ile",
            CmpOp::IGt => "igt",
            CmpOp::IGe => "ige",
            CmpOp::FEq => "feq",
            CmpOp::FLt => "flt",
            CmpOp::FLe => "fle",
            CmpOp::RefEq => "refeq",
        }
    }

    /// Operand type expected on both sides.
    pub fn operand_kind(self) -> Option<Type> {
        match self {
            CmpOp::IEq | CmpOp::INe | CmpOp::ILt | CmpOp::ILe | CmpOp::IGt | CmpOp::IGe => {
                Some(Type::Int)
            }
            CmpOp::FEq | CmpOp::FLt | CmpOp::FLe => Some(Type::Float),
            CmpOp::RefEq => None, // any reference type
        }
    }
}

/// Dispatch target of a call instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CallTarget {
    /// Direct call to a known method.
    Static(MethodId),
    /// Virtual dispatch on the dynamic class of `args[0]`.
    Virtual(SelectorId),
}

/// A call instruction's payload: target plus its stable profile key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CallInfo {
    /// Static or virtual target.
    pub target: CallTarget,
    /// Stable callsite identity (survives cloning and inlining).
    pub site: CallSiteId,
}

/// Instruction operations.
///
/// Operand arity/typing is documented per variant and enforced by
/// [`crate::verify`].
#[derive(Clone, Debug, PartialEq)]
pub enum Op {
    /// Placeholder left behind by passes; never executed, never printed.
    Nop,
    /// Integer constant.
    ConstInt(i64),
    /// Float constant (stored as bits so `Op: Eq`-ish comparisons behave).
    ConstFloat(u64),
    /// Boolean constant.
    ConstBool(bool),
    /// Null constant of the given reference type.
    ConstNull(Type),
    /// Binary arithmetic: `args = [lhs, rhs]`.
    Bin(BinOp),
    /// Comparison: `args = [lhs, rhs]`, result `bool`.
    Cmp(CmpOp),
    /// Boolean negation: `args = [x]`.
    Not,
    /// Integer negation: `args = [x]`.
    INeg,
    /// Float negation: `args = [x]`.
    FNeg,
    /// Int → float conversion: `args = [x]`.
    IntToFloat,
    /// Float → int conversion (truncating): `args = [x]`.
    FloatToInt,
    /// Allocate an instance of the class; fields zero-initialized.
    New(ClassId),
    /// Field load: `args = [obj]`; traps on null.
    GetField(FieldId),
    /// Field store: `args = [obj, value]`; traps on null.
    SetField(FieldId),
    /// Allocate an array: `args = [len]`; traps on negative length.
    NewArray(ElemType),
    /// Array load: `args = [arr, index]`; traps on null/bounds.
    ArrayGet,
    /// Array store: `args = [arr, index, value]`; traps on null/bounds.
    ArraySet,
    /// Array length: `args = [arr]`; traps on null.
    ArrayLen,
    /// Call: `args` are the actual arguments (receiver first if virtual).
    Call(CallInfo),
    /// Dynamic type test: `args = [obj]`, result `bool`; null is not an
    /// instance of anything.
    InstanceOf(ClassId),
    /// Checked downcast: `args = [obj]`; traps if the object is not an
    /// instance (null passes through).
    Cast(ClassId),
    /// Output intrinsic: `args = [value]`; appends to the program output
    /// stream (observable side effect used by differential tests).
    Print,
}

impl Op {
    /// Whether the op writes memory or produces output.
    pub fn has_side_effect(&self) -> bool {
        matches!(
            self,
            Op::SetField(_) | Op::ArraySet | Op::Call(_) | Op::Print
        )
    }

    /// Whether the op can trap at runtime (division, null deref, bounds,
    /// failed cast). `Call` is excluded; callee effects are theirs.
    pub fn can_trap(&self) -> bool {
        match self {
            Op::Bin(b) => b.can_trap(),
            Op::GetField(_)
            | Op::SetField(_)
            | Op::ArrayGet
            | Op::ArraySet
            | Op::ArrayLen
            | Op::Cast(_) => true,
            Op::NewArray(_) => true,
            _ => false,
        }
    }

    /// Whether the op reads mutable memory (fields or array slots).
    pub fn reads_memory(&self) -> bool {
        matches!(self, Op::GetField(_) | Op::ArrayGet)
    }

    /// Whether two executions with identical arguments yield identical
    /// results and effects — the candidate set for global value numbering.
    ///
    /// Memory reads are excluded (stores may intervene); allocations are
    /// excluded (distinct identities); side effects are excluded.
    pub fn is_value_numberable(&self) -> bool {
        match self {
            Op::ConstInt(_) | Op::ConstFloat(_) | Op::ConstBool(_) | Op::ConstNull(_) => true,
            Op::Bin(_) | Op::Cmp(_) | Op::Not | Op::INeg | Op::FNeg => true,
            // Array lengths are immutable, so `arraylen` numbers safely; the
            // dominating occurrence traps iff the dominated one would.
            Op::IntToFloat | Op::FloatToInt | Op::InstanceOf(_) | Op::ArrayLen => true,
            _ => false,
        }
    }

    /// Whether an unused result makes the instruction removable.
    pub fn is_removable_if_unused(&self) -> bool {
        !self.has_side_effect() && !self.can_trap() && !matches!(self, Op::Nop)
    }

    /// The callsite id if this is a call.
    pub fn call_site(&self) -> Option<CallSiteId> {
        match self {
            Op::Call(info) => Some(info.site),
            _ => None,
        }
    }
}

/// Where a value comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th parameter of `block`.
    Param(BlockId, u32),
    /// The result of an instruction.
    Inst(InstId),
}

/// Type and definition of an SSA value.
#[derive(Clone, Debug)]
pub struct ValueData {
    /// Static type of the value.
    pub ty: Type,
    /// Defining entity.
    pub def: ValueDef,
}

/// An instruction: operation, operands and optional result value.
#[derive(Debug)]
pub struct InstData {
    /// The operation.
    pub op: Op,
    /// Operand values.
    pub args: Vec<ValueId>,
    /// Result value, if the operation produces one.
    pub result: Option<ValueId>,
}

impl Clone for InstData {
    fn clone(&self) -> Self {
        InstData {
            op: self.op.clone(),
            args: self.args.clone(),
            result: self.result,
        }
    }

    // Reuses the operand buffer — `Vec::clone_from` keeps the existing
    // allocation — so pooled graph clones (see [`GraphPool`]) do not
    // re-allocate per instruction.
    fn clone_from(&mut self, source: &Self) {
        self.op = source.op.clone();
        self.args.clone_from(&source.args);
        self.result = source.result;
    }
}

/// Why a [`Terminator::Deopt`] uncommon trap was emitted.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeoptReason {
    /// A typeswitch guard cascade fell through every speculated case: the
    /// receiver was not covered by the compile-time profile.
    UncoveredReceiver,
    /// Injected by the fault-injection harness.
    Injected,
}

impl DeoptReason {
    /// Stable lowercase label, used by the printer/parser and trace events.
    pub fn label(self) -> &'static str {
        match self {
            DeoptReason::UncoveredReceiver => "uncovered_receiver",
            DeoptReason::Injected => "injected",
        }
    }

    /// Parses the printer's label back into a reason.
    pub fn from_label(s: &str) -> Option<DeoptReason> {
        match s {
            "uncovered_receiver" => Some(DeoptReason::UncoveredReceiver),
            "injected" => Some(DeoptReason::Injected),
            _ => None,
        }
    }
}

impl std::fmt::Display for DeoptReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Block terminators.
#[derive(Debug, PartialEq)]
pub enum Terminator {
    /// Unconditional jump passing `args` to the target's parameters.
    Jump(BlockId, Vec<ValueId>),
    /// Two-way branch on a boolean condition.
    Branch {
        /// Condition value (`bool`).
        cond: ValueId,
        /// Target and arguments when the condition is true.
        then_dest: (BlockId, Vec<ValueId>),
        /// Target and arguments when the condition is false.
        else_dest: (BlockId, Vec<ValueId>),
    },
    /// Return from the method, with a value unless the method is `void`.
    Return(Option<ValueId>),
    /// Uncommon trap: abandon this compiled activation and transfer it to
    /// the interpreter (paper §IV — a typeswitch fallback may be "a virtual
    /// call or a deoptimization"). Valid under any return type; only the
    /// compiler introduces it, source graphs never contain one.
    Deopt {
        /// Why the trap was emitted.
        reason: DeoptReason,
    },
    /// Marker for not-yet-terminated blocks; invalid in finished graphs.
    Unterminated,
}

impl Clone for Terminator {
    fn clone(&self) -> Self {
        match self {
            Terminator::Jump(b, args) => Terminator::Jump(*b, args.clone()),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => Terminator::Branch {
                cond: *cond,
                then_dest: then_dest.clone(),
                else_dest: else_dest.clone(),
            },
            Terminator::Return(v) => Terminator::Return(*v),
            Terminator::Deopt { reason } => Terminator::Deopt { reason: *reason },
            Terminator::Unterminated => Terminator::Unterminated,
        }
    }

    // Same-variant clones reuse the argument buffers (pooled graph reuse).
    fn clone_from(&mut self, source: &Self) {
        match (self, source) {
            (Terminator::Jump(b, args), Terminator::Jump(sb, sargs)) => {
                *b = *sb;
                args.clone_from(sargs);
            }
            (
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                },
                Terminator::Branch {
                    cond: sc,
                    then_dest: st,
                    else_dest: se,
                },
            ) => {
                *cond = *sc;
                then_dest.0 = st.0;
                then_dest.1.clone_from(&st.1);
                else_dest.0 = se.0;
                else_dest.1.clone_from(&se.1);
            }
            (this, source) => *this = source.clone(),
        }
    }
}

impl Terminator {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Jump(b, _) => vec![*b],
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => vec![then_dest.0, else_dest.0],
            Terminator::Return(_) | Terminator::Deopt { .. } | Terminator::Unterminated => vec![],
        }
    }

    /// Values used by this terminator.
    pub fn uses(&self) -> Vec<ValueId> {
        match self {
            Terminator::Jump(_, args) => args.clone(),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => {
                let mut v = vec![*cond];
                v.extend_from_slice(&then_dest.1);
                v.extend_from_slice(&else_dest.1);
                v
            }
            Terminator::Return(Some(v)) => vec![*v],
            Terminator::Return(None) | Terminator::Deopt { .. } | Terminator::Unterminated => {
                vec![]
            }
        }
    }
}

/// A basic block: parameters, instruction list, terminator.
#[derive(Debug)]
pub struct BlockData {
    /// Parameter values of the block (the SSA phi replacement).
    pub params: Vec<ValueId>,
    /// Instructions in execution order.
    pub insts: Vec<InstId>,
    /// The terminator.
    pub term: Terminator,
}

impl Clone for BlockData {
    fn clone(&self) -> Self {
        BlockData {
            params: self.params.clone(),
            insts: self.insts.clone(),
            term: self.term.clone(),
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.params.clone_from(&source.params);
        self.insts.clone_from(&source.insts);
        self.term.clone_from(&source.term);
    }
}

/// An IR graph: the body of one method.
#[derive(Debug)]
pub struct Graph {
    values: Vec<ValueData>,
    insts: Vec<InstData>,
    blocks: Vec<BlockData>,
    entry: BlockId,
}

impl Clone for Graph {
    fn clone(&self) -> Self {
        Graph {
            values: self.values.clone(),
            insts: self.insts.clone(),
            blocks: self.blocks.clone(),
            entry: self.entry,
        }
    }

    // Field-wise `clone_from` so a recycled graph (see [`GraphPool`]) reuses
    // its outer vectors and every inner operand/parameter buffer instead of
    // re-allocating the whole arena.
    fn clone_from(&mut self, source: &Self) {
        self.values.clone_from(&source.values);
        self.insts.clone_from(&source.insts);
        self.blocks.clone_from(&source.blocks);
        self.entry = source.entry;
    }
}

impl Default for Graph {
    fn default() -> Self {
        Self::empty()
    }
}

impl Graph {
    /// Creates a graph with a single empty, unterminated entry block.
    pub fn empty() -> Self {
        Graph {
            values: Vec::new(),
            insts: Vec::new(),
            blocks: vec![BlockData {
                params: Vec::new(),
                insts: Vec::new(),
                term: Terminator::Unterminated,
            }],
            entry: BlockId::new(0),
        }
    }

    /// The entry block.
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Adds a new empty block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::new(self.blocks.len());
        self.blocks.push(BlockData {
            params: Vec::new(),
            insts: Vec::new(),
            term: Terminator::Unterminated,
        });
        id
    }

    /// Appends a parameter of type `ty` to `block` and returns its value.
    pub fn add_block_param(&mut self, block: BlockId, ty: Type) -> ValueId {
        let index = self.blocks[block.index()].params.len() as u32;
        let v = ValueId::new(self.values.len());
        self.values.push(ValueData {
            ty,
            def: ValueDef::Param(block, index),
        });
        self.blocks[block.index()].params.push(v);
        v
    }

    /// Creates an instruction (without inserting it into a block).
    ///
    /// If `result_ty` is `Some`, a fresh result value is allocated.
    pub fn create_inst(&mut self, op: Op, args: Vec<ValueId>, result_ty: Option<Type>) -> InstId {
        let id = InstId::new(self.insts.len());
        let result = result_ty.map(|ty| {
            let v = ValueId::new(self.values.len());
            self.values.push(ValueData {
                ty,
                def: ValueDef::Inst(id),
            });
            v
        });
        self.insts.push(InstData { op, args, result });
        id
    }

    /// Creates an instruction and appends it to `block`. Returns the
    /// instruction id and its result value (if any).
    pub fn append(
        &mut self,
        block: BlockId,
        op: Op,
        args: Vec<ValueId>,
        result_ty: Option<Type>,
    ) -> (InstId, Option<ValueId>) {
        let id = self.create_inst(op, args, result_ty);
        self.blocks[block.index()].insts.push(id);
        let result = self.insts[id.index()].result;
        (id, result)
    }

    /// Inserts an existing instruction at `pos` within `block`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: InstId) {
        self.blocks[block.index()].insts.insert(pos, inst);
    }

    /// Sets the terminator of `block`.
    pub fn set_terminator(&mut self, block: BlockId, term: Terminator) {
        self.blocks[block.index()].term = term;
    }

    /// Returns block data.
    pub fn block(&self, id: BlockId) -> &BlockData {
        &self.blocks[id.index()]
    }

    /// Mutable block data.
    pub fn block_mut(&mut self, id: BlockId) -> &mut BlockData {
        &mut self.blocks[id.index()]
    }

    /// Returns instruction data.
    pub fn inst(&self, id: InstId) -> &InstData {
        &self.insts[id.index()]
    }

    /// Mutable instruction data.
    pub fn inst_mut(&mut self, id: InstId) -> &mut InstData {
        &mut self.insts[id.index()]
    }

    /// Returns value data.
    pub fn value(&self, id: ValueId) -> &ValueData {
        &self.values[id.index()]
    }

    /// Static type of a value.
    pub fn value_type(&self, id: ValueId) -> Type {
        self.values[id.index()].ty
    }

    /// Narrows the recorded static type of a value (used by specialization).
    pub fn set_value_type(&mut self, id: ValueId, ty: Type) {
        self.values[id.index()].ty = ty;
    }

    /// Number of blocks ever created (including unreachable ones).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of values ever created.
    pub fn value_count(&self) -> usize {
        self.values.len()
    }

    /// Number of instructions ever created (including detached ones).
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Iterates over all block ids (including unreachable ones).
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Blocks reachable from the entry, in depth-first preorder.
    pub fn reachable_blocks(&self) -> Vec<BlockId> {
        let mut seen = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        seen[self.entry.index()] = true;
        while let Some(b) = stack.pop() {
            order.push(b);
            for s in self.blocks[b.index()].term.successors() {
                if !seen[s.index()] {
                    seen[s.index()] = true;
                    stack.push(s);
                }
            }
        }
        order
    }

    /// Predecessor map over reachable blocks.
    pub fn predecessors(&self) -> HashMap<BlockId, Vec<BlockId>> {
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for b in self.reachable_blocks() {
            preds.entry(b).or_default();
            for s in self.blocks[b.index()].term.successors() {
                preds.entry(s).or_default().push(b);
            }
        }
        preds
    }

    /// The paper's `|ir(n)|`: number of live IR nodes — block parameters,
    /// instructions and terminators of reachable blocks.
    pub fn size(&self) -> usize {
        self.reachable_blocks()
            .iter()
            .map(|&b| {
                let bd = &self.blocks[b.index()];
                bd.params.len() + bd.insts.len() + 1
            })
            .sum()
    }

    /// All call instructions in reachable blocks, in block order.
    pub fn callsites(&self) -> Vec<(BlockId, InstId)> {
        let mut out = Vec::new();
        for b in self.reachable_blocks() {
            for &i in &self.blocks[b.index()].insts {
                if matches!(self.insts[i.index()].op, Op::Call(_)) {
                    out.push((b, i));
                }
            }
        }
        out
    }

    /// Replaces every use of `old` with `new` in instruction operands and
    /// terminators. Returns the number of uses rewritten.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) -> usize {
        let mut n = 0;
        for inst in &mut self.insts {
            for a in &mut inst.args {
                if *a == old {
                    *a = new;
                    n += 1;
                }
            }
        }
        for block in &mut self.blocks {
            let term = &mut block.term;
            let rewrite = |list: &mut Vec<ValueId>, n: &mut usize| {
                for a in list {
                    if *a == old {
                        *a = new;
                        *n += 1;
                    }
                }
            };
            match term {
                Terminator::Jump(_, args) => rewrite(args, &mut n),
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    if *cond == old {
                        *cond = new;
                        n += 1;
                    }
                    rewrite(&mut then_dest.1, &mut n);
                    rewrite(&mut else_dest.1, &mut n);
                }
                Terminator::Return(Some(v)) if *v == old => {
                    *term = Terminator::Return(Some(new));
                    n += 1;
                }
                _ => {}
            }
        }
        n
    }

    /// Detaches `inst` from `block` and neutralizes it to [`Op::Nop`].
    ///
    /// The caller must have already replaced all uses of the result.
    pub fn remove_inst(&mut self, block: BlockId, inst: InstId) {
        let b = &mut self.blocks[block.index()];
        b.insts.retain(|&i| i != inst);
        let data = &mut self.insts[inst.index()];
        data.op = Op::Nop;
        data.args.clear();
    }

    /// Whether any reachable instruction or terminator uses `value`.
    pub fn has_uses(&self, value: ValueId) -> bool {
        for b in self.reachable_blocks() {
            for &i in &self.blocks[b.index()].insts {
                if self.insts[i.index()].args.contains(&value) {
                    return true;
                }
            }
            if self.blocks[b.index()].term.uses().contains(&value) {
                return true;
            }
        }
        false
    }

    /// If `value` is defined by a constant instruction, returns the op.
    pub fn const_op(&self, value: ValueId) -> Option<&Op> {
        match self.values[value.index()].def {
            ValueDef::Inst(i) => match &self.insts[i.index()].op {
                op
                @ (Op::ConstInt(_) | Op::ConstFloat(_) | Op::ConstBool(_) | Op::ConstNull(_)) => {
                    Some(op)
                }
                _ => None,
            },
            ValueDef::Param(..) => None,
        }
    }

    /// Constant integer value of `value`, if statically known.
    pub fn as_const_int(&self, value: ValueId) -> Option<i64> {
        match self.const_op(value)? {
            Op::ConstInt(k) => Some(*k),
            _ => None,
        }
    }

    /// Constant bool value of `value`, if statically known.
    pub fn as_const_bool(&self, value: ValueId) -> Option<bool> {
        match self.const_op(value)? {
            Op::ConstBool(k) => Some(*k),
            _ => None,
        }
    }

    /// Constant float value of `value`, if statically known.
    pub fn as_const_float(&self, value: ValueId) -> Option<f64> {
        match self.const_op(value)? {
            Op::ConstFloat(bits) => Some(f64::from_bits(*bits)),
            _ => None,
        }
    }

    /// Whether `value` is a null constant.
    pub fn is_const_null(&self, value: ValueId) -> bool {
        matches!(self.const_op(value), Some(Op::ConstNull(_)))
    }

    /// Rebuilds the graph keeping only reachable blocks and live entities,
    /// renumbering every id densely. Passes leave tombstones (detached
    /// instructions, unreachable blocks, dangling values) behind; compacting
    /// before installing a compiled graph shrinks the interpreter's
    /// register file and the code-size accounting to what actually runs.
    ///
    /// Note: instruction/value/block ids change; callers holding ids into
    /// the old graph (e.g. a call tree) must not use them afterwards.
    /// `CallSiteId`s stored inside call instructions are preserved.
    pub fn compacted(&self) -> Graph {
        let mut out = Graph::empty();
        let reachable = self.reachable_blocks();
        let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
        let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();

        // Pass 1: block shells + params. The first reachable block is the
        // entry and maps onto the fresh graph's entry.
        for (i, &b) in reachable.iter().enumerate() {
            let nb = if i == 0 { out.entry() } else { out.add_block() };
            block_map.insert(b, nb);
            for &p in &self.block(b).params {
                let np = out.add_block_param(nb, self.value_type(p));
                value_map.insert(p, np);
            }
        }
        // Pass 2: instruction shells (fresh results; args later).
        let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
        for &b in &reachable {
            let nb = block_map[&b];
            for &i in &self.block(b).insts {
                let data = self.inst(i);
                let result_ty = data.result.map(|r| self.value_type(r));
                let (ni, nres) = out.append(nb, data.op.clone(), Vec::new(), result_ty);
                inst_map.insert(i, ni);
                if let (Some(or), Some(nr)) = (data.result, nres) {
                    value_map.insert(or, nr);
                }
            }
        }
        // Pass 3: operands + terminators.
        let map_v = |value_map: &HashMap<ValueId, ValueId>, v: ValueId| -> ValueId {
            *value_map
                .get(&v)
                .unwrap_or_else(|| panic!("compaction found a use of dead value {v}"))
        };
        for &b in &reachable {
            for &i in &self.block(b).insts {
                let args: Vec<ValueId> = self
                    .inst(i)
                    .args
                    .iter()
                    .map(|&a| map_v(&value_map, a))
                    .collect();
                out.inst_mut(inst_map[&i]).args = args;
            }
            let term = match &self.block(b).term {
                Terminator::Jump(d, args) => Terminator::Jump(
                    block_map[d],
                    args.iter().map(|&a| map_v(&value_map, a)).collect(),
                ),
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                } => Terminator::Branch {
                    cond: map_v(&value_map, *cond),
                    then_dest: (
                        block_map[&then_dest.0],
                        then_dest.1.iter().map(|&a| map_v(&value_map, a)).collect(),
                    ),
                    else_dest: (
                        block_map[&else_dest.0],
                        else_dest.1.iter().map(|&a| map_v(&value_map, a)).collect(),
                    ),
                },
                Terminator::Return(v) => Terminator::Return(v.map(|v| map_v(&value_map, v))),
                Terminator::Deopt { reason } => Terminator::Deopt { reason: *reason },
                Terminator::Unterminated => Terminator::Unterminated,
            };
            out.set_terminator(block_map[&b], term);
        }
        out
    }

    /// FNV-1a 64 structural fingerprint of the reachable program text:
    /// block parameters (ids + types), instructions (op, operands, result),
    /// and terminators, walked in depth-first preorder. Two graphs that
    /// print identically fingerprint identically; the hash never allocates
    /// beyond the reachability scratch, unlike hashing the printed text.
    ///
    /// This is the `graph_fp` component of the deep-inlining trial-cache
    /// key (DESIGN.md §15).
    pub fn fingerprint(&self) -> u64 {
        let mut h = StructuralHasher::new();
        let reach = self.reachable_blocks();
        h.write_u64(reach.len() as u64);
        for &b in &reach {
            let bd = &self.blocks[b.index()];
            h.write_u64(b.index() as u64);
            h.write_u64(bd.params.len() as u64);
            for &p in &bd.params {
                h.write_u64(p.index() as u64);
                h.write_type(self.values[p.index()].ty);
            }
            h.write_u64(bd.insts.len() as u64);
            for &i in &bd.insts {
                let inst = &self.insts[i.index()];
                h.write_op(&inst.op);
                h.write_u64(inst.args.len() as u64);
                for &a in &inst.args {
                    h.write_u64(a.index() as u64);
                }
                match inst.result {
                    Some(r) => {
                        h.write_u64(1);
                        h.write_u64(r.index() as u64);
                        h.write_type(self.values[r.index()].ty);
                    }
                    None => h.write_u64(0),
                }
            }
            h.write_terminator(&bd.term);
        }
        h.finish()
    }
}

/// FNV-1a 64 accumulator with typed writers for IR entities — the shared
/// substrate of [`Graph::fingerprint`] and the inliner's trial-cache
/// argument hashing (which hashes `Op` constants and `Type` narrowings
/// without a graph in hand).
#[derive(Clone, Copy, Debug)]
pub struct StructuralHasher {
    state: u64,
}

impl Default for StructuralHasher {
    fn default() -> Self {
        Self::new()
    }
}

impl StructuralHasher {
    /// The FNV-1a offset basis.
    pub fn new() -> Self {
        StructuralHasher {
            state: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Folds eight little-endian bytes into the state.
    pub fn write_u64(&mut self, v: u64) {
        for byte in v.to_le_bytes() {
            self.state ^= byte as u64;
            self.state = self.state.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The accumulated digest.
    pub fn finish(self) -> u64 {
        self.state
    }

    /// Folds a [`Type`] (tag + payload).
    pub fn write_type(&mut self, ty: Type) {
        match ty {
            Type::Int => self.write_u64(0),
            Type::Float => self.write_u64(1),
            Type::Bool => self.write_u64(2),
            Type::Object(c) => {
                self.write_u64(3);
                self.write_u64(c.index() as u64);
            }
            Type::Array(e) => {
                self.write_u64(4);
                self.write_elem(e);
            }
        }
    }

    fn write_elem(&mut self, e: ElemType) {
        match e {
            ElemType::Int => self.write_u64(0),
            ElemType::Float => self.write_u64(1),
            ElemType::Bool => self.write_u64(2),
            ElemType::Object(c) => {
                self.write_u64(3);
                self.write_u64(c.index() as u64);
            }
        }
    }

    /// Folds an [`Op`] (variant tag + payload; float constants by bits).
    pub fn write_op(&mut self, op: &Op) {
        match op {
            Op::Nop => self.write_u64(0),
            Op::ConstInt(k) => {
                self.write_u64(1);
                self.write_u64(*k as u64);
            }
            Op::ConstFloat(bits) => {
                self.write_u64(2);
                self.write_u64(*bits);
            }
            Op::ConstBool(b) => {
                self.write_u64(3);
                self.write_u64(*b as u64);
            }
            Op::ConstNull(t) => {
                self.write_u64(4);
                self.write_type(*t);
            }
            Op::Bin(b) => {
                self.write_u64(5);
                self.write_u64(*b as u64);
            }
            Op::Cmp(c) => {
                self.write_u64(6);
                self.write_u64(*c as u64);
            }
            Op::Not => self.write_u64(7),
            Op::INeg => self.write_u64(8),
            Op::FNeg => self.write_u64(9),
            Op::IntToFloat => self.write_u64(10),
            Op::FloatToInt => self.write_u64(11),
            Op::New(c) => {
                self.write_u64(12);
                self.write_u64(c.index() as u64);
            }
            Op::GetField(f) => {
                self.write_u64(13);
                self.write_u64(f.index() as u64);
            }
            Op::SetField(f) => {
                self.write_u64(14);
                self.write_u64(f.index() as u64);
            }
            Op::NewArray(e) => {
                self.write_u64(15);
                self.write_elem(*e);
            }
            Op::ArrayGet => self.write_u64(16),
            Op::ArraySet => self.write_u64(17),
            Op::ArrayLen => self.write_u64(18),
            Op::Call(info) => {
                self.write_u64(19);
                match info.target {
                    CallTarget::Static(m) => {
                        self.write_u64(0);
                        self.write_u64(m.index() as u64);
                    }
                    CallTarget::Virtual(s) => {
                        self.write_u64(1);
                        self.write_u64(s.index() as u64);
                    }
                }
                self.write_u64(info.site.method.index() as u64);
                self.write_u64(info.site.index as u64);
            }
            Op::InstanceOf(c) => {
                self.write_u64(20);
                self.write_u64(c.index() as u64);
            }
            Op::Cast(c) => {
                self.write_u64(21);
                self.write_u64(c.index() as u64);
            }
            Op::Print => self.write_u64(22),
        }
    }

    fn write_terminator(&mut self, term: &Terminator) {
        match term {
            Terminator::Jump(b, args) => {
                self.write_u64(0);
                self.write_u64(b.index() as u64);
                self.write_u64(args.len() as u64);
                for a in args {
                    self.write_u64(a.index() as u64);
                }
            }
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => {
                self.write_u64(1);
                self.write_u64(cond.index() as u64);
                for (b, args) in [then_dest, else_dest] {
                    self.write_u64(b.index() as u64);
                    self.write_u64(args.len() as u64);
                    for a in args {
                        self.write_u64(a.index() as u64);
                    }
                }
            }
            Terminator::Return(v) => {
                self.write_u64(2);
                match v {
                    Some(v) => self.write_u64(1 + v.index() as u64),
                    None => self.write_u64(0),
                }
            }
            Terminator::Deopt { reason } => {
                self.write_u64(3);
                self.write_u64(*reason as u64);
            }
            Terminator::Unterminated => self.write_u64(4),
        }
    }
}

/// A recycling pool of [`Graph`] allocations — the arena the incremental
/// inliner draws trial and expansion graphs from.
///
/// Call-tree expansion clones a callee graph per expanded node and the
/// trial pipeline churns through scratch graphs every round; allocating
/// each from scratch dominated the compiler's allocation profile (see
/// `BENCH_compile.json`). The pool keeps up to [`GraphPool::CAPACITY`]
/// retired graphs and re-populates them with [`Clone::clone_from`], which
/// reuses the value/instruction/block vectors and every inner operand
/// buffer.
#[derive(Debug, Default)]
pub struct GraphPool {
    free: Vec<Graph>,
}

impl Clone for GraphPool {
    // Pooled graphs are scratch buffers, not state: a clone starts empty
    // and warms its own pool, which keeps cloning a pool-holding structure
    // cheap.
    fn clone(&self) -> Self {
        GraphPool::new()
    }
}

impl GraphPool {
    /// Retired graphs kept for reuse; beyond this, recycled graphs drop.
    pub const CAPACITY: usize = 32;

    /// An empty pool.
    pub fn new() -> Self {
        GraphPool::default()
    }

    /// Clones `template`, reusing a retired graph's buffers when one is
    /// available. The result is indistinguishable from `template.clone()`.
    pub fn clone_graph(&mut self, template: &Graph) -> Graph {
        match self.free.pop() {
            Some(mut g) => {
                g.clone_from(template);
                g
            }
            None => template.clone(),
        }
    }

    /// Returns a graph's buffers to the pool for a later
    /// [`GraphPool::clone_graph`].
    pub fn recycle(&mut self, graph: Graph) {
        if self.free.len() < Self::CAPACITY {
            self.free.push(graph);
        }
    }

    /// Number of retired graphs currently pooled.
    pub fn pooled(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(g: &mut Graph, b: BlockId, v: i64) -> ValueId {
        g.append(b, Op::ConstInt(v), vec![], Some(Type::Int))
            .1
            .unwrap()
    }

    #[test]
    fn build_straight_line() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 2);
        let b = k(&mut g, e, 3);
        let (_, sum) = g.append(e, Op::Bin(BinOp::IAdd), vec![a, b], Some(Type::Int));
        g.set_terminator(e, Terminator::Return(sum));
        assert_eq!(g.size(), 4); // 3 insts + 1 terminator
        assert_eq!(g.value_type(sum.unwrap()), Type::Int);
    }

    #[test]
    fn block_params_and_branches() {
        let mut g = Graph::empty();
        let e = g.entry();
        let p = g.add_block_param(e, Type::Bool);
        let t = g.add_block();
        let f = g.add_block();
        let j = g.add_block();
        let jp = g.add_block_param(j, Type::Int);
        let one = k(&mut g, t, 1);
        let two = k(&mut g, f, 2);
        g.set_terminator(
            e,
            Terminator::Branch {
                cond: p,
                then_dest: (t, vec![]),
                else_dest: (f, vec![]),
            },
        );
        g.set_terminator(t, Terminator::Jump(j, vec![one]));
        g.set_terminator(f, Terminator::Jump(j, vec![two]));
        g.set_terminator(j, Terminator::Return(Some(jp)));
        let reach = g.reachable_blocks();
        assert_eq!(reach.len(), 4);
        let preds = g.predecessors();
        assert_eq!(preds[&j].len(), 2);
        // entry param + 2 consts + 1 join param + 4 terminators
        assert_eq!(g.size(), 8);
    }

    #[test]
    fn replace_uses_rewrites_terms_and_args() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 1);
        let b = k(&mut g, e, 2);
        let (_, s) = g.append(e, Op::Bin(BinOp::IAdd), vec![a, a], Some(Type::Int));
        g.set_terminator(e, Terminator::Return(Some(a)));
        let n = g.replace_all_uses(a, b);
        assert_eq!(n, 3);
        assert_eq!(g.inst(InstId::new(2)).args, vec![b, b]);
        assert_eq!(g.block(e).term, Terminator::Return(Some(b)));
        let _ = s;
    }

    #[test]
    fn remove_inst_nops_out() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 1);
        g.set_terminator(e, Terminator::Return(None));
        let def = match g.value(a).def {
            ValueDef::Inst(i) => i,
            _ => unreachable!(),
        };
        assert!(!g.has_uses(a));
        g.remove_inst(e, def);
        assert_eq!(g.block(e).insts.len(), 0);
        assert_eq!(g.inst(def).op, Op::Nop);
    }

    #[test]
    fn const_queries() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 42);
        let (_, fl) = g.append(
            e,
            Op::ConstFloat(2.5f64.to_bits()),
            vec![],
            Some(Type::Float),
        );
        let (_, tr) = g.append(e, Op::ConstBool(true), vec![], Some(Type::Bool));
        assert_eq!(g.as_const_int(a), Some(42));
        assert_eq!(g.as_const_float(fl.unwrap()), Some(2.5));
        assert_eq!(g.as_const_bool(tr.unwrap()), Some(true));
        assert_eq!(g.as_const_int(fl.unwrap()), None);
    }

    #[test]
    fn size_ignores_unreachable() {
        let mut g = Graph::empty();
        let e = g.entry();
        g.set_terminator(e, Terminator::Return(None));
        let dead = g.add_block();
        k(&mut g, dead, 7);
        g.set_terminator(dead, Terminator::Return(None));
        assert_eq!(g.size(), 1);
    }

    #[test]
    fn op_classification() {
        assert!(Op::Print.has_side_effect());
        assert!(Op::Bin(BinOp::IDiv).can_trap());
        assert!(!Op::Bin(BinOp::IAdd).can_trap());
        assert!(Op::ConstInt(1).is_removable_if_unused());
        assert!(!Op::ArrayGet.is_removable_if_unused());
        assert!(Op::Bin(BinOp::IAdd).is_value_numberable());
        assert!(!Op::GetField(FieldId::new(0)).is_value_numberable());
        assert!(Op::GetField(FieldId::new(0)).reads_memory());
    }

    #[test]
    fn compaction_drops_garbage_and_preserves_shape() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 1);
        let b = k(&mut g, e, 2);
        let (_, sum) = g.append(e, Op::Bin(BinOp::IAdd), vec![a, b], Some(Type::Int));
        g.set_terminator(e, Terminator::Return(sum));
        // Garbage: a removed instruction, a dead block, a detached inst.
        let dead_inst = {
            let (i, r) = g.append(e, Op::ConstInt(9), vec![], Some(Type::Int));
            let _ = r;
            i
        };
        g.remove_inst(e, dead_inst);
        let dead_block = g.add_block();
        k(&mut g, dead_block, 7);
        g.set_terminator(dead_block, Terminator::Return(None));
        g.create_inst(Op::ConstInt(11), vec![], Some(Type::Int)); // detached

        let size_before = g.size();
        let c = g.compacted();
        assert_eq!(c.size(), size_before, "live size is preserved");
        assert!(c.value_count() < g.value_count(), "dead values dropped");
        assert!(c.inst_count() < g.inst_count(), "dead insts dropped");
        assert_eq!(c.block_count(), 1, "unreachable blocks dropped");
        // The computation is intact.
        let Terminator::Return(Some(v)) = c.block(c.entry()).term.clone() else {
            panic!()
        };
        let ValueDef::Inst(add) = c.value(v).def else {
            panic!()
        };
        assert!(matches!(c.inst(add).op, Op::Bin(BinOp::IAdd)));
    }

    #[test]
    fn compaction_keeps_loop_structure_and_params() {
        let mut g = Graph::empty();
        let e = g.entry();
        let n = g.add_block_param(e, Type::Int);
        let zero = k(&mut g, e, 0);
        let h = g.add_block();
        let hi = g.add_block_param(h, Type::Int);
        let body = g.add_block();
        let exit = g.add_block();
        g.set_terminator(e, Terminator::Jump(h, vec![zero]));
        let (_, c) = g.append(h, Op::Cmp(CmpOp::ILt), vec![hi, n], Some(Type::Bool));
        g.set_terminator(
            h,
            Terminator::Branch {
                cond: c.unwrap(),
                then_dest: (body, vec![]),
                else_dest: (exit, vec![]),
            },
        );
        let one = k(&mut g, body, 1);
        let (_, i2) = g.append(body, Op::Bin(BinOp::IAdd), vec![hi, one], Some(Type::Int));
        g.set_terminator(body, Terminator::Jump(h, vec![i2.unwrap()]));
        g.set_terminator(exit, Terminator::Return(Some(hi)));
        let c = g.compacted();
        assert_eq!(c.size(), g.size());
        assert_eq!(crate::loops::LoopForest::compute(&c).loops.len(), 1);
        assert_eq!(c.block(c.entry()).params.len(), 1);
    }

    #[test]
    fn fingerprint_is_structural() {
        let build = |k_val: i64| {
            let mut g = Graph::empty();
            let e = g.entry();
            let a = k(&mut g, e, k_val);
            let b = k(&mut g, e, 3);
            let (_, sum) = g.append(e, Op::Bin(BinOp::IAdd), vec![a, b], Some(Type::Int));
            g.set_terminator(e, Terminator::Return(sum));
            g
        };
        assert_eq!(build(2).fingerprint(), build(2).fingerprint());
        assert_ne!(build(2).fingerprint(), build(4).fingerprint());
        // Unreachable garbage does not perturb the fingerprint.
        let mut g = build(2);
        let dead = g.add_block();
        k(&mut g, dead, 99);
        g.set_terminator(dead, Terminator::Return(None));
        assert_eq!(g.fingerprint(), build(2).fingerprint());
    }

    #[test]
    fn pooled_clone_matches_fresh_clone() {
        let mut g = Graph::empty();
        let e = g.entry();
        let a = k(&mut g, e, 1);
        let b = k(&mut g, e, 2);
        let (_, s) = g.append(e, Op::Bin(BinOp::IAdd), vec![a, b], Some(Type::Int));
        g.set_terminator(e, Terminator::Return(s));

        let mut pool = GraphPool::new();
        // Seed the pool with a retired graph of a very different shape.
        let mut other = Graph::empty();
        let o = other.entry();
        for v in 0..8 {
            k(&mut other, o, v);
        }
        other.set_terminator(o, Terminator::Return(None));
        pool.recycle(other);
        assert_eq!(pool.pooled(), 1);

        let cloned = pool.clone_graph(&g);
        assert_eq!(pool.pooled(), 0);
        assert_eq!(cloned.fingerprint(), g.fingerprint());
        assert_eq!(cloned.size(), g.size());
        assert_eq!(cloned.inst_count(), g.inst_count());
        assert_eq!(cloned.value_count(), g.value_count());
        // And a pool miss falls back to a fresh clone.
        let fresh = pool.clone_graph(&g);
        assert_eq!(fresh.fingerprint(), g.fingerprint());
    }

    #[test]
    fn terminator_clone_from_reuses_same_variant() {
        let mut t = Terminator::Jump(BlockId::new(0), vec![ValueId::new(0)]);
        let s = Terminator::Jump(BlockId::new(2), vec![ValueId::new(3), ValueId::new(4)]);
        t.clone_from(&s);
        assert_eq!(t, s);
        // Cross-variant falls back to a plain clone.
        let r = Terminator::Return(None);
        t.clone_from(&r);
        assert_eq!(t, r);
    }

    #[test]
    fn callsites_listed_in_order() {
        let mut g = Graph::empty();
        let e = g.entry();
        let m = MethodId::new(0);
        let cs0 = CallSiteId {
            method: m,
            index: 0,
        };
        let cs1 = CallSiteId {
            method: m,
            index: 1,
        };
        g.append(
            e,
            Op::Call(CallInfo {
                target: CallTarget::Static(m),
                site: cs0,
            }),
            vec![],
            None,
        );
        g.append(
            e,
            Op::Call(CallInfo {
                target: CallTarget::Static(m),
                site: cs1,
            }),
            vec![],
            None,
        );
        g.set_terminator(e, Terminator::Return(None));
        let sites: Vec<_> = g
            .callsites()
            .iter()
            .map(|&(_, i)| g.inst(i).op.call_site().unwrap())
            .collect();
        assert_eq!(sites, vec![cs0, cs1]);
    }
}
