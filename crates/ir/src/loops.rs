//! Natural-loop detection on top of the dominator tree.
//!
//! A back edge is a CFG edge `tail → header` where `header` dominates
//! `tail`. The natural loop of a back edge is the set of blocks that can
//! reach `tail` without passing through `header`, plus the header itself.
//! Loop peeling (in `incline-opt`) and the cost model (loop-frequency
//! heuristics) consume this.

use std::collections::{HashMap, HashSet};

use crate::dom::DomTree;
use crate::graph::Graph;
use crate::ids::BlockId;

/// One natural loop.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The loop header (dominates all body blocks).
    pub header: BlockId,
    /// All blocks of the loop, header included.
    pub blocks: Vec<BlockId>,
    /// The tails of the back edges targeting `header`.
    pub back_edges: Vec<BlockId>,
}

impl Loop {
    /// Whether `block` belongs to this loop.
    pub fn contains(&self, block: BlockId) -> bool {
        self.blocks.contains(&block)
    }
}

/// All natural loops of a graph, with a per-block nesting-depth map.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// Loops, one per distinct header (back edges to a header are merged).
    pub loops: Vec<Loop>,
    /// Nesting depth of each block (0 = not in any loop).
    pub depth: HashMap<BlockId, u32>,
}

impl LoopForest {
    /// Computes the loop forest of `graph`.
    pub fn compute(graph: &Graph) -> Self {
        let dom = DomTree::compute(graph);
        Self::compute_with(graph, &dom)
    }

    /// Computes the loop forest with a precomputed dominator tree.
    pub fn compute_with(graph: &Graph, dom: &DomTree) -> Self {
        let preds = graph.predecessors();
        let mut by_header: HashMap<BlockId, (HashSet<BlockId>, Vec<BlockId>)> = HashMap::new();

        for &b in dom.rpo() {
            for succ in graph.block(b).term.successors() {
                if dom.dominates(succ, b) {
                    // b -> succ is a back edge; succ is the header.
                    let entry = by_header.entry(succ).or_insert_with(|| {
                        let mut set = HashSet::new();
                        set.insert(succ);
                        (set, Vec::new())
                    });
                    entry.1.push(b);
                    // Collect the natural loop body by walking predecessors
                    // from the tail until the header.
                    let mut stack = vec![b];
                    while let Some(n) = stack.pop() {
                        if entry.0.insert(n) {
                            for &p in preds.get(&n).map(Vec::as_slice).unwrap_or(&[]) {
                                stack.push(p);
                            }
                        }
                    }
                }
            }
        }

        let mut loops: Vec<Loop> = by_header
            .into_iter()
            .map(|(header, (blocks, back_edges))| {
                let mut blocks: Vec<_> = blocks.into_iter().collect();
                blocks.sort();
                Loop {
                    header,
                    blocks,
                    back_edges,
                }
            })
            .collect();
        loops.sort_by_key(|l| l.header);

        let mut depth: HashMap<BlockId, u32> = HashMap::new();
        for &b in dom.rpo() {
            depth.insert(b, 0);
        }
        for l in &loops {
            for &b in &l.blocks {
                *depth.entry(b).or_insert(0) += 1;
            }
        }
        LoopForest { loops, depth }
    }

    /// Loop with the given header, if any.
    pub fn loop_at(&self, header: BlockId) -> Option<&Loop> {
        self.loops.iter().find(|l| l.header == header)
    }

    /// Nesting depth of a block (0 if not in a loop).
    pub fn depth_of(&self, block: BlockId) -> u32 {
        self.depth.get(&block).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Op, Terminator};
    use crate::types::Type;

    fn cond(g: &mut Graph, b: BlockId) -> crate::ids::ValueId {
        g.append(b, Op::ConstBool(true), vec![], Some(Type::Bool))
            .1
            .unwrap()
    }

    #[test]
    fn single_loop() {
        let mut g = Graph::empty();
        let e = g.entry();
        let h = g.add_block();
        let body = g.add_block();
        let exit = g.add_block();
        g.set_terminator(e, Terminator::Jump(h, vec![]));
        let c = cond(&mut g, h);
        g.set_terminator(
            h,
            Terminator::Branch {
                cond: c,
                then_dest: (body, vec![]),
                else_dest: (exit, vec![]),
            },
        );
        g.set_terminator(body, Terminator::Jump(h, vec![]));
        g.set_terminator(exit, Terminator::Return(None));
        let lf = LoopForest::compute(&g);
        assert_eq!(lf.loops.len(), 1);
        let l = &lf.loops[0];
        assert_eq!(l.header, h);
        assert!(l.contains(body));
        assert!(!l.contains(e));
        assert!(!l.contains(exit));
        assert_eq!(lf.depth_of(body), 1);
        assert_eq!(lf.depth_of(e), 0);
    }

    #[test]
    fn nested_loops_have_depth_two() {
        let mut g = Graph::empty();
        let e = g.entry();
        let h1 = g.add_block();
        let h2 = g.add_block();
        let b2 = g.add_block();
        let exit1 = g.add_block();
        let exit = g.add_block();
        g.set_terminator(e, Terminator::Jump(h1, vec![]));
        let c1 = cond(&mut g, h1);
        g.set_terminator(
            h1,
            Terminator::Branch {
                cond: c1,
                then_dest: (h2, vec![]),
                else_dest: (exit, vec![]),
            },
        );
        let c2 = cond(&mut g, h2);
        g.set_terminator(
            h2,
            Terminator::Branch {
                cond: c2,
                then_dest: (b2, vec![]),
                else_dest: (exit1, vec![]),
            },
        );
        g.set_terminator(b2, Terminator::Jump(h2, vec![]));
        g.set_terminator(exit1, Terminator::Jump(h1, vec![]));
        g.set_terminator(exit, Terminator::Return(None));
        let lf = LoopForest::compute(&g);
        assert_eq!(lf.loops.len(), 2);
        assert_eq!(lf.depth_of(b2), 2);
        assert_eq!(lf.depth_of(h2), 2);
        assert_eq!(lf.depth_of(h1), 1);
        assert_eq!(lf.depth_of(exit), 0);
    }

    #[test]
    fn no_loops_in_dag() {
        let mut g = Graph::empty();
        let e = g.entry();
        g.set_terminator(e, Terminator::Return(None));
        let lf = LoopForest::compute(&g);
        assert!(lf.loops.is_empty());
    }
}
