//! The type system of the IR language.
//!
//! Types are deliberately small and `Copy`: primitive `int`/`float`/`bool`,
//! reference types `object(C)` for a class `C`, and one-dimensional arrays of
//! a primitive or object element. Subtyping exists only between object types
//! (single inheritance) and is resolved against a [`crate::Program`].

use std::fmt;

use crate::ids::ClassId;

/// Element type of an array (arrays do not nest).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ElemType {
    /// 64-bit signed integer element.
    Int,
    /// 64-bit IEEE-754 float element.
    Float,
    /// Boolean element.
    Bool,
    /// Reference element of the given class (or any subclass).
    Object(ClassId),
}

impl ElemType {
    /// The scalar [`Type`] stored in arrays of this element type.
    pub fn to_type(self) -> Type {
        match self {
            ElemType::Int => Type::Int,
            ElemType::Float => Type::Float,
            ElemType::Bool => Type::Bool,
            ElemType::Object(c) => Type::Object(c),
        }
    }
}

impl fmt::Display for ElemType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.to_type(), f)
    }
}

/// A value type in the IR.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// Boolean.
    Bool,
    /// Reference to an instance of the class or any of its subclasses.
    Object(ClassId),
    /// Reference to an array with the given element type.
    Array(ElemType),
}

impl Type {
    /// Whether this is a reference type (object or array), i.e. `null` is a
    /// valid value of it.
    pub fn is_reference(self) -> bool {
        matches!(self, Type::Object(_) | Type::Array(_))
    }

    /// Whether this is a primitive (non-reference) type.
    pub fn is_primitive(self) -> bool {
        !self.is_reference()
    }

    /// The class id if this is an object type.
    pub fn class(self) -> Option<ClassId> {
        match self {
            Type::Object(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Bool => write!(f, "bool"),
            Type::Object(c) => write!(f, "obj.{c}"),
            Type::Array(e) => write!(f, "[{e}]"),
        }
    }
}

/// Return type of a method: a value type or `void`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RetType {
    /// The method returns a value of the given type.
    Value(Type),
    /// The method returns no value.
    Void,
}

impl RetType {
    /// The value type, if any.
    pub fn value(self) -> Option<Type> {
        match self {
            RetType::Value(t) => Some(t),
            RetType::Void => None,
        }
    }
}

impl From<Type> for RetType {
    fn from(t: Type) -> Self {
        RetType::Value(t)
    }
}

impl fmt::Display for RetType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetType::Value(t) => fmt::Display::fmt(t, f),
            RetType::Void => write!(f, "void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_classification() {
        assert!(Type::Object(ClassId::new(0)).is_reference());
        assert!(Type::Array(ElemType::Int).is_reference());
        assert!(Type::Int.is_primitive());
        assert!(!Type::Bool.is_reference());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Type::Int.to_string(), "int");
        assert_eq!(Type::Array(ElemType::Float).to_string(), "[float]");
        assert_eq!(Type::Object(ClassId::new(3)).to_string(), "obj.c3");
        assert_eq!(RetType::Void.to_string(), "void");
    }

    #[test]
    fn elem_round_trip() {
        for e in [
            ElemType::Int,
            ElemType::Float,
            ElemType::Bool,
            ElemType::Object(ClassId::new(1)),
        ] {
            assert!(e.to_type().is_primitive() != matches!(e, ElemType::Object(_)));
        }
    }
}
