//! Shared scalar evaluation semantics.
//!
//! Constant folding (in `incline-opt`) and interpretation (in `incline-vm`)
//! must agree bit-for-bit on every scalar operation, or differential tests
//! between interpreted and compiled execution would produce false alarms.
//! Both therefore evaluate through this module.
//!
//! Semantics: 64-bit wrapping integer arithmetic, JVM-style masked shifts,
//! IEEE-754 doubles, saturating float→int conversion (NaN → 0).

use crate::graph::{BinOp, CmpOp};

/// Why a scalar operation failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrapKind {
    /// Integer division or remainder by zero.
    DivByZero,
    /// Null receiver or array.
    NullDeref,
    /// Array index out of bounds.
    Bounds,
    /// Failed checked cast.
    CastFailed,
    /// Negative array length.
    NegativeLength,
    /// A `deopt` terminator reached in a tier with nothing to fall back to
    /// (the interpreter executing hand-written IR that contains one).
    Deopt,
}

impl std::fmt::Display for TrapKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TrapKind::DivByZero => write!(f, "division by zero"),
            TrapKind::NullDeref => write!(f, "null dereference"),
            TrapKind::Bounds => write!(f, "array index out of bounds"),
            TrapKind::CastFailed => write!(f, "checked cast failed"),
            TrapKind::NegativeLength => write!(f, "negative array length"),
            TrapKind::Deopt => write!(f, "deopt trap outside compiled code"),
        }
    }
}

/// Evaluates an integer binary operation.
///
/// # Errors
///
/// Returns [`TrapKind::DivByZero`] for `IDiv`/`IRem` with a zero divisor.
pub fn eval_int_bin(op: BinOp, a: i64, b: i64) -> Result<i64, TrapKind> {
    Ok(match op {
        BinOp::IAdd => a.wrapping_add(b),
        BinOp::ISub => a.wrapping_sub(b),
        BinOp::IMul => a.wrapping_mul(b),
        BinOp::IDiv => {
            if b == 0 {
                return Err(TrapKind::DivByZero);
            }
            a.wrapping_div(b)
        }
        BinOp::IRem => {
            if b == 0 {
                return Err(TrapKind::DivByZero);
            }
            a.wrapping_rem(b)
        }
        BinOp::IAnd => a & b,
        BinOp::IOr => a | b,
        BinOp::IXor => a ^ b,
        BinOp::IShl => a.wrapping_shl((b & 63) as u32),
        BinOp::IShr => a.wrapping_shr((b & 63) as u32),
        _ => unreachable!("float op passed to eval_int_bin"),
    })
}

/// Evaluates a float binary operation.
pub fn eval_float_bin(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::FAdd => a + b,
        BinOp::FSub => a - b,
        BinOp::FMul => a * b,
        BinOp::FDiv => a / b,
        _ => unreachable!("int op passed to eval_float_bin"),
    }
}

/// Evaluates an integer comparison.
pub fn eval_int_cmp(op: CmpOp, a: i64, b: i64) -> bool {
    match op {
        CmpOp::IEq => a == b,
        CmpOp::INe => a != b,
        CmpOp::ILt => a < b,
        CmpOp::ILe => a <= b,
        CmpOp::IGt => a > b,
        CmpOp::IGe => a >= b,
        _ => unreachable!("non-int comparison passed to eval_int_cmp"),
    }
}

/// Evaluates a float comparison (IEEE: any comparison with NaN is false).
pub fn eval_float_cmp(op: CmpOp, a: f64, b: f64) -> bool {
    match op {
        CmpOp::FEq => a == b,
        CmpOp::FLt => a < b,
        CmpOp::FLe => a <= b,
        _ => unreachable!("non-float comparison passed to eval_float_cmp"),
    }
}

/// Float → int conversion: saturating, NaN → 0 (Rust `as` semantics).
pub fn float_to_int(f: f64) -> i64 {
    f as i64
}

/// Int → float conversion (nearest, ties to even — Rust `as` semantics).
pub fn int_to_float(k: i64) -> f64 {
    k as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapping_arithmetic() {
        assert_eq!(eval_int_bin(BinOp::IAdd, i64::MAX, 1), Ok(i64::MIN));
        assert_eq!(eval_int_bin(BinOp::IMul, i64::MAX, 2), Ok(-2));
        assert_eq!(eval_int_bin(BinOp::IDiv, i64::MIN, -1), Ok(i64::MIN));
    }

    #[test]
    fn division_traps() {
        assert_eq!(eval_int_bin(BinOp::IDiv, 5, 0), Err(TrapKind::DivByZero));
        assert_eq!(eval_int_bin(BinOp::IRem, 5, 0), Err(TrapKind::DivByZero));
        assert_eq!(eval_int_bin(BinOp::IRem, 7, 3), Ok(1));
        assert_eq!(eval_int_bin(BinOp::IRem, -7, 3), Ok(-1));
    }

    #[test]
    fn masked_shifts() {
        assert_eq!(eval_int_bin(BinOp::IShl, 1, 64), Ok(1)); // 64 & 63 == 0
        assert_eq!(eval_int_bin(BinOp::IShl, 1, 3), Ok(8));
        assert_eq!(eval_int_bin(BinOp::IShr, -8, 1), Ok(-4)); // arithmetic
    }

    #[test]
    fn float_conversions_saturate() {
        assert_eq!(float_to_int(f64::NAN), 0);
        assert_eq!(float_to_int(1e300), i64::MAX);
        assert_eq!(float_to_int(-1e300), i64::MIN);
        assert_eq!(float_to_int(2.9), 2);
        assert_eq!(float_to_int(-2.9), -2);
    }

    #[test]
    fn nan_comparisons_false() {
        assert!(!eval_float_cmp(CmpOp::FEq, f64::NAN, f64::NAN));
        assert!(!eval_float_cmp(CmpOp::FLt, f64::NAN, 1.0));
        assert!(eval_float_cmp(CmpOp::FLe, 1.0, 1.0));
    }
}
