//! Graphviz (DOT) export of control-flow graphs.
//!
//! `dot -Tsvg` renders the output; each basic block becomes a record node
//! listing its parameters, instructions and terminator, with edges labeled
//! by the block arguments they pass. Handy for debugging inlining results:
//!
//! ```
//! use incline_ir::{Program, FunctionBuilder, Type};
//!
//! let mut p = Program::new();
//! let m = p.declare_function("f", vec![Type::Int], Type::Int);
//! let mut fb = FunctionBuilder::new(&p, m);
//! let x = fb.param(0);
//! fb.ret(Some(x));
//! let g = fb.finish();
//! let dot = incline_ir::dot::graph_to_dot(&p, &g, "f");
//! assert!(dot.starts_with("digraph"));
//! ```

use std::fmt::Write as _;

use crate::graph::{Graph, Terminator};
use crate::print::inst_str;
use crate::program::Program;

/// Escapes a label for DOT record syntax.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('{', "\\{")
        .replace('}', "\\}")
        .replace('<', "\\<")
        .replace('>', "\\>")
        .replace('|', "\\|")
}

/// Renders the reachable CFG of `graph` as a DOT digraph named `name`.
pub fn graph_to_dot(program: &Program, graph: &Graph, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(name));
    let _ = writeln!(
        out,
        "  node [shape=record, fontname=\"monospace\", fontsize=10];"
    );
    for b in graph.reachable_blocks() {
        let bd = graph.block(b);
        let params = bd
            .params
            .iter()
            .map(|&p| {
                format!(
                    "{p}: {}",
                    crate::print::type_str(program, graph.value_type(p))
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let mut lines = vec![format!("{b}({params})")];
        for &i in &bd.insts {
            lines.push(inst_str(program, graph, i));
        }
        let term = match &bd.term {
            Terminator::Jump(d, _) => format!("jump {d}"),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => {
                format!("br {cond} ? {} : {}", then_dest.0, else_dest.0)
            }
            Terminator::Return(Some(v)) => format!("ret {v}"),
            Terminator::Return(None) => "ret".to_string(),
            Terminator::Deopt { reason } => format!("deopt {reason}"),
            Terminator::Unterminated => "<unterminated>".to_string(),
        };
        lines.push(term);
        let label = lines
            .iter()
            .map(|l| escape(l))
            .collect::<Vec<_>>()
            .join("\\l");
        let _ = writeln!(out, "  {b} [label=\"{label}\\l\"];");
        match &bd.term {
            Terminator::Jump(d, args) => {
                let _ = writeln!(
                    out,
                    "  {b} -> {d} [label=\"{}\"];",
                    escape(&args_label(args))
                );
            }
            Terminator::Branch {
                then_dest,
                else_dest,
                ..
            } => {
                let _ = writeln!(
                    out,
                    "  {b} -> {} [label=\"T {}\", color=darkgreen];",
                    then_dest.0,
                    escape(&args_label(&then_dest.1))
                );
                let _ = writeln!(
                    out,
                    "  {b} -> {} [label=\"F {}\", color=crimson];",
                    else_dest.0,
                    escape(&args_label(&else_dest.1))
                );
            }
            _ => {}
        }
    }
    out.push_str("}\n");
    out
}

fn args_label(args: &[crate::ids::ValueId]) -> String {
    if args.is_empty() {
        String::new()
    } else {
        format!(
            "({})",
            args.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::{CmpOp, Type};

    #[test]
    fn emits_blocks_and_edges() {
        let mut p = Program::new();
        let m = p.declare_function("max0", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let c = fb.cmp(CmpOp::ILt, x, zero);
        let (j, jp) = fb.add_block_with_params(&[Type::Int]);
        fb.branch(c, (j, vec![zero]), (j, vec![x]));
        fb.switch_to(j);
        fb.ret(Some(jp[0]));
        let g = fb.finish();
        let dot = graph_to_dot(&p, &g, "max0");
        assert!(dot.contains("digraph \"max0\""));
        assert!(dot.contains("b0 ["), "{dot}");
        assert!(dot.contains("b0 -> b1 [label=\"T (v1)\""), "{dot}");
        assert!(dot.contains("b0 -> b1 [label=\"F (v0)\""), "{dot}");
        assert!(dot.contains("ilt"), "{dot}");
        // Balanced braces.
        assert_eq!(dot.matches("digraph").count(), 1);
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn escapes_special_characters() {
        assert_eq!(escape("a|b"), "a\\|b");
        assert_eq!(escape("{x}"), "\\{x\\}");
        assert_eq!(escape("\"q\""), "\\\"q\\\"");
    }
}
