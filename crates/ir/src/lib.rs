#![warn(missing_docs)]

//! # incline-ir
//!
//! The IR substrate of the *incline* project — a reproduction of
//! “An Optimization-Driven Incremental Inline Substitution Algorithm for
//! Just-in-Time Compilers” (Prokopec et al., CGO 2019).
//!
//! The crate provides everything a JIT inliner needs from its compiler IR:
//!
//! * a small object-oriented program model ([`Program`]: classes with single
//!   inheritance, fields, virtual dispatch through interned selectors),
//! * an SSA-style graph IR with block parameters ([`Graph`], [`Op`]),
//! * a typed [`FunctionBuilder`],
//! * a structural/type/dominance [`verify`]-er,
//! * dominator and natural-loop analyses ([`dom`], [`loops`]),
//! * the inline-substitution primitive itself ([`inline::inline_call`]),
//! * a text format with printer and parser ([`mod@print`], [`parse`]).
//!
//! ```
//! use incline_ir::{Program, FunctionBuilder, Type};
//!
//! let mut p = Program::new();
//! let m = p.declare_function("inc", vec![Type::Int], Type::Int);
//! let mut fb = FunctionBuilder::new(&p, m);
//! let x = fb.param(0);
//! let one = fb.const_int(1);
//! let r = fb.iadd(x, one);
//! fb.ret(Some(r));
//! let body = fb.finish();
//! p.define_method(m, body);
//! assert_eq!(p.method(m).graph.size(), 4);
//! ```

pub mod builder;
pub mod dom;
pub mod dot;
pub mod eval;
pub mod graph;
pub mod ids;
pub mod inline;
pub mod loops;
pub mod parse;
pub mod print;
pub mod program;
pub mod rng;
pub mod types;
pub mod verify;

pub use builder::FunctionBuilder;
pub use graph::{
    BinOp, CallInfo, CallTarget, CmpOp, DeoptReason, Graph, GraphPool, InstData, Op,
    StructuralHasher, Terminator, ValueDef,
};
pub use ids::{BlockId, CallSiteId, ClassId, FieldId, InstId, MethodId, SelectorId, ValueId};
pub use program::{Class, Field, Method, MethodKind, Program, Selector};
pub use rng::Rng64;
pub use types::{ElemType, RetType, Type};
