//! Parser for the textual IR format produced by [`crate::print`].
//!
//! The parser performs two passes so that bodies may reference methods and
//! selectors declared later in the file: first all classes, fields and
//! method signatures are registered, then bodies are parsed.
//!
//! ```
//! let src = r#"
//! fn inc(int) -> int {
//! b0(v0: int):
//!   v1 = const.int 1
//!   v2 = iadd v0, v1
//!   ret v2
//! }
//! "#;
//! let program = incline_ir::parse::parse_program(src)?;
//! let m = program.function_by_name("inc").unwrap();
//! assert_eq!(program.method(m).graph.size(), 4);
//! # Ok::<(), incline_ir::parse::ParseError>(())
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::graph::{BinOp, CallInfo, CallTarget, CmpOp, DeoptReason, Graph, Op, Terminator};
use crate::ids::{BlockId, CallSiteId, MethodId, ValueId};
use crate::program::Program;
use crate::types::{RetType, Type};

/// A parse failure with source position.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl Error for ParseError {}

// ---- lexer ------------------------------------------------------------

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Float(f64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Colon,
    ColonColon,
    Comma,
    Dot,
    Eq,
    Arrow,
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(k) => write!(f, "integer {k}"),
            Tok::Float(k) => write!(f, "float {k}"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::ColonColon => write!(f, "`::`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

#[derive(Clone, Debug)]
struct Spanned {
    tok: Tok,
    line: u32,
    col: u32,
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    let mut line = 1u32;
    let mut col = 1u32;
    let err = |line: u32, col: u32, m: String| ParseError {
        line,
        col,
        message: m,
    };

    while i < bytes.len() {
        let c = bytes[i] as char;
        let (tl, tc) = (line, col);
        let mut push = |tok: Tok| {
            out.push(Spanned {
                tok,
                line: tl,
                col: tc,
            })
        };
        match c {
            '\n' => {
                line += 1;
                col = 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '#' | ';' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '{' => {
                push(Tok::LBrace);
                i += 1;
                col += 1;
            }
            '}' => {
                push(Tok::RBrace);
                i += 1;
                col += 1;
            }
            '(' => {
                push(Tok::LParen);
                i += 1;
                col += 1;
            }
            ')' => {
                push(Tok::RParen);
                i += 1;
                col += 1;
            }
            '[' => {
                push(Tok::LBracket);
                i += 1;
                col += 1;
            }
            ']' => {
                push(Tok::RBracket);
                i += 1;
                col += 1;
            }
            ',' => {
                push(Tok::Comma);
                i += 1;
                col += 1;
            }
            '.' => {
                push(Tok::Dot);
                i += 1;
                col += 1;
            }
            '=' => {
                push(Tok::Eq);
                i += 1;
                col += 1;
            }
            ':' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b':' {
                    push(Tok::ColonColon);
                    i += 2;
                    col += 2;
                } else {
                    push(Tok::Colon);
                    i += 1;
                    col += 1;
                }
            }
            '-' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push(Tok::Arrow);
                    i += 2;
                    col += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
                    let (tok, len) = lex_number(&src[i..]).map_err(|m| err(line, col, m))?;
                    push(tok);
                    i += len;
                    col += len as u32;
                } else {
                    return Err(err(line, col, "unexpected `-`".to_string()));
                }
            }
            c if c.is_ascii_digit() => {
                let (tok, len) = lex_number(&src[i..]).map_err(|m| err(line, col, m))?;
                push(tok);
                i += len;
                col += len as u32;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '$' => {
                let start = i;
                while i < bytes.len() {
                    let c = bytes[i] as char;
                    if c.is_ascii_alphanumeric() || c == '_' || c == '$' {
                        i += 1;
                    } else {
                        break;
                    }
                }
                let word = &src[start..i];
                col += (i - start) as u32;
                match word {
                    "NaN" => push(Tok::Float(f64::NAN)),
                    "inf" => push(Tok::Float(f64::INFINITY)),
                    _ => push(Tok::Ident(word.to_string())),
                }
            }
            other => return Err(err(line, col, format!("unexpected character `{other}`"))),
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

fn lex_number(rest: &str) -> Result<(Tok, usize), String> {
    let bytes = rest.as_bytes();
    let mut i = 0;
    if bytes[0] == b'-' {
        i += 1;
    }
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit() {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    let text = &rest[..i];
    if is_float {
        text.parse::<f64>()
            .map(|f| (Tok::Float(f), i))
            .map_err(|e| e.to_string())
    } else {
        text.parse::<i64>()
            .map(|k| (Tok::Int(k), i))
            .map_err(|e| e.to_string())
    }
}

// ---- parser -----------------------------------------------------------

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn here(&self) -> (u32, u32) {
        (self.toks[self.pos].line, self.toks[self.pos].col)
    }

    fn fail<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        let (line, col) = self.here();
        Err(ParseError {
            line,
            col,
            message: message.into(),
        })
    }

    fn expect(&mut self, want: Tok) -> Result<(), ParseError> {
        if *self.peek() == want {
            self.next();
            Ok(())
        } else {
            self.fail(format!("expected {want}, found {}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.fail(format!("expected identifier, found {other}")),
        }
    }

    fn eat_ident(&mut self, word: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == word) {
            self.next();
            true
        } else {
            false
        }
    }
}

/// Parses a whole program from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input,
/// references to unknown classes/fields/methods, or duplicate definitions.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut program = Program::new();

    // Pass 1: signatures. Remember (method, body-token-start) pairs.
    let mut bodies: Vec<(MethodId, usize)> = Vec::new();
    loop {
        match p.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(w) if w == "class" => parse_class(&mut p, &mut program)?,
            Tok::Ident(w) if w == "fn" || w == "method" || w == "opaque" => {
                let (m, body_start) = parse_signature(&mut p, &mut program)?;
                bodies.push((m, body_start));
                skip_body(&mut p)?;
            }
            other => return p.fail(format!("expected `class`, `fn` or `method`, found {other}")),
        }
    }

    // Pass 2: bodies.
    for (m, start) in bodies {
        p.pos = start;
        let graph = parse_body(&mut p, &program, m)?;
        program.define_method(m, graph);
    }
    Ok(program)
}

fn parse_class(p: &mut Parser, program: &mut Program) -> Result<(), ParseError> {
    p.expect(Tok::Ident("class".into()))?;
    let name = p.ident()?;
    let parent = if *p.peek() == Tok::Colon {
        p.next();
        let pname = p.ident()?;
        match program.class_by_name(&pname) {
            Some(c) => Some(c),
            None => return p.fail(format!("unknown parent class `{pname}`")),
        }
    } else {
        None
    };
    if program.class_by_name(&name).is_some() {
        return p.fail(format!("duplicate class `{name}`"));
    }
    let class = program.add_class(name, parent);
    if *p.peek() == Tok::LBrace {
        p.next();
        while p.eat_ident("field") {
            let fname = p.ident()?;
            p.expect(Tok::Colon)?;
            let ty = parse_type(p, program)?;
            program.add_field(class, fname, ty);
        }
        p.expect(Tok::RBrace)?;
    }
    Ok(())
}

fn parse_type(p: &mut Parser, program: &Program) -> Result<Type, ParseError> {
    if *p.peek() == Tok::LBracket {
        p.next();
        let inner = parse_type(p, program)?;
        p.expect(Tok::RBracket)?;
        let elem = match inner {
            Type::Int => crate::types::ElemType::Int,
            Type::Float => crate::types::ElemType::Float,
            Type::Bool => crate::types::ElemType::Bool,
            Type::Object(c) => crate::types::ElemType::Object(c),
            Type::Array(_) => return p.fail("arrays do not nest"),
        };
        return Ok(Type::Array(elem));
    }
    let name = p.ident()?;
    match name.as_str() {
        "int" => Ok(Type::Int),
        "float" => Ok(Type::Float),
        "bool" => Ok(Type::Bool),
        _ => match program.class_by_name(&name) {
            Some(c) => Ok(Type::Object(c)),
            None => p.fail(format!("unknown type `{name}`")),
        },
    }
}

fn parse_ret_type(p: &mut Parser, program: &Program) -> Result<RetType, ParseError> {
    if p.eat_ident("void") {
        Ok(RetType::Void)
    } else {
        Ok(RetType::Value(parse_type(p, program)?))
    }
}

/// Parses `fn name(types) -> ret {` or `method Class.name(types) -> ret {`
/// and returns the declared method plus the token index of the body.
fn parse_signature(p: &mut Parser, program: &mut Program) -> Result<(MethodId, usize), ParseError> {
    let opaque = p.eat_ident("opaque");
    let (holder, name) = if p.eat_ident("fn") {
        (None, p.ident()?)
    } else if p.eat_ident("method") {
        let cname = p.ident()?;
        let Some(c) = program.class_by_name(&cname) else {
            return p.fail(format!("unknown class `{cname}`"));
        };
        p.expect(Tok::Dot)?;
        (Some(c), p.ident()?)
    } else {
        return p.fail("expected `fn` or `method`");
    };
    p.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if *p.peek() != Tok::RParen {
        loop {
            params.push(parse_type(p, program)?);
            if *p.peek() == Tok::Comma {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::Arrow)?;
    let ret = parse_ret_type(p, program)?;
    let m = match holder {
        None => {
            if program.function_by_name(&name).is_some() {
                return p.fail(format!("duplicate function `{name}`"));
            }
            program.declare_function(name, params, ret)
        }
        Some(c) => {
            if params.first() != Some(&Type::Object(c)) {
                return p.fail("method's first parameter must be the receiver of the holder class");
            }
            program.declare_method(c, name, params[1..].to_vec(), ret)
        }
    };
    if opaque {
        program.set_opaque(m);
    }
    p.expect(Tok::LBrace)?;
    Ok((m, p.pos))
}

/// Skips over a body (from just after `{` to just after the matching `}`).
fn skip_body(p: &mut Parser) -> Result<(), ParseError> {
    let mut depth = 1usize;
    loop {
        match p.peek() {
            Tok::LBrace => depth += 1,
            Tok::RBrace => {
                depth -= 1;
                if depth == 0 {
                    p.next();
                    return Ok(());
                }
            }
            Tok::Eof => return p.fail("unterminated body"),
            _ => {}
        }
        p.next();
    }
}

struct BodyCx<'a> {
    program: &'a Program,
    method: MethodId,
    graph: Graph,
    blocks: HashMap<String, BlockId>,
    values: HashMap<String, ValueId>,
    next_site: u32,
    first_block: bool,
}

impl<'a> BodyCx<'a> {
    fn block(&mut self, label: &str) -> BlockId {
        if self.first_block {
            // First mentioned block is the entry.
            self.first_block = false;
            let e = self.graph.entry();
            self.blocks.insert(label.to_string(), e);
            return e;
        }
        if let Some(&b) = self.blocks.get(label) {
            return b;
        }
        let b = self.graph.add_block();
        self.blocks.insert(label.to_string(), b);
        b
    }

    fn value(&self, p: &Parser, name: &str) -> Result<ValueId, ParseError> {
        match self.values.get(name) {
            Some(&v) => Ok(v),
            None => p.fail(format!("use of undefined value `{name}`")),
        }
    }

    fn fresh_site(&mut self) -> CallSiteId {
        let s = CallSiteId {
            method: self.method,
            index: self.next_site,
        };
        self.next_site += 1;
        s
    }
}

fn parse_body(p: &mut Parser, program: &Program, method: MethodId) -> Result<Graph, ParseError> {
    let mut cx = BodyCx {
        program,
        method,
        graph: Graph::empty(),
        blocks: HashMap::new(),
        values: HashMap::new(),
        next_site: 0,
        first_block: true,
    };
    // Block headers until `}`.
    while *p.peek() != Tok::RBrace {
        parse_block(p, &mut cx)?;
    }
    p.expect(Tok::RBrace)?;
    if cx.first_block {
        return p.fail("method body has no blocks");
    }
    Ok(cx.graph)
}

fn parse_block(p: &mut Parser, cx: &mut BodyCx<'_>) -> Result<(), ParseError> {
    let label = p.ident()?;
    let block = cx.block(&label);
    p.expect(Tok::LParen)?;
    if *p.peek() != Tok::RParen {
        loop {
            let vname = p.ident()?;
            p.expect(Tok::Colon)?;
            let ty = parse_type(p, cx.program)?;
            let v = cx.graph.add_block_param(block, ty);
            if cx.values.insert(vname.clone(), v).is_some() {
                return p.fail(format!("duplicate value `{vname}`"));
            }
            if *p.peek() == Tok::Comma {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    p.expect(Tok::Colon)?;

    loop {
        let word = match p.peek().clone() {
            Tok::Ident(w) => w,
            other => return p.fail(format!("expected instruction, found {other}")),
        };
        match word.as_str() {
            "jump" => {
                p.next();
                let (dest, args) = parse_edge(p, cx)?;
                cx.graph.set_terminator(block, Terminator::Jump(dest, args));
                return Ok(());
            }
            "br" => {
                p.next();
                let cname = p.ident()?;
                let cond = cx.value(p, &cname)?;
                p.expect(Tok::Comma)?;
                let then_dest = parse_edge(p, cx)?;
                p.expect(Tok::Comma)?;
                let else_dest = parse_edge(p, cx)?;
                cx.graph.set_terminator(
                    block,
                    Terminator::Branch {
                        cond,
                        then_dest,
                        else_dest,
                    },
                );
                return Ok(());
            }
            "deopt" => {
                p.next();
                let rname = p.ident()?;
                let reason = match DeoptReason::from_label(&rname) {
                    Some(r) => r,
                    None => return p.fail(format!("unknown deopt reason `{rname}`")),
                };
                cx.graph.set_terminator(block, Terminator::Deopt { reason });
                return Ok(());
            }
            "ret" => {
                p.next();
                let v = match p.peek().clone() {
                    Tok::Ident(name) if cx.values.contains_key(&name) => {
                        p.next();
                        Some(cx.values[&name])
                    }
                    _ => None,
                };
                cx.graph.set_terminator(block, Terminator::Return(v));
                return Ok(());
            }
            _ => parse_inst(p, cx, block)?,
        }
    }
}

fn parse_edge(p: &mut Parser, cx: &mut BodyCx<'_>) -> Result<(BlockId, Vec<ValueId>), ParseError> {
    let label = p.ident()?;
    let dest = cx.block(&label);
    p.expect(Tok::LParen)?;
    let mut args = Vec::new();
    if *p.peek() != Tok::RParen {
        loop {
            let vname = p.ident()?;
            args.push(cx.value(p, &vname)?);
            if *p.peek() == Tok::Comma {
                p.next();
            } else {
                break;
            }
        }
    }
    p.expect(Tok::RParen)?;
    Ok((dest, args))
}

fn parse_value_list(p: &mut Parser, cx: &BodyCx<'_>) -> Result<Vec<ValueId>, ParseError> {
    let mut args = Vec::new();
    loop {
        let vname = p.ident()?;
        args.push(cx.value(p, &vname)?);
        if *p.peek() == Tok::Comma {
            p.next();
        } else {
            break;
        }
    }
    Ok(args)
}

fn parse_paren_values(p: &mut Parser, cx: &BodyCx<'_>) -> Result<Vec<ValueId>, ParseError> {
    p.expect(Tok::LParen)?;
    let args = if *p.peek() != Tok::RParen {
        parse_value_list(p, cx)?
    } else {
        Vec::new()
    };
    p.expect(Tok::RParen)?;
    Ok(args)
}

fn bin_op(name: &str) -> Option<BinOp> {
    Some(match name {
        "iadd" => BinOp::IAdd,
        "isub" => BinOp::ISub,
        "imul" => BinOp::IMul,
        "idiv" => BinOp::IDiv,
        "irem" => BinOp::IRem,
        "iand" => BinOp::IAnd,
        "ior" => BinOp::IOr,
        "ixor" => BinOp::IXor,
        "ishl" => BinOp::IShl,
        "ishr" => BinOp::IShr,
        "fadd" => BinOp::FAdd,
        "fsub" => BinOp::FSub,
        "fmul" => BinOp::FMul,
        "fdiv" => BinOp::FDiv,
        _ => return None,
    })
}

fn cmp_op(name: &str) -> Option<CmpOp> {
    Some(match name {
        "ieq" => CmpOp::IEq,
        "ine" => CmpOp::INe,
        "ilt" => CmpOp::ILt,
        "ile" => CmpOp::ILe,
        "igt" => CmpOp::IGt,
        "ige" => CmpOp::IGe,
        "feq" => CmpOp::FEq,
        "flt" => CmpOp::FLt,
        "fle" => CmpOp::FLe,
        "refeq" => CmpOp::RefEq,
        _ => return None,
    })
}

fn parse_inst(p: &mut Parser, cx: &mut BodyCx<'_>, block: BlockId) -> Result<(), ParseError> {
    // Either `v = op ...` or a void op.
    let first = p.ident()?;
    let (result_name, opname) = if *p.peek() == Tok::Eq {
        p.next();
        (Some(first), p.ident()?)
    } else {
        (None, first)
    };

    let program = cx.program;
    let define = |cx: &mut BodyCx<'_>,
                  op: Op,
                  args: Vec<ValueId>,
                  ty: Option<Type>,
                  p: &Parser|
     -> Result<(), ParseError> {
        let (_, res) = cx.graph.append(block, op, args, ty);
        match (&result_name, res) {
            (Some(name), Some(v)) => {
                if cx.values.insert(name.clone(), v).is_some() {
                    return p.fail(format!("duplicate value `{name}`"));
                }
                Ok(())
            }
            (None, None) => Ok(()),
            (Some(_), None) => p.fail("operation produces no result"),
            (None, Some(_)) => p.fail("operation result must be named"),
        }
    };

    match opname.as_str() {
        "const" => {
            p.expect(Tok::Dot)?;
            let kind = p.ident()?;
            match kind.as_str() {
                "int" => {
                    let k = match p.next().tok {
                        Tok::Int(k) => k,
                        other => return p.fail(format!("expected integer, found {other}")),
                    };
                    define(cx, Op::ConstInt(k), vec![], Some(Type::Int), p)
                }
                "float" => {
                    let k = match p.next().tok {
                        Tok::Float(f) => f,
                        Tok::Int(k) => k as f64,
                        other => return p.fail(format!("expected float, found {other}")),
                    };
                    define(
                        cx,
                        Op::ConstFloat(k.to_bits()),
                        vec![],
                        Some(Type::Float),
                        p,
                    )
                }
                "bool" => {
                    let b = if p.eat_ident("true") {
                        true
                    } else if p.eat_ident("false") {
                        false
                    } else {
                        return p.fail("expected `true` or `false`");
                    };
                    define(cx, Op::ConstBool(b), vec![], Some(Type::Bool), p)
                }
                "null" => {
                    let ty = parse_type(p, program)?;
                    if !ty.is_reference() {
                        return p.fail("const.null requires a reference type");
                    }
                    define(cx, Op::ConstNull(ty), vec![], Some(ty), p)
                }
                other => p.fail(format!("unknown constant kind `{other}`")),
            }
        }
        name if bin_op(name).is_some() => {
            let op = bin_op(name).unwrap();
            let args = parse_value_list(p, cx)?;
            define(cx, Op::Bin(op), args, Some(op.result_type()), p)
        }
        name if cmp_op(name).is_some() => {
            let op = cmp_op(name).unwrap();
            let args = parse_value_list(p, cx)?;
            define(cx, Op::Cmp(op), args, Some(Type::Bool), p)
        }
        "not" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::Not, args, Some(Type::Bool), p)
        }
        "ineg" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::INeg, args, Some(Type::Int), p)
        }
        "fneg" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::FNeg, args, Some(Type::Float), p)
        }
        "i2f" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::IntToFloat, args, Some(Type::Float), p)
        }
        "f2i" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::FloatToInt, args, Some(Type::Int), p)
        }
        "new" => {
            let cname = p.ident()?;
            let Some(c) = program.class_by_name(&cname) else {
                return p.fail(format!("unknown class `{cname}`"));
            };
            define(cx, Op::New(c), vec![], Some(Type::Object(c)), p)
        }
        "getfield" | "setfield" => {
            let cname = p.ident()?;
            let Some(c) = program.class_by_name(&cname) else {
                return p.fail(format!("unknown class `{cname}`"));
            };
            p.expect(Tok::Dot)?;
            let fname = p.ident()?;
            let Some(f) = program.field_by_name(c, &fname) else {
                return p.fail(format!("unknown field `{cname}.{fname}`"));
            };
            let args = parse_value_list(p, cx)?;
            if opname == "getfield" {
                let ty = program.field(f).ty;
                define(cx, Op::GetField(f), args, Some(ty), p)
            } else {
                define(cx, Op::SetField(f), args, None, p)
            }
        }
        "newarray" => {
            let ty = parse_type(p, program)?;
            let elem = match ty {
                Type::Int => crate::types::ElemType::Int,
                Type::Float => crate::types::ElemType::Float,
                Type::Bool => crate::types::ElemType::Bool,
                Type::Object(c) => crate::types::ElemType::Object(c),
                Type::Array(_) => return p.fail("arrays do not nest"),
            };
            p.expect(Tok::Comma)?;
            let args = parse_value_list(p, cx)?;
            define(cx, Op::NewArray(elem), args, Some(Type::Array(elem)), p)
        }
        "aget" => {
            let args = parse_value_list(p, cx)?;
            let Some(&arr) = args.first() else {
                return p.fail("aget needs operands");
            };
            let Type::Array(e) = cx.graph.value_type(arr) else {
                return p.fail("aget on non-array value");
            };
            define(cx, Op::ArrayGet, args, Some(e.to_type()), p)
        }
        "aset" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::ArraySet, args, None, p)
        }
        "alen" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::ArrayLen, args, Some(Type::Int), p)
        }
        "call" => {
            let name = p.ident()?;
            let target = if *p.peek() == Tok::ColonColon {
                p.next();
                let mname = p.ident()?;
                let Some(c) = program.class_by_name(&name) else {
                    return p.fail(format!("unknown class `{name}`"));
                };
                let found = program.method_ids().find(|&m| {
                    let md = program.method(m);
                    md.holder == Some(c) && md.name == mname
                });
                match found {
                    Some(m) => m,
                    None => return p.fail(format!("unknown method `{name}::{mname}`")),
                }
            } else {
                match program.function_by_name(&name) {
                    Some(m) => m,
                    None => return p.fail(format!("unknown function `{name}`")),
                }
            };
            let args = parse_paren_values(p, cx)?;
            let site = cx.fresh_site();
            let ret = program.method(target).ret.value();
            define(
                cx,
                Op::Call(CallInfo {
                    target: CallTarget::Static(target),
                    site,
                }),
                args,
                ret,
                p,
            )
        }
        "callv" => {
            let name = p.ident()?;
            let args = parse_paren_values(p, cx)?;
            let Some(sel) = program.selector_by_name(&name, args.len()) else {
                return p.fail(format!("unknown selector `{name}/{}`", args.len()));
            };
            let decl = program
                .method_ids()
                .find(|&m| program.method(m).selector == Some(sel));
            let Some(decl) = decl else {
                return p.fail(format!("no method declares selector `{name}`"));
            };
            let site = cx.fresh_site();
            let ret = program.method(decl).ret.value();
            define(
                cx,
                Op::Call(CallInfo {
                    target: CallTarget::Virtual(sel),
                    site,
                }),
                args,
                ret,
                p,
            )
        }
        "instanceof" | "cast" => {
            let cname = p.ident()?;
            let Some(c) = program.class_by_name(&cname) else {
                return p.fail(format!("unknown class `{cname}`"));
            };
            let args = parse_value_list(p, cx)?;
            if opname == "instanceof" {
                define(cx, Op::InstanceOf(c), args, Some(Type::Bool), p)
            } else {
                define(cx, Op::Cast(c), args, Some(Type::Object(c)), p)
            }
        }
        "print" => {
            let args = parse_value_list(p, cx)?;
            define(cx, Op::Print, args, None, p)
        }
        other => p.fail(format!("unknown instruction `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::print::program_str;
    use crate::verify;

    fn round_trip(src: &str) -> Program {
        let p = parse_program(src).expect("parse");
        for m in p.method_ids() {
            verify::verify(&p, p.method(m)).expect("verify parsed program");
        }
        p
    }

    #[test]
    fn parses_simple_function() {
        let p = round_trip(
            "fn inc(int) -> int {\nb0(v0: int):\n  v1 = const.int 1\n  v2 = iadd v0, v1\n  ret v2\n}\n",
        );
        let m = p.function_by_name("inc").unwrap();
        assert_eq!(p.method(m).graph.size(), 4);
    }

    #[test]
    fn parses_classes_methods_and_virtual_calls() {
        let src = r#"
class Shape
class Circle : Shape {
  field r: float
}

method Shape.area(Shape) -> float {
b0(v0: Shape):
  v1 = const.float 0.0
  ret v1
}

method Circle.area(Circle) -> float {
b0(v0: Circle):
  v1 = getfield Circle.r v0
  v2 = fmul v1, v1
  ret v2
}

fn total(Shape) -> float {
b0(v0: Shape):
  v1 = callv area(v0)
  ret v1
}
"#;
        let p = round_trip(src);
        let total = p.function_by_name("total").unwrap();
        assert_eq!(p.method(total).graph.callsites().len(), 1);
        let circle = p.class_by_name("Circle").unwrap();
        let sel = p.selector_by_name("area", 1).unwrap();
        assert!(p.resolve(circle, sel).is_some());
    }

    #[test]
    fn parses_loops_with_forward_block_refs() {
        let src = r#"
fn sum(int) -> int {
b0(v0: int):
  v1 = const.int 0
  jump b1(v1, v1)
b1(v2: int, v3: int):
  v4 = ilt v2, v0
  br v4, b2(), b3()
b2():
  v5 = const.int 1
  v6 = iadd v2, v5
  v7 = iadd v3, v2
  jump b1(v6, v7)
b3():
  ret v3
}
"#;
        let p = round_trip(src);
        let m = p.function_by_name("sum").unwrap();
        assert_eq!(
            crate::loops::LoopForest::compute(&p.method(m).graph)
                .loops
                .len(),
            1
        );
    }

    #[test]
    fn print_parse_fixpoint() {
        let src = r#"
class Base
class Impl : Base {
  field n: int
}

method Base.get(Base) -> int {
b0(v0: Base):
  v1 = const.int -1
  ret v1
}

method Impl.get(Impl) -> int {
b0(v0: Impl):
  v1 = getfield Impl.n v0
  ret v1
}

opaque fn sink(int) -> void {
b0(v0: int):
  print v0
  ret
}

fn main(int) -> int {
b0(v0: int):
  v1 = new Impl
  v2 = instanceof Impl v1
  v3 = callv get(v1)
  call sink(v3)
  v4 = newarray int, v0
  v5 = alen v4
  v6 = const.float 1.5
  v7 = f2i v6
  v8 = iadd v5, v7
  ret v8
}
"#;
        let p1 = round_trip(src);
        let s1 = program_str(&p1);
        let p2 = parse_program(&s1).expect("reparse");
        let s2 = program_str(&p2);
        assert_eq!(s1, s2, "printer/parser fixpoint");
    }

    #[test]
    fn error_on_unknown_value() {
        let e = parse_program("fn f() -> void {\nb0():\n  print v9\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("undefined value"), "{e}");
        assert!(e.line >= 3);
    }

    #[test]
    fn error_on_unknown_class() {
        let e = parse_program("fn f() -> void {\nb0():\n  v0 = new Ghost\n  ret\n}\n").unwrap_err();
        assert!(e.message.contains("unknown class"), "{e}");
    }

    #[test]
    fn error_on_duplicate_value() {
        let e = parse_program(
            "fn f() -> void {\nb0():\n  v0 = const.int 1\n  v0 = const.int 2\n  ret\n}\n",
        )
        .unwrap_err();
        assert!(e.message.contains("duplicate value"), "{e}");
    }

    #[test]
    fn comments_are_ignored() {
        let p = round_trip(
            "# a comment\nfn f() -> int { ; another\nb0():\n  v0 = const.int 3\n  ret v0\n}\n",
        );
        assert!(p.function_by_name("f").is_some());
    }

    #[test]
    fn negative_and_scientific_literals() {
        let p = round_trip(
            "fn f() -> float {\nb0():\n  v0 = const.int -5\n  v1 = const.float -2.5e3\n  v2 = const.float 1e-2\n  v3 = fadd v1, v2\n  ret v3\n}\n",
        );
        let m = p.function_by_name("f").unwrap();
        let g = &p.method(m).graph;
        assert_eq!(g.as_const_float(crate::ids::ValueId::new(1)), Some(-2500.0));
    }
}
