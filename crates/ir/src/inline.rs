//! The inline substitution itself: transplanting a callee graph into a
//! caller at a callsite.
//!
//! [`inline_call`] implements the paper's `inlineIR` primitive (Listing 5):
//! the block containing the call is split, the callee's blocks are cloned
//! into the caller with all values remapped, the callee's entry receives the
//! call arguments, and every `return` becomes a jump to the continuation
//! block. Callsite ids inside the callee are preserved, so profiles keep
//! working after arbitrarily deep inlining.

use std::collections::HashMap;

use crate::graph::{Graph, Op, Terminator};
use crate::ids::{BlockId, InstId, ValueId};

/// Maps from callee entities to their clones in the caller.
#[derive(Clone, Debug)]
pub struct InlineResult {
    /// Callee block → caller block.
    pub block_map: HashMap<BlockId, BlockId>,
    /// Callee value → caller value.
    pub value_map: HashMap<ValueId, ValueId>,
    /// Callee instruction → caller instruction (inliners use this to
    /// re-anchor call-tree children onto the transplanted callsites).
    pub inst_map: HashMap<InstId, InstId>,
    /// The cloned entry block of the callee.
    pub inlined_entry: BlockId,
    /// The continuation block holding the code that followed the call.
    pub continuation: BlockId,
}

/// Inlines `callee` at the call instruction `call` inside `block` of
/// `caller`.
///
/// The call's result value (if any) is replaced by a parameter of the
/// continuation block, fed by every `return` in the callee.
///
/// # Panics
///
/// Panics if `call` is not a call instruction inside `block`, or if the
/// callee entry's parameter count differs from the call's argument count.
pub fn inline_call(
    caller: &mut Graph,
    block: BlockId,
    call: InstId,
    callee: &Graph,
) -> InlineResult {
    let pos = caller
        .block(block)
        .insts
        .iter()
        .position(|&i| i == call)
        .expect("call instruction must be inside the given block");
    assert!(
        matches!(caller.inst(call).op, Op::Call(_)),
        "inline_call target must be a call instruction"
    );
    let call_args: Vec<ValueId> = caller.inst(call).args.clone();
    let call_result = caller.inst(call).result;
    assert_eq!(
        callee.block(callee.entry()).params.len(),
        call_args.len(),
        "callee entry params must match call arity"
    );

    // --- split the caller block: [pre | call | post] -----------------------
    let continuation = caller.add_block();
    let cont_param = call_result.map(|r| {
        let ty = caller.value_type(r);
        caller.add_block_param(continuation, ty)
    });

    // Move trailing instructions and the terminator into the continuation.
    let tail: Vec<InstId> = caller.block(block).insts[pos + 1..].to_vec();
    let old_term = caller.block(block).term.clone();
    {
        let bd = caller.block_mut(block);
        bd.insts.truncate(pos); // drops the call as well; re-added below as removed
        bd.term = Terminator::Unterminated;
    }
    caller.block_mut(continuation).insts = tail;
    caller.block_mut(continuation).term = old_term;

    // Uses of the call result now read the continuation parameter.
    if let (Some(r), Some(p)) = (call_result, cont_param) {
        caller.replace_all_uses(r, p);
    }
    // Neutralize the detached call instruction.
    {
        let data = caller.inst_mut(call);
        data.op = Op::Nop;
        data.args.clear();
    }

    // --- clone callee blocks ------------------------------------------------
    let callee_blocks = callee.reachable_blocks();
    let mut block_map: HashMap<BlockId, BlockId> = HashMap::new();
    let mut value_map: HashMap<ValueId, ValueId> = HashMap::new();

    // Pass 1: block shells and parameters.
    for &cb in &callee_blocks {
        let nb = caller.add_block();
        block_map.insert(cb, nb);
        for &p in &callee.block(cb).params {
            let np = caller.add_block_param(nb, callee.value_type(p));
            value_map.insert(p, np);
        }
    }

    // Pass 2: instruction shells (ops + fresh results, args filled later so
    // that forward references across blocks resolve).
    let mut inst_map: HashMap<InstId, InstId> = HashMap::new();
    for &cb in &callee_blocks {
        let nb = block_map[&cb];
        for &ci in &callee.block(cb).insts {
            let cinst = callee.inst(ci);
            let result_ty = cinst.result.map(|r| callee.value_type(r));
            let (ni, nres) = caller.append(nb, cinst.op.clone(), Vec::new(), result_ty);
            inst_map.insert(ci, ni);
            if let (Some(cr), Some(nr)) = (cinst.result, nres) {
                value_map.insert(cr, nr);
            }
        }
    }

    // Pass 3: operands and terminators.
    let map_v = |value_map: &HashMap<ValueId, ValueId>, v: ValueId| -> ValueId {
        *value_map
            .get(&v)
            .unwrap_or_else(|| panic!("unmapped callee value {v}"))
    };
    for &cb in &callee_blocks {
        for &ci in &callee.block(cb).insts {
            let args: Vec<ValueId> = callee
                .inst(ci)
                .args
                .iter()
                .map(|&a| map_v(&value_map, a))
                .collect();
            caller.inst_mut(inst_map[&ci]).args = args;
        }
        let nterm = match &callee.block(cb).term {
            Terminator::Jump(d, args) => Terminator::Jump(
                block_map[d],
                args.iter().map(|&a| map_v(&value_map, a)).collect(),
            ),
            Terminator::Branch {
                cond,
                then_dest,
                else_dest,
            } => Terminator::Branch {
                cond: map_v(&value_map, *cond),
                then_dest: (
                    block_map[&then_dest.0],
                    then_dest.1.iter().map(|&a| map_v(&value_map, a)).collect(),
                ),
                else_dest: (
                    block_map[&else_dest.0],
                    else_dest.1.iter().map(|&a| map_v(&value_map, a)).collect(),
                ),
            },
            Terminator::Return(v) => {
                let args = match (v, cont_param) {
                    (Some(v), Some(_)) => vec![map_v(&value_map, *v)],
                    (None, None) => vec![],
                    (Some(_), None) => vec![], // caller ignores the value (cannot happen for verified graphs)
                    (None, Some(_)) => panic!("void return feeding a value continuation"),
                };
                Terminator::Jump(continuation, args)
            }
            // A trap in the callee abandons the whole compiled activation,
            // so it transplants unchanged into the caller.
            Terminator::Deopt { reason } => Terminator::Deopt { reason: *reason },
            Terminator::Unterminated => panic!("cannot inline a graph with unterminated blocks"),
        };
        caller.set_terminator(block_map[&cb], nterm);
    }

    // --- wire the split block to the inlined entry --------------------------
    let inlined_entry = block_map[&callee.entry()];
    caller.set_terminator(block, Terminator::Jump(inlined_entry, call_args));

    InlineResult {
        block_map,
        value_map,
        inst_map,
        inlined_entry,
        continuation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::graph::{BinOp, CallInfo, CallTarget, CmpOp};
    use crate::program::Program;
    use crate::types::{RetType, Type};
    use crate::verify::verify_graph;

    /// callee: add1(x) = x + 1
    fn add1(p: &mut Program) -> crate::ids::MethodId {
        let m = p.declare_function("add1", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(p, m);
        let x = fb.param(0);
        let one = fb.const_int(1);
        let r = fb.iadd(x, one);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(m, g);
        m
    }

    #[test]
    fn inlines_straight_line_callee() {
        let mut p = Program::new();
        let callee = add1(&mut p);
        let caller = p.declare_function("caller", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, caller);
        let x = fb.param(0);
        let c = fb.call_static(callee, vec![x]).unwrap();
        let r = fb.iadd(c, c);
        fb.ret(Some(r));
        let mut g = fb.finish();

        let (b, call) = g.callsites()[0];
        let callee_graph = p.method(callee).graph.clone();
        let res = inline_call(&mut g, b, call, &callee_graph);

        // No calls remain; graph still verifies; continuation holds the add.
        assert!(g.callsites().is_empty());
        verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).unwrap();
        assert!(g.block(res.continuation).params.len() == 1);
        // The original entry now jumps into the inlined body.
        assert!(
            matches!(g.block(g.entry()).term, Terminator::Jump(d, _) if d == res.inlined_entry)
        );
    }

    #[test]
    fn inlines_void_callee() {
        let mut p = Program::new();
        let callee = p.declare_function("noise", vec![Type::Int], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, callee);
        let x = fb.param(0);
        fb.print(x);
        fb.ret(None);
        let g = fb.finish();
        p.define_method(callee, g);

        let caller = p.declare_function("caller", vec![Type::Int], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, caller);
        let x = fb.param(0);
        fb.call_static(callee, vec![x]);
        fb.print(x);
        fb.ret(None);
        let mut g = fb.finish();

        let (b, call) = g.callsites()[0];
        let callee_graph = p.method(callee).graph.clone();
        let res = inline_call(&mut g, b, call, &callee_graph);
        assert!(g.block(res.continuation).params.is_empty());
        verify_graph(&p, &g, &[Type::Int], RetType::Void).unwrap();
    }

    #[test]
    fn inlines_branching_callee_with_multiple_returns() {
        let mut p = Program::new();
        let callee = p.declare_function("max0", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, callee);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let c = fb.cmp(CmpOp::ILt, x, zero);
        let t = fb.add_block();
        let e = fb.add_block();
        fb.branch(c, (t, vec![]), (e, vec![]));
        fb.switch_to(t);
        fb.ret(Some(zero));
        fb.switch_to(e);
        fb.ret(Some(x));
        let g = fb.finish();
        p.define_method(callee, g);

        let caller = p.declare_function("caller", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, caller);
        let x = fb.param(0);
        let r = fb.call_static(callee, vec![x]).unwrap();
        let two = fb.const_int(2);
        let out = fb.imul(r, two);
        fb.ret(Some(out));
        let mut g = fb.finish();

        let (b, call) = g.callsites()[0];
        let callee_graph = p.method(callee).graph.clone();
        let res = inline_call(&mut g, b, call, &callee_graph);
        verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).unwrap();
        // Both returns feed the continuation parameter.
        let preds = g.predecessors();
        assert_eq!(preds[&res.continuation].len(), 2);
    }

    #[test]
    fn inlines_callee_with_loop() {
        let mut p = Program::new();
        let callee = p.declare_function("sum", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, callee);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]);
        let body = fb.add_block();
        let (done, dp) = fb.add_block_with_params(&[Type::Int]);
        fb.jump(head, vec![zero, zero]);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::ILt, hp[0], n);
        fb.branch(c, (body, vec![]), (done, vec![hp[1]]));
        fb.switch_to(body);
        let one = fb.const_int(1);
        let i2 = fb.iadd(hp[0], one);
        let a2 = fb.iadd(hp[1], hp[0]);
        fb.jump(head, vec![i2, a2]);
        fb.switch_to(done);
        fb.ret(Some(dp[0]));
        let g = fb.finish();
        p.define_method(callee, g);

        let caller = p.declare_function("caller", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, caller);
        let x = fb.param(0);
        let r = fb.call_static(callee, vec![x]).unwrap();
        fb.ret(Some(r));
        let mut g = fb.finish();

        let (b, call) = g.callsites()[0];
        let callee_graph = p.method(callee).graph.clone();
        inline_call(&mut g, b, call, &callee_graph);
        verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).unwrap();
        // The loop survived the transplant.
        let lf = crate::loops::LoopForest::compute(&g);
        assert_eq!(lf.loops.len(), 1);
    }

    #[test]
    fn nested_inlining_preserves_callsite_ids() {
        let mut p = Program::new();
        let leaf = add1(&mut p);
        let mid = p.declare_function("mid", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, mid);
        let x = fb.param(0);
        let r = fb.call_static(leaf, vec![x]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(mid, g);

        let root = p.declare_function("root", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let x = fb.param(0);
        let r = fb.call_static(mid, vec![x]).unwrap();
        fb.ret(Some(r));
        let mut g = fb.finish();

        // Inline mid into root: the leaf callsite inside mid must keep its
        // original (method=mid) callsite id.
        let (b, call) = g.callsites()[0];
        let mid_graph = p.method(mid).graph.clone();
        inline_call(&mut g, b, call, &mid_graph);
        let sites = g.callsites();
        assert_eq!(sites.len(), 1);
        let site = g.inst(sites[0].1).op.call_site().unwrap();
        assert_eq!(site.method, mid);
    }

    #[test]
    #[should_panic(expected = "must be a call instruction")]
    fn rejects_non_call() {
        let mut p = Program::new();
        let callee = add1(&mut p);
        let caller = p.declare_function("caller", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, caller);
        let k = fb.const_int(3);
        fb.ret(Some(k));
        let mut g = fb.finish();
        let e = g.entry();
        let first = g.block(e).insts[0];
        let callee_graph = p.method(callee).graph.clone();
        inline_call(&mut g, e, first, &callee_graph);
    }

    #[test]
    fn self_recursive_inline_once() {
        // fact(n): n <= 1 ? 1 : n * fact(n-1); inline one level.
        let mut p = Program::new();
        let fact = p.declare_function("fact", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, fact);
        let n = fb.param(0);
        let one = fb.const_int(1);
        let c = fb.cmp(CmpOp::ILe, n, one);
        let base = fb.add_block();
        let rec = fb.add_block();
        fb.branch(c, (base, vec![]), (rec, vec![]));
        fb.switch_to(base);
        fb.ret(Some(one));
        fb.switch_to(rec);
        let nm1 = fb.isub(n, one);
        let sub = fb.call_static(fact, vec![nm1]).unwrap();
        let r = fb.binop(BinOp::IMul, n, sub);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(fact, g);

        let mut g = p.method(fact).graph.clone();
        let (b, call) = g.callsites()[0];
        let callee_graph = p.method(fact).graph.clone();
        inline_call(&mut g, b, call, &callee_graph);
        verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).unwrap();
        // Exactly one recursive callsite remains (the inner copy).
        assert_eq!(g.callsites().len(), 1);
        let _ = CallInfo {
            target: CallTarget::Static(fact),
            site: crate::ids::CallSiteId {
                method: fact,
                index: 0,
            },
        };
    }
}
