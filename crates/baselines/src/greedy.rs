//! The greedy, non-exploring priority inliner — a stand-in for the
//! open-source Graal inliner the paper compares against (§V, "akin to the
//! inlining algorithm for JIT compilers described by Steiner et al., which
//! does not have an exploration phase").
//!
//! Differences from [`incline_core::IncrementalInliner`], mirroring the
//! paper's description of the baseline:
//!
//! * no call-tree exploration: callsites are inlined one-by-one straight
//!   into the root as they are discovered,
//! * no alternation between inlining and optimization — the optimizer runs
//!   once, at the end,
//! * no callsite clustering and no deep inlining trials,
//! * fixed thresholds: trivial callees always inline; larger ones inline
//!   while hot enough, small enough, and the root is under budget,
//! * only *monomorphic* speculation on virtual callsites (single dominant
//!   receiver), versus the paper's 3-way typeswitch.

use std::collections::HashMap;

use incline_core::typeswitch::{emit_typeswitch, FallbackMode, TypeswitchCase};
use incline_ir::graph::{CallTarget, Op};
use incline_ir::inline::inline_call;
use incline_ir::{CallSiteId, InstId, MethodId};
use incline_trace::{CompileEvent, OptPhase};
use incline_vm::{CompileCx, CompileError, CompileOutcome, InlineStats, Inliner};

/// Tunables of the greedy baseline.
#[derive(Clone, Copy, Debug)]
pub struct GreedyConfig {
    /// Callees at or below this IR size always inline.
    pub trivial_size: usize,
    /// Callees above this IR size never inline.
    pub max_callee_size: usize,
    /// Minimum relative callsite frequency for non-trivial inlining.
    pub min_frequency: f64,
    /// Stop inlining once the root exceeds this IR size.
    pub root_budget: usize,
    /// Minimum receiver probability for monomorphic speculation.
    pub mono_speculation: f64,
}

impl Default for GreedyConfig {
    fn default() -> Self {
        GreedyConfig {
            trivial_size: 12,
            max_callee_size: 150,
            min_frequency: 0.5,
            root_budget: 2_500,
            mono_speculation: 0.90,
        }
    }
}

/// The greedy inliner.
#[derive(Clone, Debug, Default)]
pub struct GreedyInliner {
    /// Tunables.
    pub config: GreedyConfig,
}

impl GreedyInliner {
    /// Creates the baseline with default tunables.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A pending callsite in the work queue.
struct WorkItem {
    inst: InstId,
    freq: f64,
    depth: usize,
}

impl Inliner for GreedyInliner {
    fn name(&self) -> &str {
        "greedy"
    }

    fn compile(
        &self,
        method: MethodId,
        cx: &CompileCx<'_>,
    ) -> Result<CompileOutcome, CompileError> {
        let c = &self.config;
        let mut graph = cx.program.method(method).graph.clone();
        if !cx.charge(graph.size() as u64) {
            return Err(CompileError::OutOfFuel {
                limit: cx.fuel.limit().unwrap_or(u64::MAX),
            });
        }
        let mut inlined_calls = 0u64;
        let mut explored = 0usize;
        let mut spec_sites = 0u64;
        // Recursive-inline guard: how many times each method was inlined
        // along the current greedy pass (global cap, cheap and effective).
        let mut inline_counts: HashMap<MethodId, usize> = HashMap::new();

        let mut queue: Vec<WorkItem> = graph
            .callsites()
            .iter()
            .map(|&(_, i)| {
                let site = graph.inst(i).op.call_site().expect("call inst");
                WorkItem {
                    inst: i,
                    freq: cx.profiles.local_frequency(site),
                    depth: 0,
                }
            })
            .collect();

        while !queue.is_empty() {
            // Highest frequency first (the greedy priority).
            let (idx, _) = queue
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| {
                    a.freq
                        .partial_cmp(&b.freq)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
                .expect("queue nonempty");
            let item = queue.swap_remove(idx);

            if graph.size() > c.root_budget {
                break;
            }
            // The callsite may have been rewritten by a prior speculation.
            let Some((block, _)) = graph.callsites().into_iter().find(|&(_, i)| i == item.inst)
            else {
                continue;
            };
            let Op::Call(info) = graph.inst(item.inst).op.clone() else {
                continue;
            };

            // Resolve a concrete target, speculating monomorphically on
            // virtual callsites with a dominant receiver.
            let target = match info.target {
                CallTarget::Static(m) => Some(m),
                CallTarget::Virtual(sel) => {
                    // Monomorphic speculation only: rewrite into a guarded
                    // direct call and requeue the new callsite.
                    let profile = cx.profiles.receiver_profile(info.site);
                    let dominant = profile
                        .first()
                        .filter(|e| e.probability >= c.mono_speculation)
                        .and_then(|e| {
                            cx.program
                                .resolve(e.class, sel)
                                .map(|m| (m, e.class, e.probability))
                        });
                    if let Some((m, guard, prob)) = dominant {
                        cx.emit(|| CompileEvent::InlineDecision {
                            method: Some(m),
                            benefit: prob,
                            cost: 0.0,
                            threshold: c.mono_speculation,
                            root_size: graph.size() as f64,
                            accepted: true,
                        });
                        // Monomorphic uncommon trap when the dominant
                        // receiver alone clears the confidence bar.
                        let spec = cx.speculation;
                        let fallback = if spec.allow_deopt && prob >= spec.confidence {
                            FallbackMode::Deopt
                        } else {
                            FallbackMode::Virtual
                        };
                        let res = emit_typeswitch(
                            cx.program,
                            &mut graph,
                            block,
                            item.inst,
                            &[TypeswitchCase { target: m, guard }],
                            fallback,
                        );
                        inlined_calls += 1; // the speculation itself
                        spec_sites += 1;
                        queue.push(WorkItem {
                            inst: res.case_calls[0],
                            freq: item.freq,
                            depth: item.depth,
                        });
                    }
                    None
                }
            };
            let Some(target) = target else { continue };

            let callee = cx.program.method(target);
            if !callee.can_inline() || callee.graph.size() == 0 {
                continue;
            }
            let callee_size = callee.graph.size();
            let trivial = callee_size <= c.trivial_size;
            let worthwhile = item.freq >= c.min_frequency && callee_size <= c.max_callee_size;
            if !(trivial || worthwhile) {
                cx.emit(|| CompileEvent::InlineDecision {
                    method: Some(target),
                    benefit: item.freq,
                    cost: callee_size as f64,
                    threshold: c.min_frequency,
                    root_size: graph.size() as f64,
                    accepted: false,
                });
                continue;
            }
            let count = inline_counts.entry(target).or_insert(0);
            if *count >= 24 || (target == method && *count >= 1) {
                continue; // recursion guard
            }
            // A spent compile budget winds the pass down; what has been
            // inlined so far still compiles.
            if !cx.charge(callee_size as u64) {
                break;
            }
            *count += 1;
            cx.emit(|| CompileEvent::InlineDecision {
                method: Some(target),
                benefit: item.freq,
                cost: callee_size as f64,
                threshold: c.min_frequency,
                root_size: graph.size() as f64,
                accepted: true,
            });

            let body = callee.graph.clone();
            explored += body.size();
            let res = inline_call(&mut graph, block, item.inst, &body);
            inlined_calls += 1;

            // Newly exposed callsites join the queue, in deterministic
            // instruction order (the inst_map iterates in hash order).
            let mut exposed: Vec<(InstId, f64)> = Vec::new();
            for (&old, &new) in &res.inst_map {
                if matches!(body.inst(old).op, Op::Call(_)) {
                    let site: CallSiteId = body.inst(old).op.call_site().expect("call");
                    exposed.push((new, item.freq * cx.profiles.local_frequency(site)));
                }
            }
            exposed.sort_by_key(|&(i, _)| i);
            for (inst, freq) in exposed {
                queue.push(WorkItem {
                    inst,
                    freq,
                    depth: item.depth + 1,
                });
            }
        }

        // One optimization pass at the end (no alternation).
        let stats = incline_trace::optimize_with_trace(
            cx.program,
            &mut graph,
            incline_opt::PipelineConfig::default(),
            cx.fuel,
            cx.trace,
            OptPhase::Baseline,
        );
        let final_size = graph.size();
        Ok(CompileOutcome {
            graph,
            work_nodes: explored + final_size,
            stats: InlineStats {
                inlined_calls,
                rounds: 1,
                explored_nodes: explored as u64,
                final_size: final_size as u64,
                opt_events: stats.total(),
                speculative_sites: spec_sites,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::verify::verify_graph;
    use incline_ir::{Program, RetType, Type};
    use incline_profile::ProfileTable;

    #[test]
    fn inlines_trivial_callees_without_profiles() {
        let mut p = Program::new();
        let inc = p.declare_function("inc", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, inc);
        let x = fb.param(0);
        let one = fb.const_int(1);
        let r = fb.iadd(x, one);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(inc, g);
        let root = p.declare_function("root", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let x = fb.param(0);
        let r = fb.call_static(inc, vec![x]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);

        let profiles = ProfileTable::new();
        let cx = CompileCx::new(&p, &profiles);
        let out = GreedyInliner::new().compile(root, &cx).unwrap();
        assert_eq!(out.stats.inlined_calls, 1);
        assert!(out.graph.callsites().is_empty());
        verify_graph(&p, &out.graph, &[Type::Int], RetType::Value(Type::Int)).unwrap();
    }

    #[test]
    fn respects_budget() {
        // A chain of self-similar medium methods: the greedy budget stops
        // the cascade.
        let mut p = Program::new();
        let mut prev: Option<MethodId> = None;
        let mut ids = Vec::new();
        for i in 0..40 {
            let m = p.declare_function(format!("m{i}"), vec![Type::Int], Type::Int);
            ids.push(m);
            let mut fb = FunctionBuilder::new(&p, m);
            let x = fb.param(0);
            // Pad with arithmetic so the method is non-trivial and the
            // cascade overruns the root budget partway through.
            let mut acc = x;
            for k in 0..60 {
                let c = fb.const_int(k);
                acc = fb.iadd(acc, c);
            }
            let r = match prev {
                Some(t) => fb.call_static(t, vec![acc]).unwrap(),
                None => acc,
            };
            fb.ret(Some(r));
            let g = fb.finish();
            p.define_method(m, g);
            prev = Some(m);
        }
        let root = *ids.last().unwrap();
        let mut profiles = ProfileTable::new();
        for &m in &ids {
            for _ in 0..10 {
                profiles.record_invocation(m);
                profiles.record_callsite(CallSiteId {
                    method: m,
                    index: 0,
                });
            }
        }
        let cx = CompileCx::new(&p, &profiles);
        let out = GreedyInliner::new().compile(root, &cx).unwrap();
        assert!(out.stats.inlined_calls > 0);
        assert!(out.stats.inlined_calls < 39, "budget must stop the cascade");
        assert!(out.graph.size() <= 3_500);
        verify_graph(&p, &out.graph, &[Type::Int], RetType::Value(Type::Int)).unwrap();
    }

    #[test]
    fn monomorphic_speculation_only() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let c = p.add_class("C", Some(a));
        let ma = p.declare_method(a, "go", vec![], Type::Int);
        let mb = p.declare_method(b, "go", vec![], Type::Int);
        let mc = p.declare_method(c, "go", vec![], Type::Int);
        for (m, k) in [(ma, 1), (mb, 2), (mc, 3)] {
            let mut fb = FunctionBuilder::new(&p, m);
            let v = fb.const_int(k);
            fb.ret(Some(v));
            let g = fb.finish();
            p.define_method(m, g);
        }
        let root = p.declare_function("root", vec![Type::Object(a)], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let recv = fb.param(0);
        let sel = fb.program().selector_by_name("go", 1).unwrap();
        let r = fb.call_virtual(sel, vec![recv]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);
        let site = CallSiteId {
            method: root,
            index: 0,
        };

        // 50/50 profile: no speculation.
        let mut even = ProfileTable::new();
        even.record_invocation(root);
        for _ in 0..50 {
            even.record_receiver(site, b);
            even.record_receiver(site, c);
        }
        let cx = CompileCx::new(&p, &even);
        let out = GreedyInliner::new().compile(root, &cx).unwrap();
        assert_eq!(
            out.stats.inlined_calls, 0,
            "bimorphic sites stay virtual for greedy"
        );

        // 95/5 profile: speculate + inline.
        let mut skewed = ProfileTable::new();
        skewed.record_invocation(root);
        for _ in 0..95 {
            skewed.record_receiver(site, b);
        }
        for _ in 0..5 {
            skewed.record_receiver(site, c);
        }
        let cx = CompileCx::new(&p, &skewed);
        let out = GreedyInliner::new().compile(root, &cx).unwrap();
        assert!(out.stats.inlined_calls >= 1);
        verify_graph(
            &p,
            &out.graph,
            &[Type::Object(a)],
            RetType::Value(Type::Int),
        )
        .unwrap();
    }
}
