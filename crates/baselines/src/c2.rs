//! A HotSpot-C2-style inliner baseline.
//!
//! Mirrors the paper's description (§V): "the standard HotSpot C2
//! compiler, which inlines a single method at a time (first only trivial
//! methods during bytecode parsing, and larger methods in a separate,
//! later phase), with a greedy heuristic". Our reproduction follows C2's
//! well-known knobs, rescaled to IR nodes:
//!
//! * trivial callees (≤ `trivial_size`, cf. `MaxTrivialSize`) inline
//!   always during the depth-first "parse" pass,
//! * hot callees inline when ≤ `freq_inline_size` (cf. `FreqInlineSize`),
//! * nesting is bounded by `max_inline_level` (cf. `MaxInlineLevel` = 9),
//! * direct recursion is bounded by `max_recursive_inline` (= 1),
//! * bimorphic speculation: up to two receiver types from the profile
//!   (C2's bimorphic inlining), each receiver needing ≥ `min_prob`,
//! * one optimization pass afterwards — no alternation, no clustering,
//!   no inlining trials.

use incline_core::typeswitch::{emit_typeswitch, FallbackMode, TypeswitchCase};
use incline_ir::graph::{CallTarget, Op};
use incline_ir::inline::inline_call;
use incline_ir::{Graph, InstId, MethodId};
use incline_trace::{CompileEvent, OptPhase};
use incline_vm::{CompileCx, CompileError, CompileOutcome, InlineStats, Inliner};

/// Tunables of the C2-style baseline.
#[derive(Clone, Copy, Debug)]
pub struct C2Config {
    /// Always-inline size (cf. `MaxTrivialSize`).
    pub trivial_size: usize,
    /// Hot-callee inline size (cf. `FreqInlineSize`).
    pub freq_inline_size: usize,
    /// Hotness: minimum relative callsite frequency for non-trivial
    /// inlining.
    pub min_frequency: f64,
    /// Maximum inline nesting depth (cf. `MaxInlineLevel`).
    pub max_inline_level: usize,
    /// Maximum direct-recursive inlines (cf. `MaxRecursiveInline`).
    pub max_recursive_inline: usize,
    /// Root size limit (cf. `DesiredMethodLimit`).
    pub method_limit: usize,
    /// Minimum per-receiver probability for bimorphic speculation.
    pub min_receiver_prob: f64,
}

impl Default for C2Config {
    fn default() -> Self {
        C2Config {
            trivial_size: 10,
            freq_inline_size: 80,
            min_frequency: 0.25,
            max_inline_level: 9,
            max_recursive_inline: 1,
            method_limit: 2_000,
            min_receiver_prob: 0.20,
        }
    }
}

/// The C2-style inliner.
#[derive(Clone, Debug, Default)]
pub struct C2Inliner {
    /// Tunables.
    pub config: C2Config,
}

impl C2Inliner {
    /// Creates the baseline with default tunables.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Inliner for C2Inliner {
    fn name(&self) -> &str {
        "c2"
    }

    fn compile(
        &self,
        method: MethodId,
        cx: &CompileCx<'_>,
    ) -> Result<CompileOutcome, CompileError> {
        let mut graph = cx.program.method(method).graph.clone();
        if !cx.charge(graph.size() as u64) {
            return Err(CompileError::OutOfFuel {
                limit: cx.fuel.limit().unwrap_or(u64::MAX),
            });
        }
        let mut state = State {
            inlined_calls: 0,
            explored: 0,
            spec_sites: 0,
            root: method,
        };
        // Depth-first parse-time inlining over the root's callsites.
        let sites: Vec<InstId> = graph.callsites().iter().map(|&(_, i)| i).collect();
        for inst in sites {
            self.try_inline(cx, &mut graph, inst, 1.0, 0, 0, &mut state);
        }
        let stats = incline_trace::optimize_with_trace(
            cx.program,
            &mut graph,
            incline_opt::PipelineConfig::default(),
            cx.fuel,
            cx.trace,
            OptPhase::Baseline,
        );
        let final_size = graph.size();
        Ok(CompileOutcome {
            graph,
            work_nodes: state.explored + final_size,
            stats: InlineStats {
                inlined_calls: state.inlined_calls,
                rounds: 1,
                explored_nodes: state.explored as u64,
                final_size: final_size as u64,
                opt_events: stats.total(),
                speculative_sites: state.spec_sites,
            },
        })
    }
}

struct State {
    inlined_calls: u64,
    explored: usize,
    spec_sites: u64,
    root: MethodId,
}

impl C2Inliner {
    /// Attempts to inline one callsite depth-first, C2-style.
    #[allow(clippy::too_many_arguments)]
    fn try_inline(
        &self,
        cx: &CompileCx<'_>,
        graph: &mut Graph,
        inst: InstId,
        freq: f64,
        level: usize,
        rec: usize,
        state: &mut State,
    ) {
        let c = &self.config;
        if level >= c.max_inline_level || graph.size() > c.method_limit {
            return;
        }
        let Some((block, _)) = graph.callsites().into_iter().find(|&(_, i)| i == inst) else {
            return;
        };
        let Op::Call(info) = graph.inst(inst).op.clone() else {
            return;
        };
        let site_freq = freq * cx.profiles.local_frequency(info.site);

        match info.target {
            CallTarget::Static(target) => {
                let callee = cx.program.method(target);
                if !callee.can_inline() || callee.graph.size() == 0 {
                    return;
                }
                let size = callee.graph.size();
                let trivial = size <= c.trivial_size;
                let hot = site_freq >= c.min_frequency && size <= c.freq_inline_size;
                if !(trivial || hot) {
                    cx.emit(|| CompileEvent::InlineDecision {
                        method: Some(target),
                        benefit: site_freq,
                        cost: size as f64,
                        threshold: c.min_frequency,
                        root_size: graph.size() as f64,
                        accepted: false,
                    });
                    return;
                }
                let next_rec = if target == state.root { rec + 1 } else { rec };
                if target == state.root && next_rec > c.max_recursive_inline {
                    return;
                }
                // A spent compile budget winds the parse down gracefully.
                if !cx.charge(size as u64) {
                    return;
                }
                cx.emit(|| CompileEvent::InlineDecision {
                    method: Some(target),
                    benefit: site_freq,
                    cost: size as f64,
                    threshold: c.min_frequency,
                    root_size: graph.size() as f64,
                    accepted: true,
                });
                let body = callee.graph.clone();
                state.explored += body.size();
                let res = inline_call(graph, block, inst, &body);
                state.inlined_calls += 1;
                // Recurse into the callee's callsites (depth-first parse).
                let mut nested: Vec<(InstId, f64)> = Vec::new();
                for (&old, &new) in &res.inst_map {
                    if let Some(site) = body.inst(old).op.call_site() {
                        nested.push((new, site_freq * cx.profiles.local_frequency(site)));
                    }
                }
                // Deterministic order.
                nested.sort_by_key(|&(i, _)| i);
                for (ni, nf) in nested {
                    self.try_inline(
                        cx,
                        graph,
                        ni,
                        nf / site_freq.max(f64::MIN_POSITIVE),
                        level + 1,
                        next_rec,
                        state,
                    );
                }
            }
            CallTarget::Virtual(sel) => {
                // Bimorphic speculation from the receiver profile.
                let profile = cx.profiles.receiver_profile(info.site);
                let mut cases = Vec::new();
                for e in profile.iter().take(2) {
                    if e.probability < c.min_receiver_prob {
                        continue;
                    }
                    if let Some(m) = cx.program.resolve(e.class, sel) {
                        if !cases.iter().any(|cs: &TypeswitchCase| cs.target == m) {
                            cases.push(TypeswitchCase {
                                target: m,
                                guard: e.class,
                            });
                        }
                    }
                }
                // C2 only speculates when the profile is essentially
                // covered by the taken cases.
                let coverage: f64 = profile
                    .iter()
                    .filter(|e| cases.iter().any(|cs| cs.guard == e.class))
                    .map(|e| e.probability)
                    .sum();
                if cases.is_empty() || coverage < 0.85 {
                    return;
                }
                cx.emit(|| CompileEvent::InlineDecision {
                    method: None,
                    benefit: coverage,
                    cost: cases.len() as f64,
                    threshold: 0.85,
                    root_size: graph.size() as f64,
                    accepted: true,
                });
                // With deoptimization support and near-total coverage the
                // fallback becomes an uncommon trap instead of the virtual
                // call (the classic C2 uncommon-trap shape).
                let spec = cx.speculation;
                let fallback = if spec.allow_deopt && coverage >= spec.confidence {
                    FallbackMode::Deopt
                } else {
                    FallbackMode::Virtual
                };
                let res = emit_typeswitch(cx.program, graph, block, inst, &cases, fallback);
                state.inlined_calls += 1;
                state.spec_sites += 1;
                for (i, case) in res.case_calls.iter().enumerate() {
                    let p = 1.0f64.min(1.0); // per-case frequency folded into site_freq
                    let _ = p;
                    let _ = i;
                    self.try_inline(cx, graph, *case, freq, level + 1, rec, state);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::verify::verify_graph;
    use incline_ir::{CallSiteId, Program, RetType, Type};
    use incline_profile::ProfileTable;

    #[test]
    fn parse_time_trivial_inlining_cascades() {
        // t1 → t2 → t3, all trivial: the depth-first pass flattens all.
        let mut p = Program::new();
        let t3 = p.declare_function("t3", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, t3);
        let x = fb.param(0);
        let k = fb.const_int(3);
        let r = fb.iadd(x, k);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(t3, g);
        let t2 = p.declare_function("t2", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, t2);
        let x = fb.param(0);
        let r = fb.call_static(t3, vec![x]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(t2, g);
        let root = p.declare_function("root", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let x = fb.param(0);
        let r = fb.call_static(t2, vec![x]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);

        let profiles = ProfileTable::new();
        let cx = CompileCx::new(&p, &profiles);
        let out = C2Inliner::new().compile(root, &cx).unwrap();
        assert_eq!(out.stats.inlined_calls, 2);
        assert!(out.graph.callsites().is_empty());
        verify_graph(&p, &out.graph, &[Type::Int], RetType::Value(Type::Int)).unwrap();
    }

    #[test]
    fn inline_level_bounded() {
        // A self-calling trivial method: recursion guard stops at 1.
        let mut p = Program::new();
        let f = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, f);
        let x = fb.param(0);
        let r = fb.call_static(f, vec![x]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(f, g);
        let profiles = ProfileTable::new();
        let cx = CompileCx::new(&p, &profiles);
        let out = C2Inliner::new().compile(f, &cx).unwrap();
        assert!(out.stats.inlined_calls <= 1, "{:?}", out.stats);
        verify_graph(&p, &out.graph, &[Type::Int], RetType::Value(Type::Int)).unwrap();
    }

    #[test]
    fn bimorphic_speculation_with_coverage() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let c = p.add_class("C", Some(a));
        let d = p.add_class("D", Some(a));
        let ma = p.declare_method(a, "go", vec![], Type::Int);
        let mb = p.declare_method(b, "go", vec![], Type::Int);
        let mc = p.declare_method(c, "go", vec![], Type::Int);
        let md = p.declare_method(d, "go", vec![], Type::Int);
        for (m, k) in [(ma, 1), (mb, 2), (mc, 3), (md, 4)] {
            let mut fb = FunctionBuilder::new(&p, m);
            let v = fb.const_int(k);
            fb.ret(Some(v));
            let g = fb.finish();
            p.define_method(m, g);
        }
        let root = p.declare_function("root", vec![Type::Object(a)], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let recv = fb.param(0);
        let sel = fb.program().selector_by_name("go", 1).unwrap();
        let r = fb.call_virtual(sel, vec![recv]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);
        let site = CallSiteId {
            method: root,
            index: 0,
        };

        // 60/40 two receivers: bimorphic, covered → speculate + inline.
        let mut bi = ProfileTable::new();
        bi.record_invocation(root);
        for _ in 0..60 {
            bi.record_receiver(site, b);
        }
        for _ in 0..40 {
            bi.record_receiver(site, c);
        }
        let cx = CompileCx::new(&p, &bi);
        let out = C2Inliner::new().compile(root, &cx).unwrap();
        assert!(out.stats.inlined_calls >= 3, "{:?}", out.stats); // switch + 2 bodies
        verify_graph(
            &p,
            &out.graph,
            &[Type::Object(a)],
            RetType::Value(Type::Int),
        )
        .unwrap();

        // Megamorphic 40/30/30: top-2 coverage only 70% → stay virtual.
        let mut mega = ProfileTable::new();
        mega.record_invocation(root);
        for _ in 0..40 {
            mega.record_receiver(site, b);
        }
        for _ in 0..30 {
            mega.record_receiver(site, c);
        }
        for _ in 0..30 {
            mega.record_receiver(site, d);
        }
        let cx = CompileCx::new(&p, &mega);
        let out = C2Inliner::new().compile(root, &cx).unwrap();
        assert_eq!(
            out.stats.inlined_calls, 0,
            "megamorphic sites stay virtual for C2"
        );
    }
}
