#![warn(missing_docs)]

//! # incline-baselines
//!
//! The inliners the paper's evaluation compares against (§V, Figure 9):
//!
//! * [`GreedyInliner`] — the open-source-Graal-style greedy priority
//!   inliner (Steiner et al.): no exploration phase, no alternation with
//!   the optimizer, fixed thresholds, monomorphic speculation only,
//! * [`C2Inliner`] — HotSpot-C2-style: depth-first parse-time inlining of
//!   trivial methods, fixed size/frequency/level limits, bimorphic
//!   receiver speculation,
//! * [`incline_vm::NoInline`] (re-exported) — compiles without inlining,
//!   isolating scalar optimization effects.
//!
//! All of them implement [`incline_vm::Inliner`] and are driven by the
//! same VM as the paper's algorithm, so measured differences come from
//! inlining policy alone.

pub mod c2;
pub mod greedy;

pub use c2::{C2Config, C2Inliner};
pub use greedy::{GreedyConfig, GreedyInliner};
pub use incline_vm::NoInline;
