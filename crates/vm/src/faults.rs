//! Deterministic fault injection for the compile path.
//!
//! A fault-containment story is only credible if it is exercised. This
//! module lets tests (and experiments) inject compiler faults at precise,
//! reproducible points: a [`FaultPlan`] maps *compilation request indices*
//! (the Nth time the broker is asked to compile anything, counting from 0)
//! to a [`FaultKind`]. The plan is either hand-built or derived from a seed,
//! so two runs with the same plan observe byte-identical behavior — which
//! the integration tests assert.
//!
//! The faults model the three ways a production JIT compiler goes wrong:
//!
//! * [`FaultKind::PanicInCompile`] — a compiler bug that unwinds. The
//!   broker's `catch_unwind` fence must convert it into a
//!   [`CompileError::Panicked`](crate::CompileError) bailout.
//! * [`FaultKind::CorruptGraph`] — a miscompile: the graph produced by the
//!   inliner is silently damaged before installation. The always-on
//!   verifier must reject it ([`CompileError::Rejected`](crate::CompileError)).
//! * [`FaultKind::ExhaustFuel`] — a pathological compilation that would
//!   blow the compile budget. The ladder must retry on a cheaper tier.
//!
//! Three further kinds target the speculation and code-cache machinery
//! rather than the compile path itself: [`FaultKind::ForceDeopt`] makes
//! installed code take an uncommon trap on first entry,
//! [`FaultKind::ForceGuardFailure`] makes the drift monitor trip as if
//! every speculated guard were failing, and [`FaultKind::ForceEvict`]
//! throws freshly installed code straight back out of the code cache.
//! All three are only ever injected explicitly — `seeded` plans draw from
//! the three compile-path kinds so existing seeded tests stay
//! byte-identical.

use std::collections::BTreeMap;

use incline_ir::{Graph, Rng64, Terminator};

/// Marker embedded in injected panic payloads so tests can tell an
/// injected panic from a genuine compiler bug.
pub const INJECTED_PANIC: &str = "injected compiler fault";

/// The kind of compiler fault to inject.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the inliner invocation (contained by `catch_unwind`).
    PanicInCompile,
    /// Structurally corrupt the produced graph before verification.
    CorruptGraph,
    /// Drain the compile budget so the full tier reports `OutOfFuel`.
    ExhaustFuel,
    /// Mark the installed code so its first compiled activation takes an
    /// uncommon trap: exercises the invalidate → reprofile → recompile
    /// cycle (and, repeated past the cap, speculation pinning). Only
    /// effective when deoptimization is enabled and the method is not
    /// pinned; never drawn by [`FaultPlan::seeded`].
    ForceDeopt,
    /// Mark the installed code so the broker's drift monitor deterministically
    /// trips once its minimum sample count accrues, as if every speculated
    /// guard were failing. Never drawn by [`FaultPlan::seeded`].
    ForceGuardFailure,
    /// Evict the method's code from the code cache immediately after it is
    /// installed, as if cache pressure had picked it as a victim. Effective
    /// regardless of `code_cache_budget`; exercises the evict → reprofile →
    /// re-tier cycle and its backoff. Never drawn by [`FaultPlan::seeded`].
    ForceEvict,
    /// Poison one decision of a replayed warmup snapshot: the decision at
    /// index `decision_idx` of the snapshot's decided-method order is
    /// installed normally during eager replay but takes an uncommon trap
    /// on its first compiled activation, driving the quarantine ladder
    /// (poison attribution, profile rollback, `snapshot_out` exclusion)
    /// deterministically from tests. Inert outside snapshot replay (the
    /// plan key is conventionally `decision_idx` itself, but unlike the
    /// other kinds the key does not select a compile request). Only
    /// effective when deoptimization is enabled and the method is not
    /// pinned; never drawn by [`FaultPlan::seeded`].
    PoisonSnapshot {
        /// Index into the snapshot's decided-method order (the order
        /// eager replay compiles, i.e. `Snapshot::decided_methods`).
        decision_idx: u64,
    },
}

/// A deterministic schedule of compiler faults, keyed by compilation
/// request index (0 = the first compilation the broker attempts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    faults: BTreeMap<u64, FaultKind>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault at compilation request `request` (builder style).
    pub fn inject(mut self, request: u64, kind: FaultKind) -> Self {
        self.faults.insert(request, kind);
        self
    }

    /// Derives a plan from a seed: each of the first `requests`
    /// compilation indices faults with probability `density`, with the
    /// kind drawn uniformly. Same seed, same plan — always.
    pub fn seeded(seed: u64, requests: u64, density: f64) -> Self {
        let mut rng = Rng64::new(seed);
        let mut faults = BTreeMap::new();
        for request in 0..requests {
            if rng.gen_bool(density) {
                let kind = match rng.gen_index(3) {
                    0 => FaultKind::PanicInCompile,
                    1 => FaultKind::CorruptGraph,
                    _ => FaultKind::ExhaustFuel,
                };
                faults.insert(request, kind);
            }
        }
        FaultPlan { faults }
    }

    /// The fault scheduled for compilation request `request`, if any.
    pub fn fault_at(&self, request: u64) -> Option<FaultKind> {
        self.faults.get(&request).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The scheduled faults in request order.
    pub fn entries(&self) -> impl Iterator<Item = (u64, FaultKind)> + '_ {
        self.faults.iter().map(|(&r, &k)| (r, k))
    }

    /// The decided-method indices poisoned by [`FaultKind::PoisonSnapshot`]
    /// entries, in sorted order — consumed by snapshot replay.
    pub fn poisoned_decisions(&self) -> std::collections::BTreeSet<u64> {
        self.faults
            .values()
            .filter_map(|k| match k {
                FaultKind::PoisonSnapshot { decision_idx } => Some(*decision_idx),
                _ => None,
            })
            .collect()
    }
}

/// Structurally damages `graph` the way a miscompiling pass would: the
/// first jump edge loses its arguments (an arity violation the verifier
/// must catch); a graph without jump edges gets an unterminated block.
/// Either way the result must fail verification.
pub fn corrupt_graph(graph: &mut Graph) {
    let blocks: Vec<_> = graph.block_ids().collect();
    for &b in &blocks {
        if let Terminator::Jump(dest, args) = &graph.block(b).term {
            if !args.is_empty() {
                let dest = *dest;
                graph.set_terminator(b, Terminator::Jump(dest, Vec::new()));
                return;
            }
        }
    }
    let last = *blocks.last().expect("graphs have at least an entry block");
    graph.set_terminator(last, Terminator::Unterminated);
}

// ---- panic-noise suppression -----------------------------------------------
//
// `catch_unwind` contains a panic, but the default panic hook still prints a
// backtrace to stderr first. Injected (and contained) panics are expected
// events, so the broker silences the hook for the duration of the guarded
// call; genuine panics elsewhere keep the normal hook behavior.

use std::cell::Cell;
use std::sync::Once;

thread_local! {
    static SUPPRESS_PANIC_OUTPUT: Cell<bool> = const { Cell::new(false) };
}

static HOOK_INIT: Once = Once::new();

fn install_delegating_hook() {
    HOOK_INIT.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !SUPPRESS_PANIC_OUTPUT.with(|s| s.get()) {
                previous(info);
            }
        }));
    });
}

/// Runs `f` with panic-hook output suppressed on this thread. Used around
/// the broker's `catch_unwind` fence so contained panics don't spam stderr.
pub(crate) fn with_quiet_panics<R>(f: impl FnOnce() -> R) -> R {
    install_delegating_hook();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(true));
    let result = f();
    SUPPRESS_PANIC_OUTPUT.with(|s| s.set(false));
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::types::RetType;
    use incline_ir::verify::verify_graph;
    use incline_ir::{Program, Type};

    #[test]
    fn seeded_plans_are_deterministic() {
        let a = FaultPlan::seeded(0xFA17, 64, 0.25);
        let b = FaultPlan::seeded(0xFA17, 64, 0.25);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "density 0.25 over 64 requests should fault");
        let c = FaultPlan::seeded(0xFA18, 64, 0.25);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn builder_plan_round_trips() {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::PanicInCompile)
            .inject(3, FaultKind::CorruptGraph);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.fault_at(0), Some(FaultKind::PanicInCompile));
        assert_eq!(plan.fault_at(1), None);
        assert_eq!(plan.fault_at(3), Some(FaultKind::CorruptGraph));
        let entries: Vec<_> = plan.entries().collect();
        assert_eq!(
            entries,
            vec![(0, FaultKind::PanicInCompile), (3, FaultKind::CorruptGraph)]
        );
    }

    #[test]
    fn poison_entries_are_collected_and_inert_elsewhere() {
        let plan = FaultPlan::new()
            .inject(0, FaultKind::PoisonSnapshot { decision_idx: 0 })
            .inject(2, FaultKind::PoisonSnapshot { decision_idx: 2 })
            .inject(5, FaultKind::ForceDeopt);
        let poisoned: Vec<u64> = plan.poisoned_decisions().into_iter().collect();
        assert_eq!(poisoned, vec![0, 2]);
        assert!(FaultPlan::new()
            .inject(1, FaultKind::ForceEvict)
            .poisoned_decisions()
            .is_empty());
    }

    #[test]
    fn corruption_always_breaks_verification() {
        // A graph with a parameterized jump edge: corruption drops the args.
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let (j, jp) = fb.add_block_with_params(&[Type::Int]);
        fb.jump(j, vec![x]);
        fb.switch_to(j);
        fb.ret(Some(jp[0]));
        let mut g = fb.finish();
        verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).unwrap();
        corrupt_graph(&mut g);
        assert!(verify_graph(&p, &g, &[Type::Int], RetType::Value(Type::Int)).is_err());

        // A straight-line graph: corruption unterminates a block.
        let m2 = p.declare_function("g", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m2);
        let k = fb.const_int(1);
        fb.ret(Some(k));
        let mut g2 = fb.finish();
        verify_graph(&p, &g2, &[], RetType::Value(Type::Int)).unwrap();
        corrupt_graph(&mut g2);
        assert!(verify_graph(&p, &g2, &[], RetType::Value(Type::Int)).is_err());
    }

    #[test]
    fn quiet_panics_still_propagate_payload() {
        let caught =
            with_quiet_panics(|| std::panic::catch_unwind(|| panic!("{INJECTED_PANIC}: boom")));
        let payload = caught.unwrap_err();
        let msg = payload.downcast_ref::<String>().unwrap();
        assert!(msg.contains(INJECTED_PANIC));
    }
}
