//! Multi-tenant request-serving simulation with tail-latency metrics.
//!
//! The benchmark harness ([`crate::RunSession`]) answers "how fast does one
//! workload warm up?". A production JIT answers a different question: *N*
//! tenants with different receiver mixes share one VM, one compile broker
//! and one bounded code cache, and what matters is the **tail** of the
//! request-latency distribution — the p99/p999 requests that stall behind
//! someone else's compilation or re-warm a method the cache evicted.
//!
//! [`ServerSession`] models that as a deterministic virtual-time loop:
//!
//! * a seeded [`Rng64`] arrival process generates a bursty request schedule
//!   (alternating calm and burst windows, weighted tenant selection);
//! * each tenant flips its input mid-run after a per-tenant fraction of its
//!   requests (`flip_after`), generalizing the `phase_change` workload —
//!   entry methods branch on the argument, so the flip changes the hot
//!   receiver mix and invalidates speculation made during the first phase;
//! * requests retire in arrival order on the shared [`Machine`]; the serve
//!   clock advances as `max(clock, arrival) + service`, so a request's
//!   latency is queueing delay plus execution plus mutator-visible compile
//!   stall;
//! * per-request failures (injected faults, trap storms) are absorbed into
//!   per-tenant failure counts — one tenant degrading never aborts another
//!   tenant's traffic.
//!
//! Everything is virtual-time and seeded, so a [`ServerReport`] is
//! byte-identical across `compile_threads ∈ {0, 1, N}` under
//! [`InstallPolicy::Barrier`](crate::InstallPolicy::Barrier), while
//! [`InstallPolicy::Safepoint`](crate::InstallPolicy::Safepoint) overlaps
//! compilation with the request stream and shows up as a measured p99 win.

use std::sync::Arc;

use incline_ir::{MethodId, Program, Rng64};
use incline_trace::{CompileEvent, NullSink, TraceSink};

use crate::cache::CacheStats;
use crate::faults::FaultPlan;
use crate::inliner::Inliner;
use crate::machine::{BailoutCounters, Machine, VmConfig};
use crate::snapshot::{SnapshotIo, SnapshotStats};
use crate::stats::{fairness_index, LatencyStats};
use crate::value::Value;

/// One tenant sharing the simulated server.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Display name (stable across runs; used in reports and trace events).
    pub name: String,
    /// The tenant's entry method inside the shared [`Program`].
    pub entry: MethodId,
    /// Relative traffic weight (share of the arrival process).
    pub weight: u32,
    /// Work parameter passed as the entry argument (phase A input).
    pub work: i64,
    /// Phase pivot: entry methods branch on `arg < pivot`, so phase B
    /// requests pass `pivot + work` and exercise a different receiver mix.
    pub pivot: i64,
    /// Fraction of this tenant's requests served before the phase flip
    /// (`0.0` = all phase B, `1.0` = never flips).
    pub flip_after: f64,
}

impl TenantSpec {
    /// A tenant with unit weight, no work offset and no phase flip.
    pub fn new(name: impl Into<String>, entry: MethodId) -> Self {
        TenantSpec {
            name: name.into(),
            entry,
            weight: 1,
            work: 0,
            pivot: i64::MAX,
            flip_after: 1.0,
        }
    }
}

/// Arrival-process parameters for one simulated serving run.
///
/// The schedule alternates *calm* windows (`calm_len` requests with
/// inter-arrival gaps around `calm_gap` cycles) and *bursts* (`burst_len`
/// requests around `burst_gap`). Bursts are where install policies
/// separate: a barrier-mode compile stalls every queued request behind it,
/// a safepoint-mode compile overlaps with the backlog.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerSpec {
    /// Seed for the arrival process (tenant picks + gap jitter).
    pub seed: u64,
    /// Total requests across all tenants.
    pub requests: usize,
    /// Mean inter-arrival gap inside a calm window, in cycles.
    pub calm_gap: u64,
    /// Mean inter-arrival gap inside a burst, in cycles.
    pub burst_gap: u64,
    /// Requests per calm window.
    pub calm_len: usize,
    /// Requests per burst.
    pub burst_len: usize,
    /// Sample the compile-queue depth every this many requests
    /// (`0` disables sampling).
    pub queue_sample_every: usize,
}

impl Default for ServerSpec {
    fn default() -> Self {
        ServerSpec {
            seed: 0xC60_2019,
            requests: 400,
            calm_gap: 4_000,
            burst_gap: 40,
            calm_len: 24,
            burst_len: 8,
            queue_sample_every: 16,
        }
    }
}

/// Why a serving run could not start.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServerError {
    /// No tenants were given.
    NoTenants,
    /// The spec asked for zero requests.
    ZeroRequests,
    /// Every tenant has weight zero — the arrival process is undefined.
    ZeroWeights,
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::NoTenants => write!(f, "server spec has no tenants"),
            ServerError::ZeroRequests => write!(f, "server spec requests zero requests"),
            ServerError::ZeroWeights => write!(f, "all tenant weights are zero"),
        }
    }
}

impl std::error::Error for ServerError {}

/// Per-tenant slice of a [`ServerReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct TenantReport {
    /// Tenant name (from [`TenantSpec::name`]).
    pub name: String,
    /// Requests routed to this tenant.
    pub requests: u64,
    /// Requests that stopped abnormally (faults, trap storms). Failed
    /// requests retire with zero service time and are excluded from the
    /// latency distributions.
    pub failed: u64,
    /// End-to-end latency distribution (queueing + execution + stall).
    pub latency: LatencyStats,
    /// Mutator-visible compile-stall distribution.
    pub stall: LatencyStats,
    /// Order-sensitive digest of the tenant's return values — equal
    /// digests mean the tenant computed the same answers, which is how the
    /// fault-injection tests assert that degradation is graceful.
    pub digest: u64,
}

/// Aggregate result of one serving run.
///
/// `PartialEq` so the determinism tests can assert that different worker
/// pools produce *identical* reports wholesale.
#[derive(Clone, Debug, PartialEq)]
pub struct ServerReport {
    /// Requests served (all tenants, including failed ones).
    pub requests: u64,
    /// End-to-end request-latency distribution across all tenants.
    pub latency: LatencyStats,
    /// Mutator-stall distribution across all tenants — `stall.max` is the
    /// worst pause any single request observed.
    pub stall: LatencyStats,
    /// `(request index, queue depth)` samples of the compile queue.
    pub queue_depth: Vec<(u64, u64)>,
    /// Deepest compile-queue backlog observed at a sample point.
    pub max_queue_depth: u64,
    /// Jain's fairness index over per-tenant mean latencies (1.0 = every
    /// tenant sees the same mean latency).
    pub fairness: f64,
    /// Per-tenant breakdowns, in [`ServerSession`] tenant order.
    pub tenants: Vec<TenantReport>,
    /// Methods compiled by the shared machine over the run.
    pub compilations: u64,
    /// Machine-code bytes resident at the end of the run.
    pub installed_bytes: u64,
    /// Code-cache statistics accumulated over the run.
    pub cache: CacheStats,
    /// Bailout counters accumulated over the run.
    pub bailouts: BailoutCounters,
    /// Final virtual clock — wall time of the whole serving run.
    pub total_cycles: u64,
    /// Warmup-snapshot counters accumulated over the run.
    pub snapshot: SnapshotStats,
}

/// One entry in the precomputed arrival schedule.
#[derive(Clone, Copy, Debug)]
struct Arrival {
    tenant: usize,
    at: u64,
}

/// Generates the arrival schedule: weighted tenant picks with alternating
/// calm/burst inter-arrival gaps, jittered uniformly in `[¾·gap, 1¼·gap)`.
/// Pure function of `(tenants, spec)` — the serve loop never touches the
/// RNG, so schedules are independent of install policy and pool size.
fn schedule(tenants: &[TenantSpec], spec: &ServerSpec) -> Vec<Arrival> {
    let mut rng = Rng64::new(spec.seed);
    let total_weight: u64 = tenants.iter().map(|t| u64::from(t.weight)).sum();
    let mut out = Vec::with_capacity(spec.requests);
    let mut at = 0u64;
    let mut in_window = 0usize;
    let mut bursting = false;
    for _ in 0..spec.requests {
        let window_len = if bursting {
            spec.burst_len
        } else {
            spec.calm_len
        };
        if in_window >= window_len.max(1) {
            bursting = !bursting;
            in_window = 0;
        }
        in_window += 1;
        let base = if bursting {
            spec.burst_gap
        } else {
            spec.calm_gap
        }
        .max(1);
        let jitter = rng.next_u64() % (base / 2 + 1);
        at += base - base / 4 + jitter;
        let mut pick = rng.next_u64() % total_weight;
        let mut tenant = 0usize;
        for (i, t) in tenants.iter().enumerate() {
            let w = u64::from(t.weight);
            if pick < w {
                tenant = i;
                break;
            }
            pick -= w;
        }
        out.push(Arrival { tenant, at });
    }
    out
}

/// A configured serving run, built fluently and executed once — the
/// server-side sibling of [`crate::RunSession`].
///
/// ```
/// use incline_vm::{ServerSession, ServerSpec, TenantSpec, VmConfig};
/// # use incline_ir::{FunctionBuilder, Program, Type};
/// # let mut p = Program::new();
/// # let m = p.declare_function("serve", vec![Type::Int], Type::Int);
/// # let mut fb = FunctionBuilder::new(&p, m);
/// # let x = fb.param(0);
/// # fb.ret(Some(x));
/// # let g = fb.finish();
/// # p.define_method(m, g);
/// let spec = ServerSpec { requests: 10, ..ServerSpec::default() };
/// let report = ServerSession::new(&p, vec![TenantSpec::new("t0", m)], spec)
///     .config(VmConfig::builder().hotness_threshold(3).build())
///     .serve()?;
/// assert_eq!(report.requests, 10);
/// # Ok::<(), incline_vm::ServerError>(())
/// ```
pub struct ServerSession<'p> {
    program: &'p Program,
    tenants: Vec<TenantSpec>,
    spec: ServerSpec,
    inliner: Box<dyn Inliner + 'p>,
    config: VmConfig,
    plan: FaultPlan,
    sink: Arc<dyn TraceSink + 'p>,
    snapshot_in: Option<SnapshotIo>,
    snapshot_merge: Vec<SnapshotIo>,
    snapshot_out: Option<SnapshotIo>,
}

impl<'p> ServerSession<'p> {
    /// Starts a session over `program` serving `tenants` under `spec`.
    /// Defaults: the [`NoInline`](crate::NoInline) inliner,
    /// [`VmConfig::default`], no faults, no tracing.
    pub fn new(program: &'p Program, tenants: Vec<TenantSpec>, spec: ServerSpec) -> Self {
        ServerSession {
            program,
            tenants,
            spec,
            inliner: Box::new(crate::inliner::NoInline),
            config: VmConfig::default(),
            plan: FaultPlan::new(),
            sink: Arc::new(NullSink),
            snapshot_in: None,
            snapshot_merge: Vec::new(),
            snapshot_out: None,
        }
    }

    /// Drives compilation with `inliner` (default: no inlining).
    pub fn inliner(mut self, inliner: Box<dyn Inliner + 'p>) -> Self {
        self.inliner = inliner;
        self
    }

    /// Runs under `config` (default: [`VmConfig::default`]).
    pub fn config(mut self, config: VmConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a deterministic [`FaultPlan`] before the first request.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Routes compile events plus the server timeline markers
    /// ([`CompileEvent::RequestRetired`], [`CompileEvent::QueueDepth`])
    /// into `sink`.
    pub fn trace(mut self, sink: Arc<dyn TraceSink + 'p>) -> Self {
        self.sink = sink;
        self
    }

    /// Loads a warmup snapshot into the shared machine before the first
    /// request — the fleet-warming path: one server's snapshot warms
    /// another server's shared cache for *all* tenants. Same conversions
    /// and graceful-fallback semantics as
    /// [`RunSession::snapshot_in`](crate::RunSession::snapshot_in).
    pub fn snapshot_in(mut self, io: impl Into<SnapshotIo>) -> Self {
        self.snapshot_in = Some(io.into());
        self
    }

    /// Merges N replica snapshots into the shared machine before the first
    /// request — the fleet-distribution path: divergent replicas' warmup
    /// state folds into one deterministic merge (profile union, decision
    /// majority vote, support check). Degrades per replica, exactly like
    /// [`RunSession::snapshot_merge`](crate::RunSession::snapshot_merge).
    pub fn snapshot_merge(mut self, ios: Vec<SnapshotIo>) -> Self {
        self.snapshot_merge = ios;
        self
    }

    /// Writes the shared machine's end-of-run snapshot to `io` after the
    /// last request. Write failures are counted, never an error.
    pub fn snapshot_out(mut self, io: impl Into<SnapshotIo>) -> Self {
        self.snapshot_out = Some(io.into());
        self
    }

    /// Executes the configured serving run on a fresh [`Machine`].
    ///
    /// # Errors
    ///
    /// Returns a [`ServerError`] when the spec is degenerate (no tenants,
    /// zero requests, all-zero weights). Per-request execution failures do
    /// **not** abort the run — they are counted in
    /// [`TenantReport::failed`].
    pub fn serve(self) -> Result<ServerReport, ServerError> {
        if self.tenants.is_empty() {
            return Err(ServerError::NoTenants);
        }
        if self.spec.requests == 0 {
            return Err(ServerError::ZeroRequests);
        }
        if self.tenants.iter().all(|t| t.weight == 0) {
            return Err(ServerError::ZeroWeights);
        }

        let arrivals = schedule(&self.tenants, &self.spec);
        // Per-tenant request totals decide each tenant's flip point:
        // tenant i serves `flip_at[i]` phase-A requests, then flips.
        let n = self.tenants.len();
        let mut totals = vec![0u64; n];
        for a in &arrivals {
            totals[a.tenant] += 1;
        }
        let flip_at: Vec<u64> = self
            .tenants
            .iter()
            .zip(&totals)
            .map(|(t, &total)| (total as f64 * t.flip_after.clamp(0.0, 1.0)).round() as u64)
            .collect();

        let mut vm = Machine::new(self.program, self.inliner, self.config);
        vm.set_fault_plan(self.plan);
        vm.set_trace_sink(Arc::clone(&self.sink));
        if let Some(io) = &self.snapshot_in {
            match io.store().read() {
                Ok(bytes) => {
                    vm.load_snapshot_or_cold(&bytes);
                }
                Err(e) => vm.note_snapshot_fallback(&e.to_string()),
            }
        }
        if !self.snapshot_merge.is_empty() {
            let replicas = crate::runner::read_replicas(&self.snapshot_merge, &mut vm);
            vm.load_merged_or_cold(&replicas);
        }

        let mut clock = 0u64;
        let mut served = vec![0u64; n];
        let mut failed = vec![0u64; n];
        let mut digests = vec![0xcbf2_9ce4_8422_2325u64; n];
        let mut lat_all = Vec::with_capacity(arrivals.len());
        let mut stall_all = Vec::with_capacity(arrivals.len());
        let mut lat_tenant: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut stall_tenant: Vec<Vec<u64>> = vec![Vec::new(); n];
        let mut queue_depth = Vec::new();

        for (r, arrival) in arrivals.iter().enumerate() {
            let t = arrival.tenant;
            clock = clock.max(arrival.at);
            let queueing = clock - arrival.at;
            let tenant = &self.tenants[t];
            let phase_b = served[t] >= flip_at[t];
            let x = if phase_b {
                tenant.pivot.saturating_add(tenant.work)
            } else {
                tenant.work
            };
            served[t] += 1;
            match vm.run(tenant.entry, vec![Value::Int(x)]) {
                Ok(out) => {
                    let service = out.total_cycles();
                    clock += service;
                    let latency = queueing + service;
                    lat_all.push(latency);
                    stall_all.push(out.stall_cycles);
                    lat_tenant[t].push(latency);
                    stall_tenant[t].push(out.stall_cycles);
                    // FNV-1a over the rendered return value: cheap,
                    // order-sensitive, stable across platforms.
                    let rendered = match &out.value {
                        Some(v) => format!("{v:?}"),
                        None => "()".to_string(),
                    };
                    for b in rendered.bytes() {
                        digests[t] = (digests[t] ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
                    }
                    if self.sink.enabled() {
                        self.sink.emit(CompileEvent::RequestRetired {
                            tenant: tenant.name.clone(),
                            request: r as u64,
                            latency,
                            stall: out.stall_cycles,
                        });
                    }
                }
                Err(_) => {
                    // Graceful degradation: the failure is charged to the
                    // tenant, the clock does not advance, and the next
                    // request proceeds on the same machine.
                    failed[t] += 1;
                }
            }
            if self.spec.queue_sample_every > 0 && r % self.spec.queue_sample_every == 0 {
                let depth = vm.pending_compiles() as u64;
                queue_depth.push((r as u64, depth));
                if self.sink.enabled() {
                    self.sink.emit(CompileEvent::QueueDepth {
                        request: r as u64,
                        depth,
                    });
                }
            }
        }

        let tenant_means: Vec<f64> = lat_tenant
            .iter()
            .map(|l| LatencyStats::of(l).mean)
            .collect();
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantReport {
                name: t.name.clone(),
                requests: totals[i],
                failed: failed[i],
                latency: LatencyStats::of(&lat_tenant[i]),
                stall: LatencyStats::of(&stall_tenant[i]),
                digest: digests[i],
            })
            .collect();
        let max_queue_depth = queue_depth.iter().map(|&(_, d)| d).max().unwrap_or(0);
        if let Some(io) = &self.snapshot_out {
            let snap = vm.snapshot();
            let bytes = snap.to_bytes();
            match io.store().write(&bytes) {
                Ok(()) => vm.note_snapshot_written(
                    snap.methods.len() as u64,
                    snap.decisions.len() as u64,
                    bytes.len() as u64,
                ),
                Err(_) => vm.note_snapshot_write_failed(),
            }
        }
        Ok(ServerReport {
            requests: arrivals.len() as u64,
            latency: LatencyStats::of(&lat_all),
            stall: LatencyStats::of(&stall_all),
            queue_depth,
            max_queue_depth,
            fairness: fairness_index(&tenant_means),
            tenants,
            compilations: vm.compilations(),
            installed_bytes: vm.installed_bytes(),
            cache: vm.cache_stats(),
            bailouts: vm.bailouts(),
            total_cycles: clock,
            snapshot: vm.snapshot_stats(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::Type;

    fn two_tenant_program() -> (Program, MethodId, MethodId) {
        let mut p = Program::new();
        let a = p.declare_function("tenant_a", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, a);
        let x = fb.param(0);
        let k = fb.const_int(3);
        let r = fb.imul(x, k);
        fb.ret(Some(r));
        p.define_method(a, fb.finish());
        let b = p.declare_function("tenant_b", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, b);
        let x = fb.param(0);
        let k = fb.const_int(7);
        let r = fb.iadd(x, k);
        fb.ret(Some(r));
        p.define_method(b, fb.finish());
        (p, a, b)
    }

    fn tenants(a: MethodId, b: MethodId) -> Vec<TenantSpec> {
        vec![
            TenantSpec {
                weight: 3,
                work: 5,
                pivot: 100,
                flip_after: 0.5,
                ..TenantSpec::new("alpha", a)
            },
            TenantSpec {
                weight: 1,
                ..TenantSpec::new("beta", b)
            },
        ]
    }

    #[test]
    fn schedule_is_seed_deterministic_and_bursty() {
        let (_p, a, b) = two_tenant_program();
        let ts = tenants(a, b);
        let spec = ServerSpec::default();
        let s1 = schedule(&ts, &spec);
        let s2 = schedule(&ts, &spec);
        assert_eq!(s1.len(), spec.requests);
        assert!(s1
            .iter()
            .zip(&s2)
            .all(|(x, y)| x.tenant == y.tenant && x.at == y.at));
        // Both short (burst) and long (calm) inter-arrival gaps occur.
        let gaps: Vec<u64> = s1.windows(2).map(|w| w[1].at - w[0].at).collect();
        assert!(gaps
            .iter()
            .any(|&g| g <= spec.burst_gap + spec.burst_gap / 4));
        assert!(gaps.iter().any(|&g| g >= spec.calm_gap / 2));
    }

    #[test]
    fn serve_produces_full_report() {
        let (p, a, b) = two_tenant_program();
        let spec = ServerSpec {
            requests: 60,
            ..ServerSpec::default()
        };
        let report = ServerSession::new(&p, tenants(a, b), spec)
            .config(VmConfig::builder().hotness_threshold(4).build())
            .serve()
            .unwrap();
        assert_eq!(report.requests, 60);
        assert_eq!(report.tenants.len(), 2);
        assert_eq!(report.tenants.iter().map(|t| t.requests).sum::<u64>(), 60);
        assert!(report.latency.p50 <= report.latency.p99);
        assert!(report.latency.p99 <= report.latency.max);
        assert!(report.fairness > 0.0 && report.fairness <= 1.0);
        assert!(!report.queue_depth.is_empty());
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn report_identical_across_worker_pools_in_barrier_mode() {
        let (p, a, b) = two_tenant_program();
        let run = |threads: usize| {
            ServerSession::new(
                &p,
                tenants(a, b),
                ServerSpec {
                    requests: 80,
                    ..ServerSpec::default()
                },
            )
            .config(
                VmConfig::builder()
                    .hotness_threshold(4)
                    .compile_threads(threads)
                    .build(),
            )
            .serve()
            .unwrap()
        };
        let base = run(0);
        assert_eq!(base, run(1));
        assert_eq!(base, run(4));
    }

    #[test]
    fn degenerate_specs_are_rejected() {
        let (p, a, b) = two_tenant_program();
        let err = ServerSession::new(&p, vec![], ServerSpec::default())
            .serve()
            .unwrap_err();
        assert_eq!(err, ServerError::NoTenants);
        let err = ServerSession::new(
            &p,
            tenants(a, b),
            ServerSpec {
                requests: 0,
                ..ServerSpec::default()
            },
        )
        .serve()
        .unwrap_err();
        assert_eq!(err, ServerError::ZeroRequests);
        let mut zero = tenants(a, b);
        for t in &mut zero {
            t.weight = 0;
        }
        let err = ServerSession::new(&p, zero, ServerSpec::default())
            .serve()
            .unwrap_err();
        assert_eq!(err, ServerError::ZeroWeights);
    }

    #[test]
    fn one_servers_snapshot_warms_the_next() {
        let (p, a, b) = two_tenant_program();
        let spec = ServerSpec {
            requests: 80,
            ..ServerSpec::default()
        };
        let config = VmConfig::builder().hotness_threshold(4).build();
        let store = Arc::new(crate::snapshot::MemoryStore::new());
        let cold = ServerSession::new(&p, tenants(a, b), spec.clone())
            .config(config)
            .snapshot_out(store.clone())
            .serve()
            .unwrap();
        assert_eq!(cold.snapshot.written, 1);
        let warm = ServerSession::new(&p, tenants(a, b), spec)
            .config(config)
            .snapshot_in(store)
            .serve()
            .unwrap();
        assert_eq!(warm.snapshot.loaded, 1);
        assert!(warm.snapshot.replayed_compiles > 0);
        // Same answers per tenant, faster wall clock: the warmed server
        // never pays mutator-visible warmup compiles.
        for (c, w) in cold.tenants.iter().zip(&warm.tenants) {
            assert_eq!(c.digest, w.digest, "tenant {} answers must match", c.name);
        }
        assert!(
            warm.total_cycles <= cold.total_cycles,
            "fleet warming must not slow the run: {} vs {}",
            warm.total_cycles,
            cold.total_cycles
        );
    }

    #[test]
    fn phase_flip_changes_inputs_mid_run() {
        // One tenant, flip at 50%: the digest must differ from a run that
        // never flips, because phase-B inputs differ.
        let (p, a, _b) = two_tenant_program();
        let spec = ServerSpec {
            requests: 40,
            ..ServerSpec::default()
        };
        let flipped = ServerSession::new(
            &p,
            vec![TenantSpec {
                work: 5,
                pivot: 100,
                flip_after: 0.5,
                ..TenantSpec::new("solo", a)
            }],
            spec.clone(),
        )
        .serve()
        .unwrap();
        let steady = ServerSession::new(
            &p,
            vec![TenantSpec {
                work: 5,
                pivot: 100,
                flip_after: 1.0,
                ..TenantSpec::new("solo", a)
            }],
            spec,
        )
        .serve()
        .unwrap();
        assert_ne!(flipped.tenants[0].digest, steady.tenants[0].digest);
    }
}
