//! Persistent profile/compile snapshots with deterministic replay.
//!
//! A [`Snapshot`] serializes everything the VM learned during a run that is
//! worth carrying into the *next* run: the full [`incline_profile`] state
//! (hotness counters, block counts, callsite counts, receiver histograms —
//! including profiles merged back after deoptimizations) plus the
//! per-method **compile decision log** (tier, inline-plan hash, speculation
//! sites, in installation order). On the next run the snapshot is applied
//! in one of two [`ReplayMode`]s:
//!
//! * [`ReplayMode::Eager`] — the snapshot's method set is compiled up front
//!   **through the normal broker/ladder/cache-admission path**, so compile
//!   budgets, verification, admission control and fault injection all still
//!   apply. Warmup moves out of the measured iterations.
//! * [`ReplayMode::Seed`] — only the hotness counters are pre-warmed, so
//!   tiering triggers on the first invocation but every compile decision is
//!   re-derived from the (seeded) profiles.
//!
//! # Format
//!
//! Snapshots are versioned, dependency-free JSONL — the same hand-rolled
//! idiom as the [`incline_trace`] JSONL sinks. One header line, one line
//! per profiled method, one line per compile decision, and a trailing
//! checksum line (FNV-1a 64 over every preceding byte):
//!
//! ```text
//! {"snapshot":"incline","v":1,"fingerprint":"4af37...","methods":2,"decisions":1}
//! {"rec":"profile","method":3,"inv":120,"back":960,"blocks":[[0,120],[1,960]],"sites":[[0,960]],"recv":[[0,[[2,900],[5,60]]]]}
//! {"rec":"decision","method":3,"tier":"full","plan":"9e10c7...","spec":1}
//! {"rec":"end","crc":"77f0a..."}
//! ```
//!
//! Every map is sorted before serialization, so a snapshot of a
//! deterministic run is **byte-identical across `compile_threads`** — the
//! round-trip tests assert it. The header's `fingerprint` hashes the
//! printed program text; loading a snapshot against a different program
//! fails with [`SnapshotError::StaleProgram`]. Truncated, bit-flipped or
//! version-bumped snapshots fail parsing or the checksum — **never a
//! panic** — and the machine falls back to a cold start, counting the
//! event in [`SnapshotStats::fallbacks`].
//!
//! # I/O
//!
//! Snapshot bytes move through the [`SnapshotStore`] trait so the library
//! stays testable without touching disk: [`MemoryStore`] keeps bytes in a
//! mutex-guarded cell (share it via `Arc` between a writing and a reading
//! session), [`FileStore`] reads/writes one file. [`SnapshotIo`] is the
//! `Into`-friendly handle the builders accept, with conversions from
//! paths, raw bytes and `Arc`ed stores.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::{Arc, Mutex};

use incline_ir::{BlockId, ClassId, MethodId, Program};
use incline_profile::{MethodProfile, ProfileTable};

use crate::machine::CompileStage;

/// Current snapshot format version. Readers reject any other value.
pub const SNAPSHOT_VERSION: u64 = 1;

/// How a loaded snapshot is applied before the next run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReplayMode {
    /// Compile the snapshot's method set up front through the normal
    /// broker/ladder/cache-admission path (budgets and verification still
    /// apply), in recorded decision order.
    #[default]
    Eager,
    /// Pre-warm the hotness counters only; tiering triggers immediately
    /// but every compile decision is re-derived.
    Seed,
}

impl ReplayMode {
    /// CLI/JSON label: `"eager"` or `"seed"`.
    pub fn label(self) -> &'static str {
        match self {
            ReplayMode::Eager => "eager",
            ReplayMode::Seed => "seed",
        }
    }
}

impl FromStr for ReplayMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "eager" => Ok(ReplayMode::Eager),
            "seed" => Ok(ReplayMode::Seed),
            other => Err(format!("unknown replay mode `{other}` (eager, seed)")),
        }
    }
}

/// Lifetime snapshot counters, reported via
/// [`CompilationReport`](crate::CompilationReport). Deterministic for a
/// given run setup, like the bailout and cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    /// Snapshots successfully parsed, fingerprint-checked and applied.
    pub loaded: u64,
    /// Stale/corrupt/version-mismatched (or unreadable) snapshots that
    /// degraded gracefully to a cold start.
    pub fallbacks: u64,
    /// Methods compiled up front by eager replay (through the normal
    /// broker path; admission-deferred or blacklisted methods don't count).
    pub replayed_compiles: u64,
    /// Methods whose profile counters were pre-warmed by a loaded snapshot.
    pub seeded_methods: u64,
    /// Snapshots serialized and handed to a store.
    pub written: u64,
    /// Snapshot writes the store rejected (I/O errors degrade gracefully).
    pub write_failures: u64,
    /// Distinct replica snapshots folded into an applied N-way merge.
    pub merged: u64,
    /// Decisions the merge's support check dropped because the merged
    /// profile no longer justified them.
    pub aged_out: u64,
    /// Replayed decisions quarantined after deoptimizing within their
    /// first `poison_window` compiled activations (excluded from the next
    /// `snapshot_out`).
    pub poisoned: u64,
}

/// The serialized profile of one method, maps sorted for determinism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MethodRecord {
    /// The profiled method.
    pub method: MethodId,
    /// Interpreted activations.
    pub invocations: u64,
    /// Taken loop back edges.
    pub backedges: u64,
    /// Per-block execution counts, sorted by block id.
    pub blocks: Vec<(BlockId, u64)>,
    /// Per-callsite execution counts, sorted by site index.
    pub callsites: Vec<(u32, u64)>,
    /// Receiver histograms per callsite, sorted by site index then class.
    pub receivers: Vec<(u32, Vec<(ClassId, u64)>)>,
}

/// One compile decision the broker took, recorded at install time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecisionRecord {
    /// The installed method.
    pub method: MethodId,
    /// The ladder rung the surviving package came from.
    pub tier: CompileStage,
    /// FNV-1a 64 hash of the installed graph's printed text — a stable
    /// fingerprint of the inline plan the compile produced.
    pub plan_hash: u64,
    /// Speculative (deopt-guarded) typeswitch sites in the installed code.
    pub speculative_sites: u64,
}

/// A versioned, self-checksummed capture of profile state plus the compile
/// decision log. See the [module docs](self) for the format.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// FNV-1a 64 hash of the printed program this snapshot was taken from.
    pub fingerprint: u64,
    /// Per-method profiles, sorted by method id.
    pub methods: Vec<MethodRecord>,
    /// Compile decisions in installation order (a method recompiled after
    /// a deoptimization appears once per install).
    pub decisions: Vec<DecisionRecord>,
}

/// Why a snapshot could not be loaded (or a store could not move bytes).
/// Every variant degrades to a cold start when hit through the graceful
/// paths — none of them ever panics the VM.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The header's `v` field is not [`SNAPSHOT_VERSION`].
    VersionMismatch {
        /// The version the snapshot claims.
        found: u64,
    },
    /// The bytes do not parse as a well-formed snapshot (truncation,
    /// bit flips, wrong file).
    Corrupt(String),
    /// The trailing FNV-1a checksum does not match the preceding bytes.
    ChecksumMismatch,
    /// The snapshot was taken from a different program.
    StaleProgram {
        /// Fingerprint of the program being run.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// The [`SnapshotStore`] could not read or write.
    Io(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::VersionMismatch { found } => {
                write!(
                    f,
                    "snapshot version {found} != supported {SNAPSHOT_VERSION}"
                )
            }
            SnapshotError::Corrupt(why) => write!(f, "corrupt snapshot: {why}"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::StaleProgram { expected, found } => write!(
                f,
                "stale snapshot: program fingerprint {found:016x} != {expected:016x}"
            ),
            SnapshotError::Io(why) => write!(f, "snapshot i/o: {why}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---- fingerprint & hashing -------------------------------------------------

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// FNV-1a 64 over a byte slice — the workspace's stock digest (same
/// constants as the server report's answer digests).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprints a program by hashing its printed text: any change to a
/// method body, signature or class layout changes the fingerprint, so a
/// snapshot can never seed profiles into the wrong program.
pub fn fingerprint(program: &Program) -> u64 {
    fnv1a(incline_ir::print::program_str(program).as_bytes())
}

// ---- capture ---------------------------------------------------------------

impl MethodRecord {
    fn capture(method: MethodId, p: &MethodProfile) -> Self {
        let mut blocks: Vec<(BlockId, u64)> =
            p.block_counts.iter().map(|(&b, &c)| (b, c)).collect();
        blocks.sort();
        let mut callsites: Vec<(u32, u64)> =
            p.callsite_counts.iter().map(|(&s, &c)| (s, c)).collect();
        callsites.sort();
        let mut receivers: Vec<(u32, Vec<(ClassId, u64)>)> = p
            .receivers
            .iter()
            .map(|(&site, hist)| {
                let mut h: Vec<(ClassId, u64)> = hist.iter().map(|(&cl, &c)| (cl, c)).collect();
                h.sort();
                (site, h)
            })
            .collect();
        receivers.sort_by_key(|&(site, _)| site);
        MethodRecord {
            method,
            invocations: p.invocations,
            backedges: p.backedges,
            blocks,
            callsites,
            receivers,
        }
    }

    fn to_profile(&self) -> MethodProfile {
        MethodProfile {
            invocations: self.invocations,
            backedges: self.backedges,
            block_counts: self.blocks.iter().copied().collect(),
            callsite_counts: self.callsites.iter().copied().collect(),
            receivers: self
                .receivers
                .iter()
                .map(|(site, hist)| {
                    let h: HashMap<ClassId, u64> = hist.iter().copied().collect();
                    (*site, h)
                })
                .collect(),
        }
    }
}

impl Snapshot {
    /// Captures profiles and the decision log under `fingerprint`, sorting
    /// every map so the result is deterministic.
    pub fn capture(
        fingerprint: u64,
        profiles: &ProfileTable,
        decisions: &[DecisionRecord],
    ) -> Snapshot {
        let mut methods: Vec<MethodRecord> = profiles
            .iter()
            .map(|(m, p)| MethodRecord::capture(m, p))
            .collect();
        methods.sort_by_key(|r| r.method);
        Snapshot {
            fingerprint,
            methods,
            decisions: decisions.to_vec(),
        }
    }

    /// Rebuilds a [`ProfileTable`] from the serialized per-method records.
    pub fn profile_table(&self) -> ProfileTable {
        let mut t = ProfileTable::new();
        for r in &self.methods {
            t.insert(r.method, r.to_profile());
        }
        t
    }

    // ---- serialization -----------------------------------------------------

    /// Serializes to the versioned JSONL format, byte-deterministic for a
    /// given snapshot value.
    pub fn to_bytes(&self) -> Vec<u8> {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.methods.len() * 128);
        let _ = writeln!(
            out,
            "{{\"snapshot\":\"incline\",\"v\":{SNAPSHOT_VERSION},\"fingerprint\":\"{:016x}\",\
             \"methods\":{},\"decisions\":{}}}",
            self.fingerprint,
            self.methods.len(),
            self.decisions.len()
        );
        for r in &self.methods {
            let _ = write!(
                out,
                "{{\"rec\":\"profile\",\"method\":{},\"inv\":{},\"back\":{},\"blocks\":[",
                r.method.index(),
                r.invocations,
                r.backedges
            );
            for (i, (b, c)) in r.blocks.iter().enumerate() {
                let _ = write!(out, "{}[{},{c}]", if i > 0 { "," } else { "" }, b.index());
            }
            out.push_str("],\"sites\":[");
            for (i, (s, c)) in r.callsites.iter().enumerate() {
                let _ = write!(out, "{}[{s},{c}]", if i > 0 { "," } else { "" });
            }
            out.push_str("],\"recv\":[");
            for (i, (site, hist)) in r.receivers.iter().enumerate() {
                let _ = write!(out, "{}[{site},[", if i > 0 { "," } else { "" });
                for (j, (cl, c)) in hist.iter().enumerate() {
                    let _ = write!(out, "{}[{},{c}]", if j > 0 { "," } else { "" }, cl.index());
                }
                out.push_str("]]");
            }
            out.push_str("]}\n");
        }
        for d in &self.decisions {
            let _ = writeln!(
                out,
                "{{\"rec\":\"decision\",\"method\":{},\"tier\":\"{}\",\"plan\":\"{:016x}\",\
                 \"spec\":{}}}",
                d.method.index(),
                d.tier,
                d.plan_hash,
                d.speculative_sites
            );
        }
        let crc = fnv1a(out.as_bytes());
        let _ = writeln!(out, "{{\"rec\":\"end\",\"crc\":\"{crc:016x}\"}}");
        out.into_bytes()
    }

    /// Parses and checksums snapshot bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on any malformed byte,
    /// [`SnapshotError::VersionMismatch`] on an unsupported header version,
    /// [`SnapshotError::ChecksumMismatch`] when the trailing CRC does not
    /// cover the preceding bytes (truncation, bit flips).
    pub fn from_bytes(bytes: &[u8]) -> Result<Snapshot, SnapshotError> {
        let text = std::str::from_utf8(bytes)
            .map_err(|_| SnapshotError::Corrupt("not utf-8".to_string()))?;
        // Locate the checksum line and verify it covers everything before it.
        let body_end = text
            .rfind("{\"rec\":\"end\"")
            .ok_or_else(|| SnapshotError::Corrupt("missing end record".to_string()))?;
        let (body, end_line) = text.split_at(body_end);
        let end = parse::object(end_line.trim_end())
            .map_err(|e| SnapshotError::Corrupt(format!("end record: {e}")))?;
        let crc = end
            .hex("crc")
            .ok_or_else(|| SnapshotError::Corrupt("end record lacks crc".to_string()))?;
        if crc != fnv1a(body.as_bytes()) {
            return Err(SnapshotError::ChecksumMismatch);
        }

        let mut lines = body.lines();
        let header_line = lines
            .next()
            .ok_or_else(|| SnapshotError::Corrupt("empty snapshot".to_string()))?;
        let header = parse::object(header_line)
            .map_err(|e| SnapshotError::Corrupt(format!("header: {e}")))?;
        if header.str("snapshot") != Some("incline") {
            return Err(SnapshotError::Corrupt(
                "not an incline snapshot".to_string(),
            ));
        }
        let version = header
            .num("v")
            .ok_or_else(|| SnapshotError::Corrupt("header lacks version".to_string()))?;
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::VersionMismatch { found: version });
        }
        let fingerprint = header
            .hex("fingerprint")
            .ok_or_else(|| SnapshotError::Corrupt("header lacks fingerprint".to_string()))?;
        let want_methods = header.num("methods").unwrap_or(0) as usize;
        let want_decisions = header.num("decisions").unwrap_or(0) as usize;

        let mut methods = Vec::with_capacity(want_methods);
        let mut decisions = Vec::with_capacity(want_decisions);
        for (i, line) in lines.enumerate() {
            let obj = parse::object(line)
                .map_err(|e| SnapshotError::Corrupt(format!("record {i}: {e}")))?;
            match obj.str("rec") {
                Some("profile") => methods.push(parse_method(&obj, i)?),
                Some("decision") => decisions.push(parse_decision(&obj, i)?),
                other => {
                    return Err(SnapshotError::Corrupt(format!(
                        "record {i}: unknown kind {other:?}"
                    )))
                }
            }
        }
        if methods.len() != want_methods || decisions.len() != want_decisions {
            return Err(SnapshotError::Corrupt(format!(
                "header promised {want_methods} profiles + {want_decisions} decisions, \
                 found {} + {}",
                methods.len(),
                decisions.len()
            )));
        }
        Ok(Snapshot {
            fingerprint,
            methods,
            decisions,
        })
    }

    /// The set of methods the decision log covers, first-appearance order —
    /// the set eager replay compiles up front.
    pub fn decided_methods(&self) -> Vec<MethodId> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        for d in &self.decisions {
            if seen.insert(d.method) {
                out.push(d.method);
            }
        }
        out
    }
}

// ---- N-way replica merge ---------------------------------------------------

/// Tuning knobs of [`Snapshot::merge`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MergePolicy {
    /// The support bar of the `DecisionAge` check: a voted-in decision
    /// survives only while its method's hotness (invocations + back edges)
    /// in the *merged* profile is at least this. The machine's merge path
    /// uses its own `hotness_threshold` here, so a decision is kept exactly
    /// as long as the merged evidence would still tier the method up.
    pub min_support: u64,
}

impl Default for MergePolicy {
    fn default() -> Self {
        MergePolicy { min_support: 1 }
    }
}

impl MergePolicy {
    /// A policy with an explicit support bar.
    pub fn with_support(min_support: u64) -> Self {
        MergePolicy { min_support }
    }
}

/// Counters describing one N-way merge, carried in [`Merged`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Distinct replicas that contributed (after deduplication).
    pub replicas: u64,
    /// Byte-identical replica inputs dropped by deduplication.
    pub duplicates: u64,
    /// Method profiles in the merged snapshot.
    pub methods: u64,
    /// Decisions that survived the vote and the support check.
    pub decisions: u64,
    /// Methods on which replicas cast ballots for different decisions.
    pub conflicts: u64,
    /// Decisions dropped by the support check.
    pub aged_out: u64,
}

/// The result of [`Snapshot::merge`]: the merged snapshot plus everything
/// an observer needs (counters and the aged-out decision list).
#[derive(Clone, Debug, PartialEq)]
pub struct Merged {
    /// The merged, deterministic snapshot (decisions sorted by method).
    pub snapshot: Snapshot,
    /// Merge counters.
    pub stats: MergeStats,
    /// Decisions dropped by the support check, with the merged hotness
    /// that failed the bar — in method order.
    pub aged_out: Vec<(DecisionRecord, u64)>,
    /// The support bar the aged-out decisions failed to meet.
    pub min_support: u64,
}

fn tier_rank(tier: CompileStage) -> u8 {
    match tier {
        CompileStage::Full => 0,
        CompileStage::Degraded => 1,
    }
}

impl Snapshot {
    /// Merges N replica snapshots of the *same program* into one:
    ///
    /// * **profiles** — the union of every replica's histograms with
    ///   weighted (summed) counts, via [`ProfileTable::merge`];
    /// * **decisions** — one ballot per replica per method (a replica's
    ///   *last* recorded decision for that method); the candidate with the
    ///   most ballots wins, ties broken by the total observed hotness of
    ///   the replicas backing each candidate, then by the smallest
    ///   `(tier, plan, spec)` key so the result is a pure function of the
    ///   input *set*;
    /// * **support check** — a winning decision is dropped (aged out) when
    ///   the merged profile's hotness for its method falls below
    ///   [`MergePolicy::min_support`].
    ///
    /// Byte-identical replica inputs are deduplicated first, so at-least-
    /// once snapshot delivery cannot double-weigh a replica's traffic —
    /// this is what makes the merge idempotent. The output's methods and
    /// decisions are sorted by method id, so any permutation of the same
    /// replica set serializes to byte-identical output.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Corrupt`] on an empty replica list and
    /// [`SnapshotError::StaleProgram`] when the replicas disagree on the
    /// program fingerprint — callers that merge best-effort should filter
    /// foreign replicas out first (the machine's merge path does).
    pub fn merge(replicas: &[Snapshot], policy: &MergePolicy) -> Result<Merged, SnapshotError> {
        let first = replicas
            .first()
            .ok_or_else(|| SnapshotError::Corrupt("merge of zero replicas".to_string()))?;
        let fingerprint = first.fingerprint;
        for r in replicas {
            if r.fingerprint != fingerprint {
                return Err(SnapshotError::StaleProgram {
                    expected: fingerprint,
                    found: r.fingerprint,
                });
            }
        }
        // Deduplicate byte-identical replicas: redelivered snapshots must
        // not double-count their observations.
        let mut seen = BTreeSet::new();
        let mut uniq: Vec<&Snapshot> = Vec::with_capacity(replicas.len());
        for r in replicas {
            if seen.insert(fnv1a(&r.to_bytes())) {
                uniq.push(r);
            }
        }
        let duplicates = (replicas.len() - uniq.len()) as u64;

        // Union of the profile histograms, weighted by raw counts.
        let mut table = ProfileTable::new();
        for r in &uniq {
            table.merge(&r.profile_table());
        }

        // One ballot per replica per method: its last recorded decision.
        // Candidates are keyed by decision content; each accumulates its
        // ballot count and the total hotness of the replicas backing it.
        type CandKey = (u8, u64, u64);
        let mut ballots: BTreeMap<MethodId, BTreeMap<CandKey, (u64, u64)>> = BTreeMap::new();
        for r in &uniq {
            let mut last: BTreeMap<MethodId, &DecisionRecord> = BTreeMap::new();
            for d in &r.decisions {
                last.insert(d.method, d);
            }
            for (m, d) in last {
                let hot = r
                    .methods
                    .binary_search_by_key(&m, |rec| rec.method)
                    .ok()
                    .map_or(0, |i| {
                        r.methods[i]
                            .invocations
                            .saturating_add(r.methods[i].backedges)
                    });
                let key = (tier_rank(d.tier), d.plan_hash, d.speculative_sites);
                let slot = ballots.entry(m).or_default().entry(key).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += hot;
            }
        }

        let mut decisions = Vec::new();
        let mut aged_out = Vec::new();
        let mut conflicts = 0u64;
        for (&m, cands) in &ballots {
            if cands.len() > 1 {
                conflicts += 1;
            }
            let (&(tier, plan_hash, speculative_sites), _) = cands
                .iter()
                .max_by(|(ka, (va, ha)), (kb, (vb, hb))| {
                    va.cmp(vb).then(ha.cmp(hb)).then(kb.cmp(ka))
                })
                .expect("ballot map is non-empty");
            let rec = DecisionRecord {
                method: m,
                tier: match tier {
                    0 => CompileStage::Full,
                    _ => CompileStage::Degraded,
                },
                plan_hash,
                speculative_sites,
            };
            let hotness = table.hotness(m);
            if hotness < policy.min_support {
                aged_out.push((rec, hotness));
            } else {
                decisions.push(rec);
            }
        }

        let snapshot = Snapshot::capture(fingerprint, &table, &decisions);
        let stats = MergeStats {
            replicas: uniq.len() as u64,
            duplicates,
            methods: snapshot.methods.len() as u64,
            decisions: snapshot.decisions.len() as u64,
            conflicts,
            aged_out: aged_out.len() as u64,
        };
        Ok(Merged {
            snapshot,
            stats,
            aged_out,
            min_support: policy.min_support,
        })
    }
}

fn corrupt(i: usize, why: &str) -> SnapshotError {
    SnapshotError::Corrupt(format!("record {i}: {why}"))
}

fn parse_method(obj: &parse::Obj, i: usize) -> Result<MethodRecord, SnapshotError> {
    let method = MethodId::new(obj.num("method").ok_or_else(|| corrupt(i, "method"))? as usize);
    let blocks = obj
        .pairs("blocks")
        .ok_or_else(|| corrupt(i, "blocks"))?
        .into_iter()
        .map(|(b, c)| (BlockId::new(b as usize), c))
        .collect();
    let callsites = obj
        .pairs("sites")
        .ok_or_else(|| corrupt(i, "sites"))?
        .into_iter()
        .map(|(s, c)| (s as u32, c))
        .collect();
    let receivers = obj
        .nested_pairs("recv")
        .ok_or_else(|| corrupt(i, "recv"))?
        .into_iter()
        .map(|(site, hist)| {
            let h: Vec<(ClassId, u64)> = hist
                .into_iter()
                .map(|(cl, c)| (ClassId::new(cl as usize), c))
                .collect();
            (site as u32, h)
        })
        .collect();
    Ok(MethodRecord {
        method,
        invocations: obj.num("inv").ok_or_else(|| corrupt(i, "inv"))?,
        backedges: obj.num("back").ok_or_else(|| corrupt(i, "back"))?,
        blocks,
        callsites,
        receivers,
    })
}

fn parse_decision(obj: &parse::Obj, i: usize) -> Result<DecisionRecord, SnapshotError> {
    let tier = match obj.str("tier") {
        Some("full") => CompileStage::Full,
        Some("degraded") => CompileStage::Degraded,
        other => return Err(corrupt(i, &format!("tier {other:?}"))),
    };
    Ok(DecisionRecord {
        method: MethodId::new(obj.num("method").ok_or_else(|| corrupt(i, "method"))? as usize),
        tier,
        plan_hash: obj.hex("plan").ok_or_else(|| corrupt(i, "plan"))?,
        speculative_sites: obj.num("spec").ok_or_else(|| corrupt(i, "spec"))?,
    })
}

// ---- minimal JSON parsing --------------------------------------------------

/// Just enough JSON to read the snapshot's own output: flat objects whose
/// values are unsigned integers, strings, or (nested) arrays of unsigned
/// integers. Strict — anything else is an error, which is exactly what the
/// corruption tests want.
mod parse {
    /// One parsed value.
    #[derive(Clone, Debug, PartialEq)]
    pub enum Val {
        /// An unsigned integer.
        Num(u64),
        /// A string (no escapes needed by the snapshot format).
        Str(String),
        /// An array of values.
        Arr(Vec<Val>),
    }

    /// A parsed flat object: ordered `(key, value)` pairs.
    #[derive(Clone, Debug, Default)]
    pub struct Obj {
        fields: Vec<(String, Val)>,
    }

    impl Obj {
        fn get(&self, key: &str) -> Option<&Val> {
            self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
        }

        pub fn num(&self, key: &str) -> Option<u64> {
            match self.get(key)? {
                Val::Num(n) => Some(*n),
                _ => None,
            }
        }

        pub fn str(&self, key: &str) -> Option<&str> {
            match self.get(key)? {
                Val::Str(s) => Some(s),
                _ => None,
            }
        }

        /// A 16-digit lowercase hex string field.
        pub fn hex(&self, key: &str) -> Option<u64> {
            u64::from_str_radix(self.str(key)?, 16).ok()
        }

        /// `[[a,b],...]` — an array of integer pairs.
        pub fn pairs(&self, key: &str) -> Option<Vec<(u64, u64)>> {
            match self.get(key)? {
                Val::Arr(items) => items.iter().map(pair).collect(),
                _ => None,
            }
        }

        /// `[[k,[[a,b],...]],...]` — pairs whose second element is itself a
        /// pair list (receiver histograms).
        pub fn nested_pairs(&self, key: &str) -> Option<NestedPairs> {
            let Val::Arr(items) = self.get(key)? else {
                return None;
            };
            items
                .iter()
                .map(|item| {
                    let Val::Arr(kv) = item else { return None };
                    let [Val::Num(k), Val::Arr(hist)] = kv.as_slice() else {
                        return None;
                    };
                    let h: Option<Vec<(u64, u64)>> = hist.iter().map(pair).collect();
                    Some((*k, h?))
                })
                .collect()
        }
    }

    /// Keys paired with `[(a, b), ...]` lists, as read by
    /// [`Obj::nested_pairs`].
    pub type NestedPairs = Vec<(u64, Vec<(u64, u64)>)>;

    fn pair(v: &Val) -> Option<(u64, u64)> {
        let Val::Arr(kv) = v else { return None };
        let [Val::Num(a), Val::Num(b)] = kv.as_slice() else {
            return None;
        };
        Some((*a, *b))
    }

    /// Parses one line as a flat JSON object.
    pub fn object(line: &str) -> Result<Obj, String> {
        let mut p = Parser {
            bytes: line.as_bytes(),
            pos: 0,
        };
        let obj = p.object()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(obj)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            self.skip_ws();
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected `{}` at {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn object(&mut self) -> Result<Obj, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Obj { fields });
            }
            loop {
                let key = self.string()?;
                self.expect(b':')?;
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Obj { fields });
                    }
                    other => return Err(format!("expected `,` or `}}`, found {other:?}")),
                }
            }
        }

        fn value(&mut self) -> Result<Val, String> {
            self.skip_ws();
            match self.peek() {
                Some(b'"') => Ok(Val::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Val::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => self.pos += 1,
                            Some(b']') => {
                                self.pos += 1;
                                return Ok(Val::Arr(items));
                            }
                            other => return Err(format!("expected `,` or `]`, found {other:?}")),
                        }
                    }
                }
                Some(b'0'..=b'9') => {
                    let start = self.pos;
                    while matches!(self.peek(), Some(b'0'..=b'9')) {
                        self.pos += 1;
                    }
                    std::str::from_utf8(&self.bytes[start..self.pos])
                        .ok()
                        .and_then(|s| s.parse().ok())
                        .map(Val::Num)
                        .ok_or_else(|| format!("bad number at {start}"))
                }
                other => Err(format!("unexpected value start {other:?}")),
            }
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' {
                    let s = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "bad utf-8 in string".to_string())?;
                    self.pos += 1;
                    return Ok(s.to_string());
                }
                if b == b'\\' {
                    return Err("escapes are not part of the snapshot format".to_string());
                }
                self.pos += 1;
            }
            Err("unterminated string".to_string())
        }
    }
}

// ---- stores ----------------------------------------------------------------

/// Moves snapshot bytes in and out of some backing medium. The trait is
/// deliberately byte-oriented: parsing, versioning and checksum policy stay
/// in [`Snapshot`], so every store is trivially correct.
pub trait SnapshotStore: Send + Sync {
    /// Reads the stored snapshot bytes.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when nothing is stored or the read fails.
    fn read(&self) -> Result<Vec<u8>, SnapshotError>;

    /// Stores snapshot bytes, replacing any previous content.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] when the write fails.
    fn write(&self, bytes: &[u8]) -> Result<(), SnapshotError>;
}

/// In-memory [`SnapshotStore`]: a mutex-guarded cell, shared via `Arc`
/// between the session that writes and the session that replays — the
/// no-disk path the library tests use.
#[derive(Debug, Default)]
pub struct MemoryStore {
    cell: Mutex<Option<Vec<u8>>>,
}

impl MemoryStore {
    /// An empty store.
    pub fn new() -> Self {
        MemoryStore::default()
    }

    /// A store pre-loaded with `bytes` (the `snapshot_in(bytes)` path).
    pub fn with_bytes(bytes: Vec<u8>) -> Self {
        MemoryStore {
            cell: Mutex::new(Some(bytes)),
        }
    }

    /// The currently stored bytes, if any.
    pub fn bytes(&self) -> Option<Vec<u8>> {
        self.cell.lock().expect("snapshot store poisoned").clone()
    }
}

impl SnapshotStore for MemoryStore {
    fn read(&self) -> Result<Vec<u8>, SnapshotError> {
        self.bytes()
            .ok_or_else(|| SnapshotError::Io("memory store is empty".to_string()))
    }

    fn write(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        *self.cell.lock().expect("snapshot store poisoned") = Some(bytes.to_vec());
        Ok(())
    }
}

/// File-backed [`SnapshotStore`]: one snapshot per path.
#[derive(Clone, Debug)]
pub struct FileStore {
    path: PathBuf,
}

impl FileStore {
    /// A store reading/writing `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        FileStore { path: path.into() }
    }

    /// The backing path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl FileStore {
    /// The sibling temp path writes land on before the atomic rename.
    fn tmp_path(&self) -> PathBuf {
        let mut os = self.path.as_os_str().to_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }

    fn io_err(&self, e: std::io::Error) -> SnapshotError {
        SnapshotError::Io(format!("{}: {e}", self.path.display()))
    }
}

impl SnapshotStore for FileStore {
    fn read(&self) -> Result<Vec<u8>, SnapshotError> {
        std::fs::read(&self.path).map_err(|e| self.io_err(e))
    }

    /// Atomic write: the bytes land on `<path>.tmp`, are fsynced, and only
    /// then renamed over `path` — a crash mid-write leaves the previous
    /// snapshot intact instead of a torn tail that would fail its checksum.
    fn write(&self, bytes: &[u8]) -> Result<(), SnapshotError> {
        use std::io::Write as _;
        let tmp = self.tmp_path();
        let result = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
            drop(f);
            std::fs::rename(&tmp, &self.path)
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result.map_err(|e| self.io_err(e))
    }
}

/// The `Into`-friendly store handle the session builders accept:
/// `session.snapshot_in("warm.snap")`, `.snapshot_in(bytes)`, or
/// `.snapshot_out(Arc::new(MemoryStore::new()))` all convert here.
#[derive(Clone)]
pub struct SnapshotIo {
    store: Arc<dyn SnapshotStore>,
}

impl SnapshotIo {
    /// Wraps an arbitrary store.
    pub fn new(store: Arc<dyn SnapshotStore>) -> Self {
        SnapshotIo { store }
    }

    /// The wrapped store.
    pub fn store(&self) -> &dyn SnapshotStore {
        &*self.store
    }
}

impl std::fmt::Debug for SnapshotIo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SnapshotIo(..)")
    }
}

impl From<Arc<dyn SnapshotStore>> for SnapshotIo {
    fn from(store: Arc<dyn SnapshotStore>) -> Self {
        SnapshotIo { store }
    }
}

impl From<Arc<MemoryStore>> for SnapshotIo {
    fn from(store: Arc<MemoryStore>) -> Self {
        SnapshotIo { store }
    }
}

impl From<Arc<FileStore>> for SnapshotIo {
    fn from(store: Arc<FileStore>) -> Self {
        SnapshotIo { store }
    }
}

impl From<&str> for SnapshotIo {
    fn from(path: &str) -> Self {
        SnapshotIo {
            store: Arc::new(FileStore::new(path)),
        }
    }
}

impl From<String> for SnapshotIo {
    fn from(path: String) -> Self {
        SnapshotIo {
            store: Arc::new(FileStore::new(path)),
        }
    }
}

impl From<&Path> for SnapshotIo {
    fn from(path: &Path) -> Self {
        SnapshotIo {
            store: Arc::new(FileStore::new(path)),
        }
    }
}

impl From<PathBuf> for SnapshotIo {
    fn from(path: PathBuf) -> Self {
        SnapshotIo {
            store: Arc::new(FileStore::new(path)),
        }
    }
}

impl From<Vec<u8>> for SnapshotIo {
    fn from(bytes: Vec<u8>) -> Self {
        SnapshotIo {
            store: Arc::new(MemoryStore::with_bytes(bytes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut profiles = ProfileTable::new();
        let m = MethodId::new(3);
        for _ in 0..7 {
            profiles.record_invocation(m);
        }
        profiles.record_backedge(m);
        profiles.record_block(m, BlockId::new(0));
        profiles.record_block(m, BlockId::new(2));
        let site = incline_ir::CallSiteId {
            method: m,
            index: 1,
        };
        profiles.record_callsite(site);
        profiles.record_receiver(site, ClassId::new(4));
        profiles.record_receiver(site, ClassId::new(2));
        let decisions = vec![DecisionRecord {
            method: m,
            tier: CompileStage::Full,
            plan_hash: 0xdead_beef,
            speculative_sites: 1,
        }];
        Snapshot::capture(0x1234_5678_9abc_def0, &profiles, &decisions)
    }

    #[test]
    fn round_trips_byte_identically() {
        let snap = sample();
        let bytes = snap.to_bytes();
        let back = Snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_bytes(), bytes, "serialize∘parse must be identity");
    }

    #[test]
    fn profile_table_round_trips() {
        let snap = sample();
        let table = snap.profile_table();
        let m = MethodId::new(3);
        assert_eq!(table.invocations(m), 7);
        assert_eq!(table.backedges(m), 1);
        let again = Snapshot::capture(snap.fingerprint, &table, &snap.decisions);
        assert_eq!(again, snap);
    }

    #[test]
    fn truncation_and_bitflips_are_corrupt_not_panics() {
        let bytes = sample().to_bytes();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 2] {
            assert!(
                Snapshot::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        for flip in [8, bytes.len() / 3, bytes.len() / 2] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x20;
            assert!(
                Snapshot::from_bytes(&bad).is_err(),
                "bit flip at {flip} must fail"
            );
        }
    }

    #[test]
    fn version_bump_is_rejected_as_version_mismatch() {
        let text = String::from_utf8(sample().to_bytes()).unwrap();
        let bumped = text.replacen("\"v\":1,", "\"v\":2,", 1);
        // Re-checksum so only the version differs.
        let body_end = bumped.rfind("{\"rec\":\"end\"").unwrap();
        let body = &bumped[..body_end];
        let fixed = format!(
            "{body}{{\"rec\":\"end\",\"crc\":\"{:016x}\"}}\n",
            fnv1a(body.as_bytes())
        );
        assert_eq!(
            Snapshot::from_bytes(fixed.as_bytes()),
            Err(SnapshotError::VersionMismatch { found: 2 })
        );
    }

    #[test]
    fn memory_store_round_trips_and_reports_empty() {
        let store = MemoryStore::new();
        assert!(matches!(store.read(), Err(SnapshotError::Io(_))));
        store.write(b"abc").unwrap();
        assert_eq!(store.read().unwrap(), b"abc");
    }

    #[test]
    fn file_store_round_trips() {
        let path = std::env::temp_dir().join("incline-snapshot-store-test.snap");
        let store = FileStore::new(&path);
        store.write(b"xyz").unwrap();
        assert_eq!(store.read().unwrap(), b"xyz");
        let _ = std::fs::remove_file(&path);
    }

    /// A replica with one method profile (`inv` invocations) and one
    /// full-tier decision for it with the given plan hash.
    fn replica(m: usize, inv: u64, plan: u64) -> Snapshot {
        let mut profiles = ProfileTable::new();
        let method = MethodId::new(m);
        for _ in 0..inv {
            profiles.record_invocation(method);
        }
        let decisions = vec![DecisionRecord {
            method,
            tier: CompileStage::Full,
            plan_hash: plan,
            speculative_sites: 0,
        }];
        Snapshot::capture(0xfeed, &profiles, &decisions)
    }

    #[test]
    fn merge_unions_profiles_and_is_order_independent() {
        let a = replica(1, 10, 0xaa);
        let b = replica(2, 5, 0xbb);
        let c = replica(1, 3, 0xaa);
        let fwd =
            Snapshot::merge(&[a.clone(), b.clone(), c.clone()], &MergePolicy::default()).unwrap();
        let rev = Snapshot::merge(&[c, b, a], &MergePolicy::default()).unwrap();
        assert_eq!(fwd.snapshot.to_bytes(), rev.snapshot.to_bytes());
        assert_eq!(fwd.stats, rev.stats);
        let table = fwd.snapshot.profile_table();
        assert_eq!(table.invocations(MethodId::new(1)), 13, "counts sum");
        assert_eq!(table.invocations(MethodId::new(2)), 5);
        assert_eq!(fwd.snapshot.decisions.len(), 2);
        assert_eq!(fwd.stats.conflicts, 0);
    }

    #[test]
    fn merge_majority_vote_wins_and_ties_break_by_hotness() {
        // Two replicas vote plan 0xaa, one hotter replica votes 0xbb:
        // majority wins despite lower hotness.
        let out = Snapshot::merge(
            &[
                replica(1, 2, 0xaa),
                replica(1, 3, 0xaa),
                replica(1, 90, 0xbb),
            ],
            &MergePolicy::default(),
        )
        .unwrap();
        assert_eq!(out.snapshot.decisions[0].plan_hash, 0xaa);
        assert_eq!(out.stats.conflicts, 1);
        // One ballot each: the hotter replica's candidate wins the tie.
        let out = Snapshot::merge(
            &[replica(1, 2, 0xaa), replica(1, 90, 0xbb)],
            &MergePolicy::default(),
        )
        .unwrap();
        assert_eq!(out.snapshot.decisions[0].plan_hash, 0xbb);
        // Equal votes and equal hotness: smallest candidate key wins, so
        // the result is still a pure function of the input set.
        let out = Snapshot::merge(
            &[replica(1, 5, 0xbb), replica(1, 5, 0xaa)],
            &MergePolicy::default(),
        )
        .unwrap();
        assert_eq!(out.snapshot.decisions[0].plan_hash, 0xaa);
    }

    #[test]
    fn merge_dedups_identical_replicas() {
        let a = replica(1, 10, 0xaa);
        let once = Snapshot::merge(std::slice::from_ref(&a), &MergePolicy::default()).unwrap();
        let thrice = Snapshot::merge(&[a.clone(), a.clone(), a], &MergePolicy::default()).unwrap();
        assert_eq!(once.snapshot.to_bytes(), thrice.snapshot.to_bytes());
        assert_eq!(thrice.stats.duplicates, 2);
        assert_eq!(thrice.stats.replicas, 1);
        assert_eq!(
            once.snapshot.profile_table().invocations(MethodId::new(1)),
            10,
            "redelivery must not double-count"
        );
    }

    #[test]
    fn merge_support_check_ages_out_cold_decisions() {
        let out = Snapshot::merge(
            &[replica(1, 3, 0xaa), replica(2, 50, 0xbb)],
            &MergePolicy::with_support(10),
        )
        .unwrap();
        assert_eq!(out.snapshot.decisions.len(), 1);
        assert_eq!(out.snapshot.decisions[0].method, MethodId::new(2));
        assert_eq!(out.stats.aged_out, 1);
        assert_eq!(out.aged_out.len(), 1);
        assert_eq!(out.aged_out[0].0.method, MethodId::new(1));
        assert_eq!(out.aged_out[0].1, 3);
        // The aged-out method's *profile* survives — only the decision is
        // dropped, so the next run re-derives it from fresh evidence.
        assert_eq!(
            out.snapshot.profile_table().invocations(MethodId::new(1)),
            3
        );
    }

    #[test]
    fn merge_rejects_empty_and_mixed_fingerprints() {
        assert!(matches!(
            Snapshot::merge(&[], &MergePolicy::default()),
            Err(SnapshotError::Corrupt(_))
        ));
        let a = replica(1, 5, 0xaa);
        let mut b = replica(1, 5, 0xaa);
        b.fingerprint = 0xbeef;
        assert!(matches!(
            Snapshot::merge(&[a, b], &MergePolicy::default()),
            Err(SnapshotError::StaleProgram { .. })
        ));
    }

    #[test]
    fn file_store_write_is_atomic_and_leaves_no_tmp() {
        let path = std::env::temp_dir().join("incline-snapshot-atomic-test.snap");
        let store = FileStore::new(&path);
        store.write(b"first").unwrap();
        store.write(b"second").unwrap();
        assert_eq!(store.read().unwrap(), b"second");
        assert!(
            !store.tmp_path().exists(),
            "tmp file must be renamed away on success"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn file_store_write_failure_cleans_tmp_and_keeps_old_snapshot() {
        // A directory at the target path makes the rename fail after the
        // tmp write succeeded — the tmp file must still be cleaned up.
        let dir = std::env::temp_dir().join("incline-snapshot-atomic-dir-test.snap");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let store = FileStore::new(&dir);
        assert!(matches!(store.write(b"nope"), Err(SnapshotError::Io(_))));
        assert!(!store.tmp_path().exists(), "failed write must clean up tmp");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn replay_mode_labels_parse() {
        assert_eq!("eager".parse::<ReplayMode>().unwrap(), ReplayMode::Eager);
        assert_eq!("seed".parse::<ReplayMode>().unwrap(), ReplayMode::Seed);
        assert!("hot".parse::<ReplayMode>().is_err());
        assert_eq!(ReplayMode::default(), ReplayMode::Eager);
    }
}
