//! The background compile broker: per-request compilation off the mutator
//! path.
//!
//! The broker decouples *when a compilation is requested* from *where it
//! runs*. A hot-method trigger enqueues a [`CompileRequest`] — a
//! self-contained description of one compilation: the root method, the
//! compile-fuel budget, the injected fault (if any), the speculation policy
//! and (in pipelined mode) a profile snapshot. Requests drain through
//! [`process`]: with `threads == 0` they run inline on the mutator, with
//! `threads == N` a pool of scoped worker threads pulls them from a shared
//! queue. Either way each request runs the same pure function,
//! [`run_ladder`] — the full bailout ladder (panic-fenced full tier →
//! inline-free degraded tier, verify-before-install on both) — and returns a
//! [`CompileResponse`].
//!
//! # Determinism
//!
//! Responses carry everything the mutator needs to *apply* the result
//! (install or blacklist, counters, wasted-work charges) plus the
//! compilation's buffered trace events. Workers never touch shared VM state
//! and never emit into the machine's sink directly: each request's events go
//! into a private [`CollectingSink`] whose buffer index is the request's
//! per-method sequence number, and the mutator replays the buffers in
//! request-id order at the install safepoint. Compilation itself is a pure
//! function of `(program, profiles, inliner, request)`, so the *contents* of
//! every response are independent of thread count and arrival order — only
//! wall-clock timing differs, which the machine models separately with
//! virtual-time stall accounting. This is what makes `compile_threads ∈
//! {0, 1, N}` produce byte-identical observable behavior in deterministic
//! mode.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use incline_ir::{Graph, MethodId, Program};
use incline_opt::CompileFuel;
use incline_profile::ProfileTable;
use incline_trace::{CollectingSink, CompileEvent, OptPhase, TraceSink, NULL_SINK};

use crate::faults::{self, FaultKind};
use crate::inliner::{
    fuel_error, CompileCx, CompileError, CompileOutcome, InlineStats, Inliner, Speculation,
};
use crate::machine::CompileStage;

/// One compilation request, snapshotted at enqueue time so it can run on
/// any thread at any later point without observing mutator-side changes.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// Request index: the Nth compilation the broker was asked for,
    /// counting from 0. Keys the fault plan and orders response
    /// application.
    pub id: u64,
    /// The root method to compile.
    pub method: MethodId,
    /// Compile-fuel budget for this request (`u64::MAX` = unmetered).
    pub fuel_limit: u64,
    /// Injected fault for this request, resolved from the machine's
    /// [`crate::FaultPlan`] at enqueue time.
    pub fault: Option<FaultKind>,
    /// Speculation policy, resolved from the VM config and the method's
    /// pin state at enqueue time.
    pub speculation: Speculation,
    /// Profile snapshot taken at enqueue. `None` means "use the live
    /// table at drain time" — correct in barrier mode, where nothing runs
    /// between enqueue and drain; pipelined mode snapshots so interleaved
    /// mutator profiling cannot leak into an in-flight compilation.
    pub profiles: Option<ProfileTable>,
    /// Virtual cycle timestamp of the enqueue (mutator clock). Drives the
    /// stall model: a worker cannot start the request before this point.
    pub enqueued_at: u64,
}

/// A verified graph ready for installation, produced by a ladder rung.
#[derive(Debug)]
pub struct InstallPackage {
    /// Which rung produced it.
    pub stage: CompileStage,
    /// The verified, compacted graph.
    pub graph: Graph,
    /// IR nodes processed (drives the simulated compilation latency).
    pub work_nodes: usize,
    /// Reporting counters.
    pub stats: InlineStats,
}

/// Everything a completed compilation hands back to the mutator.
#[derive(Debug)]
pub struct CompileResponse {
    /// The request's id (responses apply in id order).
    pub id: u64,
    /// The root method.
    pub method: MethodId,
    /// The request's injected fault (the install path needs the
    /// speculation faults).
    pub fault: Option<FaultKind>,
    /// The request's enqueue timestamp, echoed for the stall model.
    pub enqueued_at: u64,
    /// Fuel units burned by failed attempts, to be charged as wasted
    /// compile cycles (the cost model is linear, so one aggregate charge
    /// equals the synchronous broker's incremental charges).
    pub wasted_work: u64,
    /// Every rung failure, in ladder order.
    pub failures: Vec<(CompileStage, CompileError)>,
    /// The install package, or `None` if the whole ladder failed (the
    /// mutator blacklists the method).
    pub package: Option<InstallPackage>,
    /// The compilation's buffered trace events, in emission order. Empty
    /// when the machine's sink is disabled. The buffer index is this
    /// request's per-method sequence number; the mutator replays buffers
    /// in request-id order, which keeps merged streams byte-identical
    /// across thread counts.
    pub events: Vec<CompileEvent>,
    /// Host wall-clock nanoseconds the ladder spent on this request.
    /// Real time, not virtual time: feeds the compiler-throughput report
    /// only and never any deterministic observable.
    pub wall_nanos: u64,
}

/// The pending-request queue plus lifetime accounting, owned by the
/// mutator (workers see requests only after [`process`] moves them into
/// its own shared pool).
#[derive(Debug, Default)]
pub struct CompileQueue {
    pending: VecDeque<CompileRequest>,
    stats: QueueStats,
}

/// Lifetime counters of a [`CompileQueue`]. `enqueued == completed` after
/// every drain — the stress tests assert no request is ever lost.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Requests ever enqueued.
    pub enqueued: u64,
    /// Responses applied (install *or* blacklist — every request completes).
    pub completed: u64,
    /// Responses that installed code.
    pub installed: u64,
}

impl CompileQueue {
    /// Appends a request.
    pub(crate) fn push(&mut self, request: CompileRequest) {
        self.stats.enqueued += 1;
        self.pending.push_back(request);
    }

    /// Removes and returns all pending requests, in enqueue order.
    pub(crate) fn take_all(&mut self) -> Vec<CompileRequest> {
        self.pending.drain(..).collect()
    }

    /// Marks one response as applied.
    pub(crate) fn note_completed(&mut self, installed: bool) {
        self.stats.completed += 1;
        if installed {
            self.stats.installed += 1;
        }
    }

    /// Number of pending requests.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Whether no requests are pending.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

fn make_fuel(limit: u64) -> CompileFuel {
    if limit == u64::MAX {
        CompileFuel::unlimited()
    } else {
        CompileFuel::limited(limit)
    }
}

/// Extracts a readable message from a caught panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// How one ladder rung ended: a verified package plus wasted fuel units,
/// or an error plus wasted fuel units.
type RungResult = Result<InstallPackage, (CompileError, u64)>;

/// Runs the whole bailout ladder for one request. Pure with respect to the
/// VM: reads only the program, the (snapshotted or live) profiles and the
/// inliner; all effects are returned in the [`CompileResponse`]. Safe to
/// call from any thread.
pub(crate) fn run_ladder(
    program: &Program,
    live_profiles: &ProfileTable,
    inliner: &dyn Inliner,
    req: &CompileRequest,
    tracing: bool,
    trials: Option<&crate::trials::TrialCache>,
) -> CompileResponse {
    let started = std::time::Instant::now();
    let profiles = req.profiles.as_ref().unwrap_or(live_profiles);
    let buffer = CollectingSink::new();
    let sink: &dyn TraceSink = if tracing { &buffer } else { &NULL_SINK };
    let mut wasted_work = 0u64;
    let mut failures = Vec::new();
    let mut package = None;
    for stage in [CompileStage::Full, CompileStage::Degraded] {
        let attempt = match stage {
            CompileStage::Full => full_tier(program, profiles, inliner, req, sink, trials),
            CompileStage::Degraded => degraded_tier(program, req, sink),
        };
        match attempt {
            Ok(pkg) => {
                package = Some(pkg);
                break;
            }
            Err((error, waste)) => {
                wasted_work += waste;
                if tracing {
                    buffer.emit(CompileEvent::Bailout {
                        method: req.method,
                        stage: stage.bailout_stage(),
                        error: error.to_string(),
                    });
                }
                failures.push((stage, error));
            }
        }
    }
    CompileResponse {
        id: req.id,
        method: req.method,
        fault: req.fault,
        enqueued_at: req.enqueued_at,
        wasted_work,
        failures,
        package,
        events: buffer.take(),
        wall_nanos: started.elapsed().as_nanos() as u64,
    }
}

/// Ladder rung 1: the configured inliner, panic-fenced and metered.
fn full_tier(
    program: &Program,
    profiles: &ProfileTable,
    inliner: &dyn Inliner,
    req: &CompileRequest,
    sink: &dyn TraceSink,
    trials: Option<&crate::trials::TrialCache>,
) -> RungResult {
    let fuel = if req.fault == Some(FaultKind::ExhaustFuel) {
        CompileFuel::limited(0)
    } else {
        make_fuel(req.fuel_limit)
    };
    let cx = CompileCx::new(program, profiles)
        .with_fuel(&fuel)
        .with_trace(sink)
        .with_speculation(req.speculation)
        .with_trials(trials);
    let fault = req.fault;
    let method = req.method;
    let guarded = faults::with_quiet_panics(|| {
        panic::catch_unwind(AssertUnwindSafe(|| {
            if fault == Some(FaultKind::PanicInCompile) {
                panic!("{}: compilation request panicked", faults::INJECTED_PANIC);
            }
            inliner.compile(method, &cx)
        }))
    });
    let outcome = match guarded {
        // A failed attempt still burned the fuel it charged.
        Ok(Err(e)) => return Err((e, fuel.spent())),
        Ok(Ok(outcome)) => outcome,
        Err(payload) => {
            return Err((CompileError::Panicked(panic_message(payload.as_ref())), 0));
        }
    };
    let CompileOutcome {
        graph,
        work_nodes,
        stats,
    } = outcome;
    // Drop the tombstones passes leave behind: the interpreter sizes
    // its register file by value_count, so installing compacted code
    // is part of "code generation".
    let mut graph = graph.compacted();
    if fault == Some(FaultKind::CorruptGraph) {
        faults::corrupt_graph(&mut graph);
    }
    match verify(program, method, &graph) {
        Ok(()) => Ok(InstallPackage {
            stage: CompileStage::Full,
            graph,
            work_nodes,
            stats,
        }),
        // The rejected graph's compile effort is still paid for.
        Err(e) => Err((e, work_nodes as u64)),
    }
}

/// Ladder rung 2: an inline-free compile of the method's own graph through
/// the optimization pipeline. Deliberately bypasses the configured inliner —
/// a buggy inliner must not poison this rung. Injected compile-path faults
/// target the full tier only; the degraded tier always gets a fresh budget.
fn degraded_tier(program: &Program, req: &CompileRequest, sink: &dyn TraceSink) -> RungResult {
    let fuel = make_fuel(req.fuel_limit);
    let method = req.method;
    let guarded = faults::with_quiet_panics(|| {
        panic::catch_unwind(AssertUnwindSafe(|| {
            let mut graph = program.method(method).graph.clone();
            let before = graph.size();
            if !fuel.charge(before as u64) {
                return Err(fuel_error(&fuel));
            }
            let opt = incline_trace::optimize_with_trace(
                program,
                &mut graph,
                incline_opt::PipelineConfig::default(),
                &fuel,
                sink,
                OptPhase::Degraded,
            );
            Ok((graph, before, opt.total()))
        }))
    });
    let (graph, before, opt_events) = match guarded {
        Ok(Err(e)) => return Err((e, fuel.spent())),
        Ok(Ok(parts)) => parts,
        Err(payload) => {
            return Err((CompileError::Panicked(panic_message(payload.as_ref())), 0));
        }
    };
    let graph = graph.compacted();
    let final_size = graph.size();
    let stats = InlineStats {
        inlined_calls: 0,
        rounds: 1,
        explored_nodes: 0,
        final_size: final_size as u64,
        opt_events,
        speculative_sites: 0,
    };
    match verify(program, method, &graph) {
        Ok(()) => Ok(InstallPackage {
            stage: CompileStage::Degraded,
            graph,
            work_nodes: before + final_size,
            stats,
        }),
        Err(e) => Err((e, 0)),
    }
}

/// Runs the degraded (inline-free) rung alone, outside the ladder — the
/// bounded code cache's admission-failure fallback. When a full-tier
/// package is too big to admit under the budget, the mutator retries with
/// this smaller package before deferring the compile entirely. The rung
/// verifies its graph like any other; `None` means it failed and the
/// caller must defer. Runs on the mutator, so its events go straight into
/// the machine's sink in deterministic order.
pub(crate) fn degraded_package(
    program: &Program,
    method: MethodId,
    fuel_limit: u64,
    sink: &dyn TraceSink,
) -> Option<InstallPackage> {
    let req = CompileRequest {
        id: u64::MAX,
        method,
        fuel_limit,
        fault: None,
        speculation: Speculation::default(),
        profiles: None,
        enqueued_at: 0,
    };
    degraded_tier(program, &req, sink).ok()
}

/// The always-on installation gate: every graph is verified in every build
/// profile before it reaches the code cache.
fn verify(program: &Program, method: MethodId, graph: &Graph) -> Result<(), CompileError> {
    let decl = program.method(method);
    incline_ir::verify::verify_graph(program, graph, &decl.params, decl.ret)
        .map_err(|e| CompileError::Rejected(format!("{} (method {})", e.message, decl.name)))
}

/// Runs a batch of requests and returns the responses sorted by request id.
///
/// `threads == 0` compiles inline on the calling thread. `threads >= 1`
/// spawns `min(threads, requests)` scoped workers that pull requests from a
/// shared queue — real concurrency, bounded by the pool size. Both paths
/// produce identical responses ([`run_ladder`] is pure); sorting by id
/// erases completion-order nondeterminism before the mutator applies them.
pub(crate) fn process(
    program: &Program,
    inliner: &dyn Inliner,
    live_profiles: &ProfileTable,
    requests: Vec<CompileRequest>,
    threads: usize,
    tracing: bool,
    trials: Option<&crate::trials::TrialCache>,
) -> Vec<CompileResponse> {
    let mut responses = if threads == 0 || requests.len() <= 1 {
        requests
            .iter()
            .map(|req| run_ladder(program, live_profiles, inliner, req, tracing, trials))
            .collect::<Vec<_>>()
    } else {
        let workers = threads.min(requests.len());
        let queue = Mutex::new(VecDeque::from(requests));
        let done = Mutex::new(Vec::new());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    // Take the next request; the lock is released before
                    // compiling so workers overlap.
                    let next = queue.lock().expect("queue lock").pop_front();
                    let Some(req) = next else { break };
                    let resp = run_ladder(program, live_profiles, inliner, &req, tracing, trials);
                    done.lock().expect("done lock").push(resp);
                });
            }
        });
        done.into_inner().expect("done lock")
    };
    responses.sort_by_key(|r| r.id);
    responses
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inliner::NoInline;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::Type;

    fn straight_line_program(functions: usize) -> (Program, Vec<MethodId>) {
        let mut p = Program::new();
        let mut ids = Vec::new();
        for i in 0..functions {
            let m = p.declare_function(format!("f{i}"), vec![Type::Int], Type::Int);
            let mut fb = FunctionBuilder::new(&p, m);
            let x = fb.param(0);
            let k = fb.const_int(i as i64);
            let r = fb.iadd(x, k);
            fb.ret(Some(r));
            let g = fb.finish();
            p.define_method(m, g);
            ids.push(m);
        }
        (p, ids)
    }

    fn request(id: u64, method: MethodId) -> CompileRequest {
        CompileRequest {
            id,
            method,
            fuel_limit: u64::MAX,
            fault: None,
            speculation: Speculation::default(),
            profiles: None,
            enqueued_at: 0,
        }
    }

    #[test]
    fn ladder_produces_full_tier_package() {
        let (p, ids) = straight_line_program(1);
        let profiles = ProfileTable::new();
        let resp = run_ladder(&p, &profiles, &NoInline, &request(0, ids[0]), false, None);
        assert_eq!(resp.id, 0);
        assert!(resp.failures.is_empty());
        assert_eq!(resp.wasted_work, 0);
        let pkg = resp.package.expect("straight-line compile succeeds");
        assert_eq!(pkg.stage, CompileStage::Full);
    }

    #[test]
    fn injected_panic_fails_full_tier_only() {
        let (p, ids) = straight_line_program(1);
        let profiles = ProfileTable::new();
        let mut req = request(0, ids[0]);
        req.fault = Some(FaultKind::PanicInCompile);
        let resp = run_ladder(&p, &profiles, &NoInline, &req, false, None);
        assert_eq!(resp.failures.len(), 1);
        assert!(matches!(
            resp.failures[0],
            (CompileStage::Full, CompileError::Panicked(_))
        ));
        let pkg = resp.package.expect("degraded rung rescues the compile");
        assert_eq!(pkg.stage, CompileStage::Degraded);
    }

    #[test]
    fn worker_pool_matches_inline_processing() {
        let (p, ids) = straight_line_program(12);
        let profiles = ProfileTable::new();
        let requests: Vec<CompileRequest> = ids
            .iter()
            .enumerate()
            .map(|(i, &m)| request(i as u64, m))
            .collect();
        let inline = process(&p, &NoInline, &profiles, requests.clone(), 0, true, None);
        let pooled = process(&p, &NoInline, &profiles, requests, 4, true, None);
        assert_eq!(inline.len(), pooled.len());
        for (a, b) in inline.iter().zip(&pooled) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.method, b.method);
            assert_eq!(a.events, b.events, "trace buffers must match exactly");
            assert_eq!(
                a.package.as_ref().map(|p| (p.stage, p.work_nodes)),
                b.package.as_ref().map(|p| (p.stage, p.work_nodes)),
            );
        }
    }
}
