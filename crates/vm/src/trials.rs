//! Memoization of deep-inlining-trial results across rounds and requests.
//!
//! The incremental inliner's expansion phase runs a *trial* per cutoff it
//! expands: clone the callee graph, specialize it against the callsite's
//! argument information, and run the scalar optimization pipeline to see
//! what the inlining would actually unlock (paper §IV). That bundle reads
//! no profile data — its output depends only on the callee's graph and the
//! argument-specialization vector (profiles enter solely through the
//! arguments, e.g. a speculated receiver class narrowing a parameter type).
//! The same (callee, arguments) trial therefore recurs across rounds,
//! across root methods sharing callees, and across compile requests, and
//! its result can be memoized without changing a single observable.
//!
//! [`TrialCache`] keys entries on
//! `(method, graph fingerprint, argument hash)`:
//!
//! * `method` + [`Graph::fingerprint`] pin the callee body (the program is
//!   immutable for a [`crate::Machine`]'s lifetime, so per-method
//!   fingerprints are computed once and memoized),
//! * the argument hash folds each parameter's constant value and narrowed
//!   type — the complete profile-derived input of the trial.
//!
//! Entries store the specialized, trial-optimized graph, the `ns`/`no`
//! counts the policy metrics consume, and the trace events the trial
//! emitted, so a hit replays the *identical* event stream a miss would
//! have produced — byte-identical JSONL traces with the cache on or off
//! is the invariant `tests/differential.rs` enforces. Deterministic
//! invalidation is explicit and total: [`TrialCache::clear`] (nothing is
//! evicted by time or chance; capacity overflow drops entries FIFO, which
//! only ever costs a recompute, never changes a result).
//!
//! The cache is shared across the broker's worker threads. Hit/miss
//! counters can race benignly when two workers miss on the same key
//! concurrently (both compute the same bytes); they surface only in
//! [`crate::CompilationReport`], never in a `BenchResult`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use incline_ir::{Graph, MethodId};
use incline_trace::CompileEvent;

/// Key of one memoized deep-inlining trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TrialKey {
    /// The callee the trial expanded.
    pub method: MethodId,
    /// [`Graph::fingerprint`] of the callee's source graph.
    pub graph_fp: u64,
    /// Hash of the callsite's argument-specialization vector (constants
    /// and narrowed parameter types — the trial's only profile input).
    pub args_fp: u64,
}

/// The memoized outcome of one trial: the specialized and trial-optimized
/// callee graph plus the numbers and events the expansion consumes.
#[derive(Debug)]
pub struct TrialOutcome {
    /// Specialized callee graph after the trial optimization pipeline.
    pub graph: Graph,
    /// Parameters specialized (the paper's `ns`).
    pub ns: u32,
    /// Simplifications the trial pipeline performed (the paper's `no`).
    pub no: u64,
    /// Trace events the trial emitted (empty when tracing was off).
    pub events: Vec<CompileEvent>,
}

#[derive(Default)]
struct TrialMap {
    entries: HashMap<TrialKey, Arc<TrialOutcome>>,
    /// Insertion order for FIFO capacity eviction.
    order: VecDeque<TrialKey>,
    /// Per-method source-graph fingerprints (immutable per machine).
    fingerprints: HashMap<MethodId, u64>,
}

/// A capacity-bounded, thread-shared memo table for deep-inlining trials.
pub struct TrialCache {
    map: Mutex<TrialMap>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl std::fmt::Debug for TrialCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrialCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl Default for TrialCache {
    fn default() -> Self {
        Self::new(Self::DEFAULT_CAPACITY)
    }
}

impl TrialCache {
    /// Default entry bound — generous for the workloads in-tree while
    /// keeping the worst case (every trial distinct) bounded.
    pub const DEFAULT_CAPACITY: usize = 1024;

    /// An empty cache bounded to `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        TrialCache {
            map: Mutex::new(TrialMap::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The callee's source-graph fingerprint, computed once per method and
    /// memoized (the program backing a machine never changes).
    pub fn method_fingerprint(&self, method: MethodId, graph: &Graph) -> u64 {
        if let Some(&fp) = self
            .map
            .lock()
            .expect("trial cache")
            .fingerprints
            .get(&method)
        {
            return fp;
        }
        let fp = graph.fingerprint();
        self.map
            .lock()
            .expect("trial cache")
            .fingerprints
            .insert(method, fp);
        fp
    }

    /// Looks up a memoized trial, counting a hit or a miss.
    pub fn lookup(&self, key: TrialKey) -> Option<Arc<TrialOutcome>> {
        let found = self
            .map
            .lock()
            .expect("trial cache")
            .entries
            .get(&key)
            .cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Memoizes a trial outcome. At capacity the oldest insertion is
    /// dropped (FIFO); re-inserting an existing key keeps the newest value.
    pub fn insert(&self, key: TrialKey, outcome: Arc<TrialOutcome>) {
        let mut map = self.map.lock().expect("trial cache");
        if map.entries.insert(key, outcome).is_none() {
            map.order.push_back(key);
            while map.entries.len() > self.capacity {
                match map.order.pop_front() {
                    Some(old) => {
                        map.entries.remove(&old);
                    }
                    None => break,
                }
            }
        }
    }

    /// Deterministic total invalidation: drops every entry and memoized
    /// fingerprint. The documented invalidation point for callers whose
    /// program or profile-independence assumptions change.
    pub fn clear(&self) {
        let mut map = self.map.lock().expect("trial cache");
        map.entries.clear();
        map.order.clear();
        map.fingerprints.clear();
    }

    /// Number of memoized trials.
    pub fn len(&self) -> usize {
        self.map.lock().expect("trial cache").entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::{FunctionBuilder, Program, Type};

    fn graph_for(k: i64) -> (Program, MethodId, Graph) {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let c = fb.const_int(k);
        let r = fb.iadd(x, c);
        fb.ret(Some(r));
        let g = fb.finish();
        (p, m, g)
    }

    fn key(method: MethodId, graph: &Graph, args_fp: u64) -> TrialKey {
        TrialKey {
            method,
            graph_fp: graph.fingerprint(),
            args_fp,
        }
    }

    #[test]
    fn hit_returns_the_inserted_outcome() {
        let (_p, m, g) = graph_for(3);
        let cache = TrialCache::new(8);
        let k = key(m, &g, 7);
        assert!(cache.lookup(k).is_none());
        cache.insert(
            k,
            Arc::new(TrialOutcome {
                graph: g.clone(),
                ns: 1,
                no: 2,
                events: vec![],
            }),
        );
        let out = cache.lookup(k).expect("hit");
        assert_eq!(out.ns, 1);
        assert_eq!(out.no, 2);
        assert_eq!(out.graph.fingerprint(), g.fingerprint());
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
    }

    #[test]
    fn distinct_args_are_distinct_entries() {
        let (_p, m, g) = graph_for(3);
        let cache = TrialCache::new(8);
        let a = key(m, &g, 1);
        let b = key(m, &g, 2);
        cache.insert(
            a,
            Arc::new(TrialOutcome {
                graph: g.clone(),
                ns: 1,
                no: 0,
                events: vec![],
            }),
        );
        assert!(cache.lookup(b).is_none());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn capacity_evicts_fifo() {
        let (_p, m, g) = graph_for(3);
        let cache = TrialCache::new(2);
        for i in 0..3u64 {
            cache.insert(
                key(m, &g, i),
                Arc::new(TrialOutcome {
                    graph: g.clone(),
                    ns: 0,
                    no: 0,
                    events: vec![],
                }),
            );
        }
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(key(m, &g, 0)).is_none(), "oldest dropped");
        assert!(cache.lookup(key(m, &g, 2)).is_some());
    }

    #[test]
    fn fingerprint_memo_is_stable_and_clear_resets() {
        let (_p, m, g) = graph_for(3);
        let cache = TrialCache::new(8);
        let fp = cache.method_fingerprint(m, &g);
        assert_eq!(cache.method_fingerprint(m, &g), fp);
        cache.insert(
            key(m, &g, 0),
            Arc::new(TrialOutcome {
                graph: g.clone(),
                ns: 0,
                no: 0,
                events: vec![],
            }),
        );
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.lookup(key(m, &g, 0)).is_none());
    }

    #[test]
    fn shared_across_threads() {
        let (_p, m, g) = graph_for(5);
        let cache = Arc::new(TrialCache::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let cache = Arc::clone(&cache);
                let g = &g;
                s.spawn(move || {
                    cache.insert(
                        key(m, g, t),
                        Arc::new(TrialOutcome {
                            graph: g.clone(),
                            ns: 0,
                            no: 0,
                            events: vec![],
                        }),
                    );
                    assert!(cache.lookup(key(m, g, t)).is_some());
                });
            }
        });
        assert_eq!(cache.len(), 4);
    }
}
