//! The contract between the VM's compile broker and inlining algorithms.
//!
//! Every inliner in this project — the paper's incremental algorithm
//! (`incline-core`), the greedy and C2-style baselines
//! (`incline-baselines`), and the trivial ones here — implements
//! [`Inliner`]. The VM hands it a compilation request (the root method,
//! the profiling context and a compile budget) and installs whatever graph
//! comes back — after verifying it.
//!
//! Compilation is **fallible**: an inliner may run out of
//! [`CompileFuel`](incline_opt::CompileFuel), and the broker additionally
//! contains panics and verifier rejections. All three surface as a
//! [`CompileError`], which the broker's bailout ladder turns into a retry
//! on a cheaper tier (see `machine`).

use incline_ir::{Graph, MethodId, Program};
use incline_opt::{CompileFuel, UNLIMITED_FUEL};
use incline_profile::ProfileTable;
use incline_trace::{CompileEvent, TraceSink, NULL_SINK};

/// How aggressively a compilation may speculate on profile data.
///
/// The broker derives this from [`VmConfig`](crate::VmConfig) and the
/// method's pin state; standalone compilations default to the conservative
/// setting (no uncommon traps), so compiled graphs are always safe to run
/// without deoptimization support.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Speculation {
    /// Whether typeswitch emission may use a `deopt` fallback instead of
    /// the always-correct virtual call. `false` for pinned methods and
    /// whenever the VM runs with deoptimization disabled.
    pub allow_deopt: bool,
    /// Minimum profile coverage (sum of speculated receiver probabilities)
    /// a typeswitch must reach before its fallback becomes an uncommon
    /// trap.
    pub confidence: f64,
}

impl Default for Speculation {
    fn default() -> Self {
        Speculation {
            allow_deopt: false,
            confidence: 0.95,
        }
    }
}

/// Read-only context available to a compilation.
#[derive(Clone, Copy)]
pub struct CompileCx<'a> {
    /// The program being executed.
    pub program: &'a Program,
    /// Profiles gathered by the interpreting tier.
    pub profiles: &'a ProfileTable,
    /// The compile-work budget for this compilation. Inliners charge the
    /// IR they process and wind down (or report [`CompileError::OutOfFuel`])
    /// once it is spent.
    pub fuel: &'a CompileFuel,
    /// Where this compilation's [`CompileEvent`] stream goes. Defaults to
    /// the disabled [`incline_trace::NullSink`]; carried by reference just
    /// like `fuel` so the context stays `Copy`.
    pub trace: &'a dyn TraceSink,
    /// Speculation policy for this compilation.
    pub speculation: Speculation,
    /// Memoized deep-inlining-trial results shared across compilations of
    /// this machine, or `None` when trial caching is disabled. Carried by
    /// reference so the context stays `Copy`.
    pub trials: Option<&'a crate::trials::TrialCache>,
}

impl<'a> CompileCx<'a> {
    /// A context with an unlimited compile budget and tracing disabled.
    pub fn new(program: &'a Program, profiles: &'a ProfileTable) -> Self {
        CompileCx {
            program,
            profiles,
            fuel: &UNLIMITED_FUEL,
            trace: &NULL_SINK,
            speculation: Speculation::default(),
            trials: None,
        }
    }

    /// Replaces the compile budget.
    pub fn with_fuel(self, fuel: &'a CompileFuel) -> Self {
        CompileCx { fuel, ..self }
    }

    /// Replaces the trace sink.
    pub fn with_trace(self, trace: &'a dyn TraceSink) -> Self {
        CompileCx { trace, ..self }
    }

    /// Replaces the speculation policy.
    pub fn with_speculation(self, speculation: Speculation) -> Self {
        CompileCx {
            speculation,
            ..self
        }
    }

    /// Attaches (or detaches) the shared trial cache.
    pub fn with_trials(self, trials: Option<&'a crate::trials::TrialCache>) -> Self {
        CompileCx { trials, ..self }
    }

    /// Whether the trace sink wants events. Producers should gate any
    /// expensive event construction (string rendering, tree snapshots) on
    /// this.
    pub fn tracing(&self) -> bool {
        self.trace.enabled()
    }

    /// Emit an event, building it only if the sink is enabled.
    pub fn emit(&self, event: impl FnOnce() -> CompileEvent) {
        if self.trace.enabled() {
            self.trace.emit(event());
        }
    }

    /// Charge `amount` units of compile fuel, tracing the charge. Returns
    /// `false` once the budget is spent (same contract as
    /// [`CompileFuel::charge`]).
    pub fn charge(&self, amount: u64) -> bool {
        let ok = self.fuel.charge(amount);
        self.emit(|| CompileEvent::FuelCharged {
            amount,
            spent: self.fuel.spent(),
        });
        ok
    }
}

/// Why a compilation failed.
///
/// Failures are *contained*: the method keeps running in the interpreter
/// and the broker may retry it on a degraded tier. A `CompileError` never
/// corrupts VM state and never installs code.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The inliner (or a pass it ran) panicked; the payload message.
    Panicked(String),
    /// The produced graph failed verification and was not installed.
    Rejected(String),
    /// The compile budget ran out before a graph was produced.
    OutOfFuel {
        /// The budget the compilation started with.
        limit: u64,
    },
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::Panicked(m) => write!(f, "compiler panicked: {m}"),
            CompileError::Rejected(m) => write!(f, "graph rejected by verifier: {m}"),
            CompileError::OutOfFuel { limit } => {
                write!(f, "compile budget exhausted (limit {limit})")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Statistics reported by a compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InlineStats {
    /// Callsites replaced by callee bodies (incl. nested ones).
    pub inlined_calls: u64,
    /// Expand/analyze/inline rounds executed (1 for single-pass inliners).
    pub rounds: u64,
    /// Total IR nodes of callee graphs explored (expansion work).
    pub explored_nodes: u64,
    /// IR size of the root graph after compilation.
    pub final_size: u64,
    /// Optimization events triggered during compilation.
    pub opt_events: u64,
    /// Typeswitches emitted: callsites whose dispatch was speculated on
    /// profiled receivers. Drives the broker's drift monitor.
    pub speculative_sites: u64,
}

/// The result of one compilation request.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// The optimized graph to install.
    pub graph: Graph,
    /// IR nodes processed (drives the simulated compilation latency).
    pub work_nodes: usize,
    /// Reporting counters.
    pub stats: InlineStats,
}

/// An inlining algorithm driving a compilation.
///
/// `Send + Sync` is a supertrait requirement: the VM's compile broker shares
/// one inliner across its worker threads, and every inliner in the workspace
/// is immutable configuration plus pure functions, so the bound is free.
pub trait Inliner: Send + Sync {
    /// Short stable name used in benchmark tables.
    fn name(&self) -> &str;

    /// Compiles `method`: clones its graph, performs inline substitution
    /// according to the algorithm's policy, optimizes, and returns the
    /// graph to install.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::OutOfFuel`] when `cx.fuel` is spent before
    /// the compilation produced an installable graph. Other variants are
    /// produced by the broker, not by inliners.
    fn compile(&self, method: MethodId, cx: &CompileCx<'_>)
        -> Result<CompileOutcome, CompileError>;
}

/// Converts fuel exhaustion into the error the bailout ladder expects.
pub(crate) fn fuel_error(fuel: &CompileFuel) -> CompileError {
    CompileError::OutOfFuel {
        limit: fuel.limit().unwrap_or(u64::MAX),
    }
}

/// Baseline that never inlines; it still runs the optimization pipeline
/// (this isolates inlining effects from scalar optimizations).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInline;

impl Inliner for NoInline {
    fn name(&self) -> &str {
        "no-inline"
    }

    fn compile(
        &self,
        method: MethodId,
        cx: &CompileCx<'_>,
    ) -> Result<CompileOutcome, CompileError> {
        let mut graph = cx.program.method(method).graph.clone();
        let before = graph.size();
        if !cx.charge(before as u64) {
            return Err(fuel_error(cx.fuel));
        }
        let stats = incline_trace::optimize_with_trace(
            cx.program,
            &mut graph,
            incline_opt::PipelineConfig::default(),
            cx.fuel,
            cx.trace,
            incline_trace::OptPhase::Baseline,
        );
        let final_size = graph.size();
        Ok(CompileOutcome {
            graph,
            work_nodes: before + final_size,
            stats: InlineStats {
                inlined_calls: 0,
                rounds: 1,
                explored_nodes: 0,
                final_size: final_size as u64,
                opt_events: stats.total(),
                speculative_sites: 0,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::Type;

    #[test]
    fn no_inline_optimizes_but_keeps_calls() {
        let mut p = Program::new();
        let callee = p.declare_function("c", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, callee);
        let k = fb.const_int(1);
        fb.ret(Some(k));
        let g = fb.finish();
        p.define_method(callee, g);
        let root = p.declare_function("r", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let a = fb.const_int(20);
        let b = fb.const_int(22);
        let s = fb.iadd(a, b);
        let c = fb.call_static(callee, vec![]).unwrap();
        let r = fb.iadd(s, c);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);

        let profiles = ProfileTable::new();
        let cx = CompileCx::new(&p, &profiles);
        let out = NoInline.compile(root, &cx).unwrap();
        assert_eq!(out.stats.inlined_calls, 0);
        assert!(out.stats.opt_events >= 1, "constant fold expected");
        assert_eq!(out.graph.callsites().len(), 1, "the call must survive");
    }

    #[test]
    fn no_inline_reports_fuel_exhaustion() {
        let mut p = Program::new();
        let root = p.declare_function("r", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let k = fb.const_int(7);
        fb.ret(Some(k));
        let g = fb.finish();
        p.define_method(root, g);

        let profiles = ProfileTable::new();
        let fuel = CompileFuel::limited(0);
        let cx = CompileCx::new(&p, &profiles).with_fuel(&fuel);
        let err = NoInline.compile(root, &cx).unwrap_err();
        assert_eq!(err, CompileError::OutOfFuel { limit: 0 });
    }
}
