//! The contract between the VM's compile broker and inlining algorithms.
//!
//! Every inliner in this project — the paper's incremental algorithm
//! (`incline-core`), the greedy and C2-style baselines
//! (`incline-baselines`), and the trivial ones here — implements
//! [`Inliner`]. The VM hands it a compilation request (the root method and
//! the profiling context) and installs whatever graph comes back.

use incline_ir::{Graph, MethodId, Program};
use incline_profile::ProfileTable;

/// Read-only context available to a compilation.
#[derive(Clone, Copy)]
pub struct CompileCx<'a> {
    /// The program being executed.
    pub program: &'a Program,
    /// Profiles gathered by the interpreting tier.
    pub profiles: &'a ProfileTable,
}

/// Statistics reported by a compilation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct InlineStats {
    /// Callsites replaced by callee bodies (incl. nested ones).
    pub inlined_calls: u64,
    /// Expand/analyze/inline rounds executed (1 for single-pass inliners).
    pub rounds: u64,
    /// Total IR nodes of callee graphs explored (expansion work).
    pub explored_nodes: u64,
    /// IR size of the root graph after compilation.
    pub final_size: u64,
    /// Optimization events triggered during compilation.
    pub opt_events: u64,
}

/// The result of one compilation request.
#[derive(Clone, Debug)]
pub struct CompileOutcome {
    /// The optimized graph to install.
    pub graph: Graph,
    /// IR nodes processed (drives the simulated compilation latency).
    pub work_nodes: usize,
    /// Reporting counters.
    pub stats: InlineStats,
}

/// An inlining algorithm driving a compilation.
pub trait Inliner {
    /// Short stable name used in benchmark tables.
    fn name(&self) -> &str;

    /// Compiles `method`: clones its graph, performs inline substitution
    /// according to the algorithm's policy, optimizes, and returns the
    /// graph to install.
    fn compile(&self, method: MethodId, cx: &CompileCx<'_>) -> CompileOutcome;
}

/// Baseline that never inlines; it still runs the optimization pipeline
/// (this isolates inlining effects from scalar optimizations).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoInline;

impl Inliner for NoInline {
    fn name(&self) -> &str {
        "no-inline"
    }

    fn compile(&self, method: MethodId, cx: &CompileCx<'_>) -> CompileOutcome {
        let mut graph = cx.program.method(method).graph.clone();
        let before = graph.size();
        let stats = incline_opt::optimize(cx.program, &mut graph);
        let final_size = graph.size();
        CompileOutcome {
            graph,
            work_nodes: before + final_size,
            stats: InlineStats {
                inlined_calls: 0,
                rounds: 1,
                explored_nodes: 0,
                final_size: final_size as u64,
                opt_events: stats.total(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::Type;

    #[test]
    fn no_inline_optimizes_but_keeps_calls() {
        let mut p = Program::new();
        let callee = p.declare_function("c", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, callee);
        let k = fb.const_int(1);
        fb.ret(Some(k));
        let g = fb.finish();
        p.define_method(callee, g);
        let root = p.declare_function("r", vec![], Type::Int);
        let mut fb = FunctionBuilder::new(&p, root);
        let a = fb.const_int(20);
        let b = fb.const_int(22);
        let s = fb.iadd(a, b);
        let c = fb.call_static(callee, vec![]).unwrap();
        let r = fb.iadd(s, c);
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(root, g);

        let profiles = ProfileTable::new();
        let cx = CompileCx { program: &p, profiles: &profiles };
        let out = NoInline.compile(root, &cx);
        assert_eq!(out.stats.inlined_calls, 0);
        assert!(out.stats.opt_events >= 1, "constant fold expected");
        assert_eq!(out.graph.callsites().len(), 1, "the call must survive");
    }
}
