//! Benchmark measurement protocol.
//!
//! Follows the paper's §V methodology adapted to a deterministic VM: each
//! benchmark is executed for a fixed number of repetitions in one machine
//! instance; *peak performance* is the average of the last 40% of the
//! repetitions (at most 20), by which point warmup (interpretation +
//! compilation) has finished. Per-iteration cycles are retained so warmup
//! curves (Figure 5) can be plotted.

use std::sync::Arc;

use incline_ir::{MethodId, Program};
use incline_trace::{NullSink, TraceSink};

use crate::cache::CacheStats;
use crate::faults::FaultPlan;
use crate::inliner::Inliner;
use crate::machine::{BailoutCounters, ExecError, Machine, RunOutcome, VmConfig};
use crate::snapshot::{self, SnapshotIo, SnapshotStats};
use crate::value::Value;

/// A runnable benchmark: entry point plus arguments and repetition count.
#[derive(Clone, Debug)]
pub struct BenchSpec {
    /// Entry method.
    pub entry: MethodId,
    /// Arguments passed to every repetition.
    pub args: Vec<Value>,
    /// Number of repetitions.
    pub iterations: usize,
}

/// Measurements from one benchmark run.
///
/// `PartialEq` so the deterministic-mode tests can assert that different
/// `compile_threads` settings produce *identical* results wholesale.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchResult {
    /// Total cycles (execution + mutator-visible compile stall) of each
    /// repetition.
    pub per_iteration: Vec<u64>,
    /// Mean cycles over the steady-state window.
    pub steady_state: f64,
    /// Standard deviation over the steady-state window.
    pub std_dev: f64,
    /// Machine-code bytes installed by the end of the run.
    pub installed_bytes: u64,
    /// Number of methods compiled.
    pub compilations: u64,
    /// Cycles spent compiling over the whole run.
    pub compile_cycles: u64,
    /// Cycles the mutator observably stalled waiting on compilations —
    /// equals `compile_cycles` for the synchronous broker, strictly less
    /// when background workers overlap compilation with interpretation.
    pub stall_cycles: u64,
    /// Output lines of the final repetition (for cross-config checking).
    pub final_output: Vec<String>,
    /// Return value of the final repetition, printed for digests.
    pub final_value: Option<String>,
    /// Bailout counters accumulated by the machine over the run.
    pub bailouts: BailoutCounters,
    /// Mutator-visible compile stall of each repetition — the per-iteration
    /// decomposition of `stall_cycles`, for latency percentiles under
    /// cache pressure.
    pub stall_per_iteration: Vec<u64>,
    /// Code-cache statistics accumulated by the machine over the run.
    pub cache: CacheStats,
    /// Warmup-snapshot counters accumulated by the machine over the run.
    pub snapshot: SnapshotStats,
}

/// Why a benchmark run could not produce a measurement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BenchError {
    /// The spec asked for zero repetitions — there is nothing to measure.
    ZeroIterations,
    /// A repetition stopped abnormally (benchmarks are expected not to
    /// trap; a trap indicates a miscompilation or a workload bug).
    Exec(ExecError),
}

impl std::fmt::Display for BenchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BenchError::ZeroIterations => {
                write!(f, "benchmark spec requests zero iterations")
            }
            BenchError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BenchError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BenchError::ZeroIterations => None,
            BenchError::Exec(e) => Some(e),
        }
    }
}

impl From<ExecError> for BenchError {
    fn from(e: ExecError) -> Self {
        BenchError::Exec(e)
    }
}

impl BenchResult {
    /// The steady-state window of a series: the last 40% of repetitions,
    /// capped at 20, at least 1 (the paper's measurement rule).
    pub fn steady_window(n: usize) -> usize {
        ((n as f64 * 0.4) as usize).clamp(1, 20)
    }

    /// Nearest-rank quantile of the per-iteration mutator stall series
    /// (`q` ∈ `[0, 1]`, e.g. `0.99` for the p99 stall) — the tail-latency
    /// view of [`BenchResult::stall_per_iteration`], shared with the
    /// server report via [`crate::stats::percentile`].
    pub fn stall_percentile(&self, q: f64) -> u64 {
        crate::stats::percentile(&self.stall_per_iteration, q)
    }

    /// Warmup length: the first repetition whose time is within 10% of the
    /// steady state (1-based). The paper's parameter tuning constrains the
    /// algorithm "not to increase the warmup time by more than 20%".
    pub fn warmup_iterations(&self) -> usize {
        self.warmup_within(0.10)
    }

    /// Warmup length at an arbitrary tolerance: the first repetition whose
    /// time is within `frac` of the steady state (1-based; `frac = 0.05`
    /// is the "within 5%" criterion of the warmup benchmarks). Falls back
    /// to the repetition count when no repetition gets that close.
    pub fn warmup_within(&self, frac: f64) -> usize {
        let target = self.steady_state * (1.0 + frac);
        self.per_iteration
            .iter()
            .position(|&c| (c as f64) <= target)
            .map(|i| i + 1)
            .unwrap_or(self.per_iteration.len())
    }

    /// Cycles spent warming up at tolerance `frac`: the sum of every
    /// repetition *before* the first one within `frac` of the steady state.
    /// `0` when the very first repetition is already steady — the number
    /// eager snapshot replay drives toward zero.
    pub fn warmup_cycles_within(&self, frac: f64) -> u64 {
        let first_steady = self.warmup_within(frac);
        self.per_iteration[..first_steady - 1].iter().sum()
    }

    /// FNV-1a 64 digest of the run's observable answer: the final
    /// repetition's output lines and return value. Replayed runs must
    /// produce the same digest as cold runs — the differential tests and
    /// the CI warmup job compare exactly this.
    pub fn answer_digest(&self) -> u64 {
        let mut text = String::new();
        for line in &self.final_output {
            text.push_str(line);
            text.push('\n');
        }
        if let Some(v) = &self.final_value {
            text.push_str(v);
        }
        snapshot::fnv1a(text.as_bytes())
    }
}

/// A configured benchmark run, built fluently and executed once.
///
/// Every optional capability — inliner, VM configuration, fault plan,
/// trace sink, warmup snapshots — is a builder method, so new capabilities
/// extend the builder instead of forking another entry point (the old
/// positional-argument function ladder is gone).
///
/// ```
/// use incline_vm::{RunSession, BenchSpec, NoInline, Value, VmConfig};
/// # use incline_ir::{FunctionBuilder, Program, Type};
/// # let mut p = Program::new();
/// # let m = p.declare_function("answer", vec![Type::Int], Type::Int);
/// # let mut fb = FunctionBuilder::new(&p, m);
/// # let k = fb.const_int(42);
/// # fb.ret(Some(k));
/// # let g = fb.finish();
/// # p.define_method(m, g);
/// let spec = BenchSpec { entry: m, args: vec![Value::Int(1)], iterations: 3 };
/// let result = RunSession::new(&p, spec)
///     .inliner(Box::new(NoInline))
///     .config(VmConfig::builder().hotness_threshold(2).build())
///     .run()?;
/// assert_eq!(result.per_iteration.len(), 3);
/// # Ok::<(), incline_vm::BenchError>(())
/// ```
pub struct RunSession<'p> {
    program: &'p Program,
    spec: BenchSpec,
    inliner: Box<dyn Inliner + 'p>,
    config: VmConfig,
    plan: FaultPlan,
    sink: Arc<dyn TraceSink + 'p>,
    snapshot_in: Option<SnapshotIo>,
    snapshot_merge: Vec<SnapshotIo>,
    snapshot_out: Option<SnapshotIo>,
}

impl<'p> RunSession<'p> {
    /// Starts a session over `program` running `spec`. Defaults: the
    /// [`NoInline`](crate::NoInline) inliner, [`VmConfig::default`], no
    /// faults, no tracing.
    pub fn new(program: &'p Program, spec: BenchSpec) -> Self {
        RunSession {
            program,
            spec,
            inliner: Box::new(crate::inliner::NoInline),
            config: VmConfig::default(),
            plan: FaultPlan::new(),
            sink: Arc::new(NullSink),
            snapshot_in: None,
            snapshot_merge: Vec::new(),
            snapshot_out: None,
        }
    }

    /// Drives compilation with `inliner` (default: no inlining).
    pub fn inliner(mut self, inliner: Box<dyn Inliner + 'p>) -> Self {
        self.inliner = inliner;
        self
    }

    /// Runs under `config` (default: [`VmConfig::default`]).
    pub fn config(mut self, config: VmConfig) -> Self {
        self.config = config;
        self
    }

    /// Installs a deterministic [`FaultPlan`] before the first repetition —
    /// the entry point of the fault-injection harness.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Routes every compilation's [`incline_trace::CompileEvent`] stream
    /// into `sink` — the way to capture a whole benchmark's trace (see
    /// `examples/trace_dump.rs`).
    pub fn trace(mut self, sink: Arc<dyn TraceSink + 'p>) -> Self {
        self.sink = sink;
        self
    }

    /// Loads a warmup snapshot before the first repetition. Accepts
    /// anything [`SnapshotIo`] converts from: a path (`&str`, `String`,
    /// `&Path`, `PathBuf`), raw snapshot bytes (`Vec<u8>`), or an `Arc`ed
    /// [`SnapshotStore`](crate::snapshot::SnapshotStore). The snapshot is
    /// applied under [`VmConfig::replay`]; a stale, corrupt or unreadable
    /// snapshot degrades gracefully to a cold start ([`SnapshotStats::fallbacks`]
    /// in [`BenchResult::snapshot`]), never an error.
    pub fn snapshot_in(mut self, io: impl Into<SnapshotIo>) -> Self {
        self.snapshot_in = Some(io.into());
        self
    }

    /// Merges N replica snapshots before the first repetition (fleet
    /// distribution): each source is read and parsed, unreadable or
    /// corrupt replicas degrade to fallbacks, and the survivors go through
    /// [`Snapshot`](crate::Snapshot)'s N-way merge
    /// (profile union, decision majority vote, support check) before being
    /// applied like a single warmup snapshot. Zero usable replicas is a
    /// cold start, never an error. Overrides nothing: combine with
    /// [`RunSession::snapshot_in`] and the merge set simply includes it —
    /// but the CLI keeps them mutually exclusive for clarity.
    pub fn snapshot_merge(mut self, ios: Vec<SnapshotIo>) -> Self {
        self.snapshot_merge = ios;
        self
    }

    /// Writes the machine's end-of-run snapshot (profiles + compile
    /// decision log) to `io` after the last repetition. Write failures are
    /// counted in [`SnapshotStats::write_failures`], never an error.
    pub fn snapshot_out(mut self, io: impl Into<SnapshotIo>) -> Self {
        self.snapshot_out = Some(io.into());
        self
    }

    /// Executes the configured run on a fresh [`Machine`].
    ///
    /// # Errors
    ///
    /// Returns [`BenchError::ZeroIterations`] for an empty spec and
    /// [`BenchError::Exec`] when a repetition stops abnormally.
    pub fn run(self) -> Result<BenchResult, BenchError> {
        self.run_with_report().map(|(result, _)| result)
    }

    /// Like [`RunSession::run`], additionally returning the machine's
    /// [`CompilationReport`](crate::CompilationReport) — compile wall
    /// time, trial-cache hits/misses, bailout and cache telemetry — for
    /// the compiler-throughput figures. The `BenchResult` is bit-identical
    /// to what [`RunSession::run`] produces.
    ///
    /// # Errors
    ///
    /// Same contract as [`RunSession::run`].
    pub fn run_with_report(self) -> Result<(BenchResult, crate::CompilationReport), BenchError> {
        let spec = &self.spec;
        if spec.iterations == 0 {
            return Err(BenchError::ZeroIterations);
        }
        let mut vm = Machine::new(self.program, self.inliner, self.config);
        vm.set_fault_plan(self.plan);
        vm.set_trace_sink(self.sink);
        if let Some(io) = &self.snapshot_in {
            match io.store().read() {
                Ok(bytes) => {
                    vm.load_snapshot_or_cold(&bytes);
                }
                Err(e) => vm.note_snapshot_fallback(&e.to_string()),
            }
        }
        if !self.snapshot_merge.is_empty() {
            let replicas = read_replicas(&self.snapshot_merge, &mut vm);
            vm.load_merged_or_cold(&replicas);
        }
        let mut per_iteration = Vec::with_capacity(spec.iterations);
        let mut stall_per_iteration = Vec::with_capacity(spec.iterations);
        let mut last: Option<RunOutcome> = None;
        for _ in 0..spec.iterations {
            let out = vm.run(spec.entry, spec.args.clone())?;
            per_iteration.push(out.total_cycles());
            stall_per_iteration.push(out.stall_cycles);
            last = Some(out);
        }
        let window = BenchResult::steady_window(spec.iterations);
        let steady = &per_iteration[per_iteration.len() - window..];
        let mean = steady.iter().copied().sum::<u64>() as f64 / window as f64;
        let var = steady
            .iter()
            .map(|&c| {
                let d = c as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / window as f64;
        let last = last.expect("at least one iteration");
        if let Some(io) = &self.snapshot_out {
            let snap = vm.snapshot();
            let bytes = snap.to_bytes();
            match io.store().write(&bytes) {
                Ok(()) => vm.note_snapshot_written(
                    snap.methods.len() as u64,
                    snap.decisions.len() as u64,
                    bytes.len() as u64,
                ),
                Err(_) => vm.note_snapshot_write_failed(),
            }
        }
        let result = BenchResult {
            per_iteration,
            steady_state: mean,
            std_dev: var.sqrt(),
            installed_bytes: vm.installed_bytes(),
            compilations: vm.compilations(),
            compile_cycles: vm.total_compile_cycles(),
            stall_cycles: vm.total_stall_cycles(),
            final_output: last.output.lines().to_vec(),
            final_value: last.value.map(|v| format!("{v:?}")),
            bailouts: vm.bailouts(),
            stall_per_iteration,
            cache: vm.cache_stats(),
            snapshot: vm.snapshot_stats(),
        };
        Ok((result, vm.report()))
    }
}

/// Reads and parses a replica set for the merge path: unreadable or
/// unparsable sources each count a graceful fallback on `vm`; the
/// survivors are returned for [`Machine::load_merged_or_cold`]. Shared by
/// [`RunSession`] and [`crate::ServerSession`].
pub(crate) fn read_replicas(ios: &[SnapshotIo], vm: &mut Machine<'_>) -> Vec<snapshot::Snapshot> {
    let mut replicas = Vec::with_capacity(ios.len());
    for io in ios {
        match io.store().read() {
            Ok(bytes) => match snapshot::Snapshot::from_bytes(&bytes) {
                Ok(snap) => replicas.push(snap),
                Err(e) => vm.note_snapshot_fallback(&e.to_string()),
            },
            Err(e) => vm.note_snapshot_fallback(&e.to_string()),
        }
    }
    replicas
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inliner::NoInline;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::{CmpOp, Type};

    fn loopy_program() -> (Program, MethodId) {
        let mut p = Program::new();
        let m = p.declare_function("work", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]);
        let body = fb.add_block();
        let (done, dp) = fb.add_block_with_params(&[Type::Int]);
        fb.jump(head, vec![zero, zero]);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::ILt, hp[0], n);
        fb.branch(c, (body, vec![]), (done, vec![hp[1]]));
        fb.switch_to(body);
        let one = fb.const_int(1);
        let i2 = fb.iadd(hp[0], one);
        let a2 = fb.iadd(hp[1], hp[0]);
        fb.jump(head, vec![i2, a2]);
        fb.switch_to(done);
        fb.ret(Some(dp[0]));
        let g = fb.finish();
        p.define_method(m, g);
        (p, m)
    }

    #[test]
    fn warmup_curve_descends_with_jit() {
        let (p, m) = loopy_program();
        let spec = BenchSpec {
            entry: m,
            args: vec![Value::Int(500)],
            iterations: 12,
        };
        let config = VmConfig::builder().hotness_threshold(3).build();
        let r = RunSession::new(&p, spec)
            .inliner(Box::new(NoInline))
            .config(config)
            .run()
            .unwrap();
        assert_eq!(r.per_iteration.len(), 12);
        let first = r.per_iteration[0];
        let last = *r.per_iteration.last().unwrap();
        assert!(
            last < first,
            "warmup must speed things up: {first} → {last}"
        );
        assert_eq!(r.compilations, 1);
        assert!(r.steady_state > 0.0);
        assert!(r.std_dev >= 0.0);
    }

    #[test]
    fn steady_window_rule() {
        assert_eq!(BenchResult::steady_window(10), 4);
        assert_eq!(BenchResult::steady_window(100), 20); // capped
        assert_eq!(BenchResult::steady_window(1), 1); // floor
        assert_eq!(BenchResult::steady_window(2), 1);
    }

    #[test]
    fn warmup_detection() {
        let r = BenchResult {
            per_iteration: vec![1000, 400, 210, 200, 200, 200],
            steady_state: 200.0,
            std_dev: 0.0,
            installed_bytes: 0,
            compilations: 0,
            compile_cycles: 0,
            stall_cycles: 0,
            final_output: vec![],
            final_value: None,
            bailouts: BailoutCounters::default(),
            stall_per_iteration: vec![800, 0, 10, 0, 0, 0],
            cache: CacheStats::default(),
            snapshot: SnapshotStats::default(),
        };
        assert_eq!(r.warmup_iterations(), 3); // 210 ≤ 220 = 200·1.10
        assert_eq!(r.warmup_within(0.05), 3); // 210 ≤ 210 = 200·1.05
        assert_eq!(r.warmup_cycles_within(0.05), 1000 + 400);
        assert_eq!(r.warmup_within(0.01), 4); // 200 ≤ 202 = 200·1.01
        assert_eq!(r.warmup_cycles_within(0.01), 1000 + 400 + 210);
        assert_eq!(r.stall_percentile(0.5), 0);
        assert_eq!(r.stall_percentile(0.99), 800);
    }

    #[test]
    fn warmup_cycles_zero_when_steady_from_the_start() {
        let r = BenchResult {
            per_iteration: vec![200, 200, 200],
            steady_state: 200.0,
            std_dev: 0.0,
            installed_bytes: 0,
            compilations: 0,
            compile_cycles: 0,
            stall_cycles: 0,
            final_output: vec!["ok".to_string()],
            final_value: Some("Int(7)".to_string()),
            bailouts: BailoutCounters::default(),
            stall_per_iteration: vec![0, 0, 0],
            cache: CacheStats::default(),
            snapshot: SnapshotStats::default(),
        };
        assert_eq!(r.warmup_within(0.05), 1);
        assert_eq!(r.warmup_cycles_within(0.05), 0);
        // The digest covers output lines and the final value.
        let mut other = r.clone();
        other.final_value = Some("Int(8)".to_string());
        assert_ne!(r.answer_digest(), other.answer_digest());
    }

    #[test]
    fn zero_iterations_is_an_error_not_a_panic() {
        let (p, m) = loopy_program();
        let spec = BenchSpec {
            entry: m,
            args: vec![Value::Int(1)],
            iterations: 0,
        };
        let err = RunSession::new(&p, spec)
            .inliner(Box::new(NoInline))
            .run()
            .unwrap_err();
        assert_eq!(err, BenchError::ZeroIterations);
    }

    #[test]
    fn snapshot_round_trip_warms_the_next_session() {
        let (p, m) = loopy_program();
        let spec = BenchSpec {
            entry: m,
            args: vec![Value::Int(500)],
            iterations: 8,
        };
        let config = VmConfig::builder().hotness_threshold(3).build();
        let store = Arc::new(crate::snapshot::MemoryStore::new());
        let cold = RunSession::new(&p, spec.clone())
            .inliner(Box::new(NoInline))
            .config(config)
            .snapshot_out(store.clone())
            .run()
            .unwrap();
        assert_eq!(cold.snapshot.written, 1);
        assert!(store.bytes().is_some(), "snapshot must land in the store");
        let warm = RunSession::new(&p, spec)
            .inliner(Box::new(NoInline))
            .config(config)
            .snapshot_in(store)
            .run()
            .unwrap();
        assert_eq!(warm.snapshot.loaded, 1);
        assert_eq!(warm.snapshot.replayed_compiles, 1);
        assert_eq!(
            warm.answer_digest(),
            cold.answer_digest(),
            "replay must not change the answer"
        );
        assert!(
            warm.warmup_cycles_within(0.05) < cold.warmup_cycles_within(0.05),
            "eager replay must shrink warmup: {} vs {}",
            warm.warmup_cycles_within(0.05),
            cold.warmup_cycles_within(0.05)
        );
    }

    #[test]
    fn unreadable_snapshot_store_degrades_to_cold_start() {
        let (p, m) = loopy_program();
        let spec = BenchSpec {
            entry: m,
            args: vec![Value::Int(100)],
            iterations: 6,
        };
        let config = VmConfig::builder().hotness_threshold(2).build();
        let cold = RunSession::new(&p, spec.clone())
            .inliner(Box::new(NoInline))
            .config(config)
            .run()
            .unwrap();
        // An empty MemoryStore fails the read; the run proceeds cold.
        let fallback = RunSession::new(&p, spec)
            .inliner(Box::new(NoInline))
            .config(config)
            .snapshot_in(Arc::new(crate::snapshot::MemoryStore::new()))
            .run()
            .unwrap();
        assert_eq!(fallback.snapshot.fallbacks, 1);
        let mut comparable = fallback.clone();
        comparable.snapshot = cold.snapshot;
        assert_eq!(comparable, cold, "fallback must behave exactly like cold");
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let (p, m) = loopy_program();
        let spec = BenchSpec {
            entry: m,
            args: vec![Value::Int(100)],
            iterations: 6,
        };
        let config = VmConfig::builder().hotness_threshold(2).build();
        let a = RunSession::new(&p, spec.clone())
            .inliner(Box::new(NoInline))
            .config(config)
            .run()
            .unwrap();
        let b = RunSession::new(&p, spec)
            .inliner(Box::new(NoInline))
            .config(config)
            .run()
            .unwrap();
        assert_eq!(
            a.per_iteration, b.per_iteration,
            "the VM must be deterministic"
        );
        assert_eq!(a.installed_bytes, b.installed_bytes);
    }
}
