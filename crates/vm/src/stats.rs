//! Shared distribution statistics: percentiles and fairness.
//!
//! The server simulation ([`crate::server`]) and the bench harness both
//! summarize latency/stall series into tail percentiles, and the
//! multi-tenant report needs a fairness number. The math lives here once —
//! `incline_bench::stats` re-exports it — so every figure and report uses
//! the same deterministic definitions: nearest-rank percentiles on a
//! sorted copy (integer ranks, no interpolation) and Jain's fairness
//! index.

/// Nearest-rank quantile of a series. `q` is a fraction in `[0, 1]`:
/// `0.50` is the median, `0.999` the p999. Deterministic: the series is
/// sorted (unstable sort on `u64` is order-stable for equal keys by
/// value) and indexed at `ceil(q · n) - 1`, the classic nearest-rank
/// definition. An empty series yields 0.
pub fn percentile(series: &[u64], q: f64) -> u64 {
    if series.is_empty() {
        return 0;
    }
    let mut sorted = series.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let rank = (q * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// Jain's fairness index over a set of non-negative values:
/// `(Σx)² / (n · Σx²)`. Equals 1.0 when all values are equal and
/// approaches `1/n` as one value dominates. An empty or all-zero set is
/// defined as perfectly fair (1.0).
pub fn fairness_index(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 1.0;
    }
    let sum: f64 = values.iter().sum();
    let sq_sum: f64 = values.iter().map(|v| v * v).sum();
    if sq_sum == 0.0 {
        return 1.0;
    }
    (sum * sum) / (values.len() as f64 * sq_sum)
}

/// A five-number summary of a cycle series (latencies, stalls): the tail
/// percentiles the server report and the bench figures print.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct LatencyStats {
    /// Median (nearest-rank p50).
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
    /// Worst observation.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl LatencyStats {
    /// Summarizes a series (empty series ⇒ all zeros).
    pub fn of(series: &[u64]) -> LatencyStats {
        if series.is_empty() {
            return LatencyStats::default();
        }
        LatencyStats {
            p50: percentile(series, 0.50),
            p99: percentile(series, 0.99),
            p999: percentile(series, 0.999),
            max: *series.iter().max().expect("non-empty"),
            mean: series.iter().sum::<u64>() as f64 / series.len() as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let series: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&series, 0.50), 50);
        assert_eq!(percentile(&series, 0.99), 99);
        assert_eq!(percentile(&series, 0.999), 100);
        assert_eq!(percentile(&series, 1.0), 100);
        assert_eq!(percentile(&series, 0.0), 1);
        assert_eq!(percentile(&[], 0.5), 0);
        assert_eq!(percentile(&[7], 0.999), 7);
    }

    #[test]
    fn percentile_is_order_independent() {
        let a = vec![5, 1, 9, 3, 7];
        let b = vec![9, 7, 5, 3, 1];
        for q in [0.5, 0.9, 0.99] {
            assert_eq!(percentile(&a, q), percentile(&b, q));
        }
    }

    #[test]
    fn jain_index_bounds() {
        assert_eq!(fairness_index(&[3.0, 3.0, 3.0]), 1.0);
        let skew = fairness_index(&[100.0, 1.0, 1.0, 1.0]);
        assert!(skew < 0.5, "one dominant value is unfair: {skew}");
        assert!(skew > 0.25, "index is bounded below by 1/n: {skew}");
        assert_eq!(fairness_index(&[]), 1.0);
        assert_eq!(fairness_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    fn latency_summary() {
        let s = LatencyStats::of(&[10, 20, 30, 40]);
        assert_eq!(s.p50, 20);
        assert_eq!(s.max, 40);
        assert_eq!(s.mean, 25.0);
        assert_eq!(LatencyStats::of(&[]), LatencyStats::default());
    }
}
