//! Bounded code-cache policy machinery: eviction scoring and admission.
//!
//! The machine enforces [`crate::VmConfig::code_cache_budget`] at install
//! time (DESIGN.md §11). This module holds the *pure* part of that
//! subsystem — policy enumeration, victim scoring and the admission rule —
//! so each policy's ordering is unit-testable in isolation and provably
//! deterministic: every score is integer arithmetic over a
//! [`CacheEntry`] snapshot, and all orderings tie-break on [`MethodId`].
//!
//! Lower score = evicted first. The three policies:
//!
//! * [`EvictionPolicy::Lru`] — score is the tick of the last compiled
//!   activation; the method that ran longest ago goes first.
//! * [`EvictionPolicy::HotnessDecay`] — score is the resident use count
//!   decayed by idle time, `uses * SCALE / (idle + 1)`; a method's past
//!   heat buys it residency that idle ticks steadily erode.
//! * [`EvictionPolicy::CostBenefit`] — score is the Eq. 9–11 flavored
//!   benefit density `benefit * SCALE / bytes`; the method saving the
//!   fewest modeled cycles per occupied byte goes first.
//!
//! **Aging** floors a score: an entry marked `aged` (idle past
//! [`crate::VmConfig::cache_age_window`]) sorts before every non-aged
//! entry under *every* policy, so dead code is always the preferred
//! victim.
//!
//! **Admission** compares the candidate package, scored as a hypothetical
//! entry at the install tick, against the cheapest victim: the candidate
//! must *strictly* beat it, or the install is rejected and deferred. This
//! is what keeps a cold giant from churning out a working set of hotter,
//! denser methods.

use std::fmt;

use incline_ir::MethodId;

/// Fixed-point scale for the decay and density scores (integer
/// arithmetic keeps every comparison deterministic across platforms).
const SCORE_SCALE: u128 = 1 << 16;

/// Which eviction policy the bounded code cache uses to pick victims.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvictionPolicy {
    /// Evict the method whose compiled code ran longest ago.
    #[default]
    Lru,
    /// Evict the lowest idle-decayed resident use count.
    HotnessDecay,
    /// Evict the lowest modeled benefit per occupied code byte.
    CostBenefit,
}

impl EvictionPolicy {
    /// Stable lowercase label, used in trace events and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::HotnessDecay => "hotness",
            EvictionPolicy::CostBenefit => "cost-benefit",
        }
    }

    /// Every policy, in a fixed order (benchmark sweeps iterate this).
    pub fn all() -> [EvictionPolicy; 3] {
        [
            EvictionPolicy::Lru,
            EvictionPolicy::HotnessDecay,
            EvictionPolicy::CostBenefit,
        ]
    }
}

impl fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for EvictionPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(EvictionPolicy::Lru),
            "hotness" => Ok(EvictionPolicy::HotnessDecay),
            "cost-benefit" => Ok(EvictionPolicy::CostBenefit),
            other => Err(format!(
                "unknown eviction policy `{other}` (expected lru, hotness or cost-benefit)"
            )),
        }
    }
}

/// A scoring snapshot of one resident compiled method (or, for the
/// admission rule, of the candidate package at the install tick).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheEntry {
    /// The resident method.
    pub method: MethodId,
    /// Tick of its last compiled activation (install counts as a use).
    pub last_used: u64,
    /// Compiled activations served while resident.
    pub uses: u64,
    /// Modeled benefit of residency: profiled hotness at install × the
    /// interpreter dispatch premium (cycles the compiled code saves per
    /// unit of execution — the `b` of the paper's `b|c` tuples).
    pub benefit: u64,
    /// Modeled code bytes (the `c` of the tuple).
    pub bytes: u64,
    /// Idle past the aging window: the score floors to minimum.
    pub aged: bool,
}

/// The total eviction order key: aged entries first, then the policy
/// score, then recency, then `MethodId` — fully deterministic.
fn sort_key(policy: EvictionPolicy, e: &CacheEntry, now: u64) -> (u8, u128, u64) {
    let aged_rank = u8::from(!e.aged);
    let idle = now.saturating_sub(e.last_used) as u128;
    let primary = match policy {
        EvictionPolicy::Lru => e.last_used as u128,
        EvictionPolicy::HotnessDecay => (e.uses as u128 * SCORE_SCALE) / (idle + 1),
        EvictionPolicy::CostBenefit => (e.benefit as u128 * SCORE_SCALE) / e.bytes.max(1) as u128,
    };
    (aged_rank, primary, e.last_used)
}

/// Sorts `entries` into eviction order under `policy`: the first element
/// is the cheapest victim (evicted first). `now` is the current use tick.
pub fn victim_order(policy: EvictionPolicy, entries: &[CacheEntry], now: u64) -> Vec<CacheEntry> {
    let mut order: Vec<CacheEntry> = entries.to_vec();
    order.sort_by_key(|e| (sort_key(policy, e, now), e.method));
    order
}

/// The admission rule: would installing `candidate` be better than keeping
/// `cheapest` (the head of [`victim_order`])? The candidate must score
/// *strictly* higher — ties keep the resident code, so admission can never
/// thrash two equal methods against each other.
pub fn admits(
    policy: EvictionPolicy,
    candidate: &CacheEntry,
    cheapest: &CacheEntry,
    now: u64,
) -> bool {
    // Only the aged floor and the policy score count here: the recency
    // tie-break that makes eviction order total would otherwise let every
    // equal-scored candidate displace the resident simply by being newer.
    let (c_aged, c_score, _) = sort_key(policy, candidate, now);
    let (r_aged, r_score, _) = sort_key(policy, cheapest, now);
    (c_aged, c_score) > (r_aged, r_score)
}

/// Lifetime code-cache statistics, one per [`crate::Machine`].
///
/// `PartialEq` so the determinism tests can compare them wholesale across
/// thread counts, exactly like [`crate::BailoutCounters`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Victims evicted (pressure-driven and injected together).
    pub evictions: u64,
    /// Evictions injected by [`crate::FaultKind::ForceEvict`].
    pub forced_evictions: u64,
    /// Installs rejected by admission control and deferred.
    pub admission_rejections: u64,
    /// Full-tier packages admitted only after the inline-free degraded
    /// retry produced a small-enough package.
    pub degraded_admissions: u64,
    /// Evicted methods that re-heated and were installed again.
    pub re_tiered: u64,
    /// Residents marked aged (idle past the aging window).
    pub aged: u64,
    /// Highest `installed_bytes` ever observed.
    pub high_water_bytes: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(idx: u32, last_used: u64, uses: u64, benefit: u64, bytes: u64) -> CacheEntry {
        CacheEntry {
            method: MethodId::new(idx as usize),
            last_used,
            uses,
            benefit,
            bytes,
            aged: false,
        }
    }

    fn methods(order: &[CacheEntry]) -> Vec<usize> {
        order.iter().map(|e| e.method.index()).collect()
    }

    #[test]
    fn lru_evicts_least_recently_used_first() {
        let entries = [
            entry(0, 50, 10, 100, 64),
            entry(1, 3, 900, 9000, 64),
            entry(2, 17, 1, 1, 64),
        ];
        let order = victim_order(EvictionPolicy::Lru, &entries, 60);
        assert_eq!(methods(&order), vec![1, 2, 0]);
    }

    #[test]
    fn lru_ties_break_on_method_id() {
        let entries = [
            entry(2, 5, 0, 0, 1),
            entry(0, 5, 0, 0, 1),
            entry(1, 5, 0, 0, 1),
        ];
        let order = victim_order(EvictionPolicy::Lru, &entries, 10);
        assert_eq!(methods(&order), vec![0, 1, 2]);
    }

    #[test]
    fn hotness_decay_erodes_idle_heat() {
        // Method 0 was very hot but has idled for 99 ticks: 1000/100 = 10.
        // Method 1 is mildly warm and current: 40/1 = 40. The idle one goes.
        let entries = [entry(0, 1, 1000, 0, 64), entry(1, 99, 40, 0, 64)];
        let order = victim_order(EvictionPolicy::HotnessDecay, &entries, 100);
        assert_eq!(methods(&order), vec![0, 1]);
    }

    #[test]
    fn cost_benefit_evicts_lowest_density_first() {
        // Densities: 100/400 = 0.25, 100/50 = 2.0, 1000/400 = 2.5 — the
        // worst cycles-per-byte deal goes first.
        let entries = [
            entry(0, 9, 5, 100, 400),
            entry(1, 9, 5, 100, 50),
            entry(2, 9, 5, 1000, 400),
        ];
        let order = victim_order(EvictionPolicy::CostBenefit, &entries, 10);
        assert_eq!(methods(&order), vec![0, 1, 2]);
    }

    #[test]
    fn aged_entries_float_to_the_front_under_every_policy() {
        let mut hot_but_aged = entry(7, 90, 10_000, 1_000_000, 8);
        hot_but_aged.aged = true;
        let cold_but_live = entry(1, 2, 1, 1, 1024);
        for policy in EvictionPolicy::all() {
            let order = victim_order(policy, &[cold_but_live, hot_but_aged], 100);
            assert_eq!(
                methods(&order),
                vec![7, 1],
                "aged entry must lead under {policy}"
            );
        }
    }

    #[test]
    fn admission_requires_strictly_beating_the_cheapest_victim() {
        let resident = entry(0, 5, 8, 80, 64);
        // LRU: a candidate at the install tick is always newer.
        let candidate = entry(9, 10, 8, 80, 64);
        assert!(admits(EvictionPolicy::Lru, &candidate, &resident, 10));
        // Cost-benefit: identical density ties — the resident stays.
        assert!(!admits(
            EvictionPolicy::CostBenefit,
            &candidate,
            &resident,
            10
        ));
        // A denser candidate wins; a sparser one loses.
        let dense = entry(9, 10, 8, 160, 64);
        let sparse = entry(9, 10, 8, 40, 64);
        assert!(admits(EvictionPolicy::CostBenefit, &dense, &resident, 10));
        assert!(!admits(EvictionPolicy::CostBenefit, &sparse, &resident, 10));
    }

    #[test]
    fn policy_labels_round_trip_through_parse() {
        for policy in EvictionPolicy::all() {
            assert_eq!(policy.label().parse::<EvictionPolicy>(), Ok(policy));
        }
        assert!("mru".parse::<EvictionPolicy>().is_err());
    }
}
