//! Runtime values, the heap, and the observable output stream.

use std::fmt;

use incline_ir::{ClassId, ElemType, Program, Type};

/// Index of a heap cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct HeapRef(pub u32);

/// A runtime value.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Value {
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Boolean.
    Bool(bool),
    /// Null reference.
    Null,
    /// Reference to a heap cell (object or array).
    Ref(HeapRef),
}

impl Value {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int` (verified graphs cannot trigger
    /// this; it indicates an interpreter bug).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(k) => k,
            other => panic!("expected int, got {other:?}"),
        }
    }

    /// The float payload. See [`Value::as_int`] for panics.
    pub fn as_float(self) -> f64 {
        match self {
            Value::Float(k) => k,
            other => panic!("expected float, got {other:?}"),
        }
    }

    /// The bool payload. See [`Value::as_int`] for panics.
    pub fn as_bool(self) -> bool {
        match self {
            Value::Bool(k) => k,
            other => panic!("expected bool, got {other:?}"),
        }
    }

    /// The zero/default value of a type (fields and array elements).
    pub fn default_of(ty: Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Float => Value::Float(0.0),
            Type::Bool => Value::Bool(false),
            Type::Object(_) | Type::Array(_) => Value::Null,
        }
    }

    /// The zero/default value of an array element type.
    pub fn default_of_elem(e: ElemType) -> Value {
        Value::default_of(e.to_type())
    }
}

/// A heap cell.
#[derive(Clone, Debug)]
pub enum HeapCell {
    /// An object instance: dynamic class + field slots.
    Object {
        /// Dynamic class of the instance.
        class: ClassId,
        /// Field slots, ordered by layout offset.
        fields: Vec<Value>,
    },
    /// An array.
    Array {
        /// Element type.
        elem: ElemType,
        /// The elements.
        data: Vec<Value>,
    },
}

/// The heap: a bump-allocated arena of cells.
#[derive(Clone, Debug, Default)]
pub struct Heap {
    cells: Vec<HeapCell>,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocates an object of `class` with zeroed fields.
    pub fn alloc_object(&mut self, program: &Program, class: ClassId) -> HeapRef {
        let n = program.class(class).instance_len;
        let mut fields = Vec::with_capacity(n);
        // Zero defaults per slot type: walk the layout.
        let mut cur = Some(class);
        let mut slot_types = vec![Type::Int; n];
        while let Some(c) = cur {
            for &f in &program.class(c).declared_fields {
                let fd = program.field(f);
                slot_types[fd.offset] = fd.ty;
            }
            cur = program.class(c).parent;
        }
        for ty in slot_types {
            fields.push(Value::default_of(ty));
        }
        let r = HeapRef(self.cells.len() as u32);
        self.cells.push(HeapCell::Object { class, fields });
        r
    }

    /// Allocates an array of `len` zeroed elements.
    pub fn alloc_array(&mut self, elem: ElemType, len: usize) -> HeapRef {
        let r = HeapRef(self.cells.len() as u32);
        self.cells.push(HeapCell::Array {
            elem,
            data: vec![Value::default_of_elem(elem); len],
        });
        r
    }

    /// The cell behind a reference.
    pub fn cell(&self, r: HeapRef) -> &HeapCell {
        &self.cells[r.0 as usize]
    }

    /// Mutable cell access.
    pub fn cell_mut(&mut self, r: HeapRef) -> &mut HeapCell {
        &mut self.cells[r.0 as usize]
    }

    /// Dynamic class of an object reference.
    ///
    /// # Panics
    ///
    /// Panics if the reference is an array.
    pub fn class_of(&self, r: HeapRef) -> ClassId {
        match self.cell(r) {
            HeapCell::Object { class, .. } => *class,
            HeapCell::Array { .. } => panic!("class_of on array"),
        }
    }

    /// Number of live cells.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the heap is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Frees every cell allocated at or after `len`, restoring the heap to
    /// an earlier allocation watermark. Used by deoptimization rollback;
    /// only valid when no surviving cell references a discarded one, which
    /// holds for a rolled-back activation because the write journal has
    /// already restored all pre-existing cells.
    pub fn truncate(&mut self, len: usize) {
        self.cells.truncate(len);
    }
}

/// The observable output of a program run (`print` intrinsic), used by
/// differential tests: interpreted and compiled executions must produce
/// identical output.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Output {
    lines: Vec<String>,
}

impl Output {
    /// Creates an empty output stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends the printed form of a value.
    ///
    /// References print their *shape* (class name / array length), not
    /// their identity, so output is deterministic across heap layouts.
    pub fn print(&mut self, program: &Program, heap: &Heap, v: Value) {
        let s = match v {
            Value::Int(k) => k.to_string(),
            Value::Float(f) => format!("{f:?}"),
            Value::Bool(b) => b.to_string(),
            Value::Null => "null".to_string(),
            Value::Ref(r) => match heap.cell(r) {
                HeapCell::Object { class, .. } => program.class(*class).name.clone(),
                HeapCell::Array { data, .. } => format!("array[{}]", data.len()),
            },
        };
        self.lines.push(s);
    }

    /// The printed lines.
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Number of printed lines.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether nothing has been printed yet.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Discards every line printed at or after `len`. Used by
    /// deoptimization rollback before the interpreter replays the
    /// activation.
    pub fn truncate(&mut self, len: usize) {
        self.lines.truncate(len);
    }
}

impl fmt::Display for Output {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.lines {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_fields_zeroed_by_type() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        p.add_field(a, "x", Type::Int);
        p.add_field(a, "y", Type::Float);
        let b = p.add_class("B", Some(a));
        p.add_field(b, "z", Type::Object(a));
        let mut heap = Heap::new();
        let r = heap.alloc_object(&p, b);
        let HeapCell::Object { class, fields } = heap.cell(r) else {
            panic!()
        };
        assert_eq!(*class, b);
        assert_eq!(
            fields.as_slice(),
            &[Value::Int(0), Value::Float(0.0), Value::Null]
        );
    }

    #[test]
    fn array_alloc_and_defaults() {
        let mut heap = Heap::new();
        let r = heap.alloc_array(ElemType::Bool, 3);
        let HeapCell::Array { data, .. } = heap.cell(r) else {
            panic!()
        };
        assert_eq!(data.as_slice(), &[Value::Bool(false); 3]);
    }

    #[test]
    fn output_prints_shapes() {
        let mut p = Program::new();
        let a = p.add_class("Thing", None);
        let mut heap = Heap::new();
        let r = heap.alloc_object(&p, a);
        let arr = heap.alloc_array(ElemType::Int, 2);
        let mut out = Output::new();
        out.print(&p, &heap, Value::Int(7));
        out.print(&p, &heap, Value::Float(1.5));
        out.print(&p, &heap, Value::Null);
        out.print(&p, &heap, Value::Ref(r));
        out.print(&p, &heap, Value::Ref(arr));
        assert_eq!(out.lines(), &["7", "1.5", "null", "Thing", "array[2]"]);
    }
}
