//! The simulated-cycle cost model.
//!
//! The paper evaluates on real hardware; we substitute a deterministic
//! cycle model that preserves the phenomena the inlining trade-off lives
//! on (DESIGN.md §6):
//!
//! * interpreted code pays a per-instruction *dispatch premium*,
//! * compiled code pays per-op costs only,
//! * a non-inlined call pays frame setup + argument moves; virtual calls
//!   additionally pay a dispatch-table walk,
//! * **instruction-cache pressure**: once the total installed code exceeds
//!   a capacity, every compiled instruction gets proportionally slower.
//!   This reproduces the paper's §II.3 non-linearity ("excessive inlining
//!   can put more pressure on … the instruction cache, and degrade
//!   performance") and makes over-inlining measurably bad,
//! * compilation itself costs cycles proportional to the work done, which
//!   is what makes exploration budgets meaningful (§II.2).

use incline_ir::graph::Op;

/// Execution tier of a method activation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Tier {
    /// Profiling interpreter.
    Interpreted,
    /// JIT-compiled code.
    Compiled,
}

/// Tunable constants of the cost model.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Extra cycles per instruction in the interpreter.
    pub interp_dispatch: u64,
    /// Cycles for a non-inlined call: frame + return.
    pub call_overhead: u64,
    /// Additional cycles per argument of a call.
    pub call_per_arg: u64,
    /// Additional cycles for virtual dispatch (table walk).
    pub virtual_dispatch: u64,
    /// Cycles per control-flow edge argument (register shuffling).
    pub edge_move: u64,
    /// Estimated machine-code bytes per IR node (code-size accounting).
    pub bytes_per_node: u64,
    /// Instruction-cache capacity in bytes; below this, no penalty.
    pub icache_capacity: u64,
    /// Scale of the i-cache penalty: every `icache_scale` bytes beyond
    /// capacity add 100% to compiled per-op cost.
    pub icache_scale: u64,
    /// Compilation cycles charged per processed IR node.
    pub compile_per_node: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            interp_dispatch: 9,
            call_overhead: 18,
            call_per_arg: 2,
            virtual_dispatch: 12,
            edge_move: 1,
            bytes_per_node: 4,
            // The i7-4930MX the paper measures on has a 32 KiB L1i.
            icache_capacity: 32 * 1024,
            icache_scale: 128 * 1024,
            compile_per_node: 40,
        }
    }
}

impl CostModel {
    /// Builder-style override of the instruction-cache parameters — the
    /// knobs the `--icache-capacity` / `--icache-scale` CLI flags expose
    /// for exploring the over-inlining cliff and cache-pressure scenarios.
    pub fn with_icache(mut self, capacity: u64, scale: u64) -> Self {
        self.icache_capacity = capacity;
        self.icache_scale = scale.max(1);
        self
    }

    /// Base cycle cost of one operation (tier-independent part).
    pub fn op_cost(&self, op: &Op) -> u64 {
        match op {
            Op::Nop => 0,
            Op::ConstInt(_) | Op::ConstFloat(_) | Op::ConstBool(_) | Op::ConstNull(_) => 1,
            Op::Bin(b) => {
                if b.can_trap() {
                    12 // division
                } else if b.is_float() {
                    3
                } else {
                    1
                }
            }
            Op::Cmp(_) | Op::Not | Op::INeg | Op::FNeg => 1,
            Op::IntToFloat | Op::FloatToInt => 2,
            Op::New(_) => 14,
            Op::NewArray(_) => 16,
            Op::GetField(_) | Op::SetField(_) => 3,
            Op::ArrayGet | Op::ArraySet => 4,
            Op::ArrayLen => 2,
            Op::InstanceOf(_) => 4,
            Op::Cast(_) => 4,
            Op::Print => 20,
            // The call overheads are charged separately at the callsite;
            // this is just the instruction itself.
            Op::Call(_) => 1,
        }
    }

    /// Full cost of executing `op` once in `tier`, given the currently
    /// installed code size in bytes.
    pub fn exec_cost(&self, op: &Op, tier: Tier, installed_bytes: u64) -> u64 {
        let base = self.op_cost(op);
        match tier {
            Tier::Interpreted => base + self.interp_dispatch,
            Tier::Compiled => {
                // Integer i-cache factor in 1/256ths to stay deterministic.
                let over = installed_bytes.saturating_sub(self.icache_capacity);
                if over == 0 {
                    base
                } else {
                    let factor_num = 256 + (over * 256) / self.icache_scale.max(1);
                    (base * factor_num) / 256
                }
            }
        }
    }

    /// Cycles for a non-inlined call with `argc` arguments.
    pub fn call_cost(&self, argc: usize, virtual_dispatch: bool) -> u64 {
        let mut c = self.call_overhead + self.call_per_arg * argc as u64;
        if virtual_dispatch {
            c += self.virtual_dispatch;
        }
        c
    }

    /// Cycles for taking a CFG edge passing `argc` block arguments.
    pub fn edge_cost(&self, argc: usize, tier: Tier) -> u64 {
        let base = self.edge_move * argc as u64 + 1;
        match tier {
            Tier::Interpreted => base + self.interp_dispatch,
            Tier::Compiled => base,
        }
    }

    /// Machine-code bytes a compiled graph of `ir_nodes` occupies.
    pub fn code_bytes(&self, ir_nodes: usize) -> u64 {
        self.bytes_per_node * ir_nodes as u64
    }

    /// Compilation latency (cycles) for processing `work_nodes` IR nodes
    /// (explored + optimized + emitted).
    pub fn compile_cost(&self, work_nodes: usize) -> u64 {
        self.compile_per_node * work_nodes as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpreter_pays_dispatch_premium() {
        let m = CostModel::default();
        let op = Op::ConstInt(1);
        let i = m.exec_cost(&op, Tier::Interpreted, 0);
        let c = m.exec_cost(&op, Tier::Compiled, 0);
        assert!(i > c);
        assert_eq!(i - c, m.interp_dispatch);
    }

    #[test]
    fn icache_pressure_kicks_in_past_capacity() {
        let m = CostModel::default();
        let op = Op::Bin(incline_ir::BinOp::FAdd);
        let small = m.exec_cost(&op, Tier::Compiled, m.icache_capacity);
        let big = m.exec_cost(&op, Tier::Compiled, m.icache_capacity + 4 * m.icache_scale);
        assert!(
            big > small,
            "i-cache pressure must slow compiled code: {big} vs {small}"
        );
        assert_eq!(big, small * 5); // 4 scales over → 5× cost
    }

    #[test]
    fn icache_no_penalty_for_interpreter() {
        let m = CostModel::default();
        let op = Op::ConstInt(3);
        let a = m.exec_cost(&op, Tier::Interpreted, 0);
        let b = m.exec_cost(&op, Tier::Interpreted, 100 * 1024 * 1024);
        assert_eq!(a, b);
    }

    #[test]
    fn virtual_calls_cost_more() {
        let m = CostModel::default();
        assert!(m.call_cost(2, true) > m.call_cost(2, false));
        assert!(m.call_cost(5, false) > m.call_cost(1, false));
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use incline_ir::graph::Op;

    #[test]
    fn edge_cost_scales_with_args_and_tier() {
        let m = CostModel::default();
        assert!(m.edge_cost(4, Tier::Interpreted) > m.edge_cost(0, Tier::Interpreted));
        assert!(m.edge_cost(0, Tier::Interpreted) > m.edge_cost(0, Tier::Compiled));
    }

    #[test]
    fn compile_cost_proportional_to_work() {
        let m = CostModel::default();
        assert_eq!(m.compile_cost(0), 0);
        assert_eq!(m.compile_cost(100), 100 * m.compile_per_node);
        assert_eq!(m.code_bytes(50), 50 * m.bytes_per_node);
    }

    #[test]
    fn nop_is_free() {
        let m = CostModel::default();
        assert_eq!(m.op_cost(&Op::Nop), 0);
        // Even interpreted, only the dispatch premium applies.
        assert_eq!(
            m.exec_cost(&Op::Nop, Tier::Interpreted, 0),
            m.interp_dispatch
        );
    }

    #[test]
    fn allocation_costs_more_than_arithmetic() {
        let m = CostModel::default();
        let add = m.op_cost(&Op::Bin(incline_ir::BinOp::IAdd));
        let new = m.op_cost(&Op::New(incline_ir::ClassId::new(0)));
        assert!(new > 5 * add);
    }
}
