#![warn(missing_docs)]

//! # incline-vm
//!
//! The JIT host substrate: a deterministic, tiered virtual machine for
//! [`incline_ir`] programs.
//!
//! * [`Machine`]: profiling interpreter + compile broker + code cache.
//!   Methods start interpreted (collecting [`incline_profile`] data) and
//!   are compiled by the configured [`Inliner`] when hot.
//! * [`CostModel`]: simulated cycles with interpreter dispatch premiums,
//!   call overheads, and instruction-cache pressure — the terrain on which
//!   inlining decisions are evaluated (see DESIGN.md §6).
//! * [`runner`]: the paper's measurement protocol (peak performance =
//!   mean of the last 40% of repetitions, at most 20).
//!
//! ```
//! use incline_ir::{Program, FunctionBuilder, Type};
//! use incline_vm::{Machine, VmConfig, Value, NoInline};
//!
//! let mut p = Program::new();
//! let m = p.declare_function("answer", vec![], Type::Int);
//! let mut fb = FunctionBuilder::new(&p, m);
//! let k = fb.const_int(42);
//! fb.ret(Some(k));
//! let body = fb.finish();
//! p.define_method(m, body);
//!
//! let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig::default());
//! let out = vm.run(m, vec![])?;
//! assert_eq!(out.value, Some(Value::Int(42)));
//! # Ok::<(), incline_vm::ExecError>(())
//! ```

pub mod broker;
pub mod cache;
pub mod cost;
pub mod faults;
pub mod inliner;
pub mod machine;
pub mod runner;
pub mod server;
pub mod snapshot;
pub mod stats;
pub mod trials;
pub mod value;

pub use broker::{CompileQueue, CompileRequest, CompileResponse, InstallPackage, QueueStats};
pub use cache::{CacheEntry, CacheStats, EvictionPolicy};
pub use cost::{CostModel, Tier};
pub use faults::{FaultKind, FaultPlan};
pub use incline_opt::{CompileFuel, UNLIMITED_FUEL};
/// The structured tracing layer, re-exported for consumers of this crate.
pub use incline_trace as trace;
pub use incline_trace::{
    CollectingSink, CompileEvent, JsonlSink, NullSink, StderrSink, TraceSink, NULL_SINK,
};
pub use inliner::{
    CompileCx, CompileError, CompileOutcome, InlineStats, Inliner, NoInline, Speculation,
};
pub use machine::{
    BailoutCounters, BailoutRecord, CompilationReport, CompileStage, ExecError, InstallPolicy,
    Machine, RunOutcome, VmConfig, VmConfigBuilder,
};
pub use runner::{BenchError, BenchResult, BenchSpec, RunSession};
pub use server::{ServerError, ServerReport, ServerSession, ServerSpec, TenantReport, TenantSpec};
pub use snapshot::{
    DecisionRecord, FileStore, MemoryStore, MergePolicy, MergeStats, Merged, MethodRecord,
    ReplayMode, Snapshot, SnapshotError, SnapshotIo, SnapshotStats, SnapshotStore,
    SNAPSHOT_VERSION,
};
pub use stats::{fairness_index, percentile, LatencyStats};
pub use trials::{TrialCache, TrialKey, TrialOutcome};
pub use value::{Heap, HeapCell, HeapRef, Output, Value};
