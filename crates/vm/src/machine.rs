//! The tiered virtual machine: profiling interpreter, compile broker and
//! code cache.
//!
//! Execution starts in the interpreting tier, which records profiles
//! ([`ProfileTable`]) and pays a per-instruction dispatch premium. When a
//! method's hotness counters cross the threshold, the broker invokes the
//! configured [`Inliner`] and installs the returned graph in the code
//! cache; subsequent activations run in the compiled tier. Compilation
//! latency and instruction-cache pressure are charged per the
//! [`CostModel`], so both under- and over-inlining are measurably bad —
//! the terrain the paper's algorithm navigates.
//!
//! # Fault containment
//!
//! Compilation is treated as untrusted: a compiler failure must never take
//! the VM down or corrupt executing code. The broker runs a three-rung
//! **bailout ladder** per compilation request:
//!
//! 1. **Full tier** — the configured inliner, fenced by `catch_unwind`
//!    (panics become [`CompileError::Panicked`]) and metered by the
//!    [`VmConfig::compile_fuel`] budget. Every produced graph — in every
//!    build profile — passes `verify_graph` before installation; a
//!    rejected graph is never installed ([`CompileError::Rejected`]).
//! 2. **Degraded tier** — an inline-free compile of the root graph
//!    through the optimization pipeline, independent of the (possibly
//!    faulty) inliner.
//! 3. **Blacklist** — the method is pinned to the interpreter permanently;
//!    the broker never re-attempts it.
//!
//! Every rung failure is recorded in [`BailoutCounters`] and the
//! per-method [`BailoutRecord`] log, and the deterministic fault-injection
//! harness in [`crate::faults`] exercises all three rungs.
//!
//! # Background compilation
//!
//! The ladder itself lives in [`crate::broker`] as a pure function over a
//! [`CompileRequest`]: the machine *enqueues* requests (snapshotting fuel,
//! fault and speculation per request) and *drains* the queue through a pool
//! of [`VmConfig::compile_threads`] scoped worker threads — or inline when
//! the pool size is 0. [`InstallPolicy`] picks the drain points: `Barrier`
//! drains at the hotness trigger (observably identical to the synchronous
//! broker, cycle for cycle and event for event), `Safepoint` lets the
//! mutator keep interpreting and installs at activation boundaries, with
//! the compile latency hidden by a virtual-time worker model — only the
//! queue wait that outlives the mutator's progress is charged as
//! [`RunOutcome::stall_cycles`].

use std::collections::{BTreeSet, HashMap, HashSet};
use std::sync::Arc;

use incline_ir::eval::{self, TrapKind};
use incline_ir::graph::{CallTarget, DeoptReason, Op, Terminator};
use incline_ir::loops::LoopForest;
use incline_ir::{BlockId, CmpOp, Graph, MethodId, Program, ValueId};
use incline_profile::{MethodProfile, ProfileTable};
use incline_trace::{BailoutStage, CodeTier, CompileEvent, NullSink, TraceSink};

use crate::broker::{
    self, CompileQueue, CompileRequest, CompileResponse, InstallPackage, QueueStats,
};
use crate::cache::{self, CacheEntry, CacheStats, EvictionPolicy};
use crate::cost::{CostModel, Tier};
use crate::faults::{FaultKind, FaultPlan};
use crate::inliner::{CompileError, InlineStats, Inliner, Speculation};
use crate::snapshot::{
    self, DecisionRecord, MergePolicy, ReplayMode, Snapshot, SnapshotError, SnapshotStats,
};
use crate::value::{Heap, HeapCell, HeapRef, Output, Value};

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cost model constants.
    pub cost: CostModel,
    /// Hotness threshold: a method compiles once
    /// `invocations + backedges/4` reaches this value.
    pub hotness_threshold: u64,
    /// Whether the JIT is enabled (false = pure interpreter).
    pub jit: bool,
    /// Maximum interpreter steps per `run` (runaway protection).
    pub fuel_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
    /// Compile-work budget per compilation attempt, in IR-node units
    /// (`u64::MAX` = unmetered). An attempt that exhausts the budget bails
    /// out to the next rung of the ladder instead of running away.
    pub compile_fuel: u64,
    /// Whether deoptimization is enabled: typeswitches with enough profile
    /// coverage compile their fallback to an uncommon trap, and the broker
    /// runs the invalidate → reprofile → recompile machinery (including
    /// the drift monitor). Off by default so speculation stays
    /// always-correct; the CLI enables it unless `--no-deopt`.
    pub deopt: bool,
    /// Minimum typeswitch profile coverage (summed receiver probabilities)
    /// before the fallback becomes a `deopt` instead of a virtual call.
    pub deopt_confidence: f64,
    /// Drift monitor: a compiled method is invalidated once it executes
    /// more than `drift_rate` fallback virtual dispatches per compiled
    /// invocation — the speculated cases no longer cover the hot receivers.
    pub drift_rate: f64,
    /// Drift monitor: minimum compiled invocations before the dispatch
    /// rate is evaluated (avoids invalidating on startup noise).
    pub drift_min_samples: u64,
    /// Storm throttle: recompilations granted after invalidation before
    /// the method is pinned to fallback-only (never `deopt`) code.
    pub max_recompiles: u32,
    /// Size of the background compile-worker pool. `0` compiles inline on
    /// the mutator thread (today's synchronous broker); `N >= 1` runs each
    /// queue drain on up to `N` scoped worker threads. In
    /// [`InstallPolicy::Barrier`] mode any value produces byte-identical
    /// observable behavior — the differential matrix tests assert it.
    /// Defaults to the `INCLINE_COMPILE_THREADS` environment variable
    /// (read once), or `0`.
    pub compile_threads: usize,
    /// Where compile-queue drains happen; see [`InstallPolicy`].
    pub install_policy: InstallPolicy,
    /// Code-cache budget in modeled machine-code bytes. `0` = unbounded —
    /// every pre-existing behavior is preserved bit for bit. A finite
    /// budget is enforced at install time: `installed_bytes` never exceeds
    /// it at any observable point; installs that don't fit evict victims
    /// under [`VmConfig::eviction_policy`], clear admission control, or
    /// are gracefully deferred (never a panic, never an overshoot).
    pub code_cache_budget: u64,
    /// Victim-selection policy under a finite budget; see
    /// [`EvictionPolicy`]. Ignored when the budget is 0.
    pub eviction_policy: EvictionPolicy,
    /// Aging window in compiled-entry ticks: a resident idle this long has
    /// its eviction score floored, making it the preferred victim under
    /// every policy. `0` disables aging. Only evaluated under a finite
    /// budget.
    pub cache_age_window: u64,
    /// How a loaded warmup snapshot is applied before the first run; see
    /// [`ReplayMode`]. Irrelevant unless a snapshot is actually loaded.
    pub replay: ReplayMode,
    /// Quarantine ladder probation window, in compiled activations: a
    /// decision replayed from a snapshot that deoptimizes within its first
    /// `poison_window` activations is attributed as *poisoned* — its code
    /// is dropped evict-style (no recompile-budget burn, no pinning), its
    /// seeded profile contribution is rolled back, and the decision is
    /// excluded from the next snapshot. `0` disables the ladder.
    pub poison_window: u64,
    /// Whether deep-inlining-trial results are memoized across rounds and
    /// compilations (see [`crate::trials::TrialCache`]). Trials are pure
    /// functions of (callee graph, argument specialization), so caching
    /// never changes an observable — the differential tests assert
    /// byte-identical results with the cache on and off. On by default;
    /// the CLI disables it with `--no-trial-cache`.
    pub trial_cache: bool,
}

/// When the compile queue drains and installed code becomes visible.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InstallPolicy {
    /// **Deterministic mode**: the virtual-time barrier sits at the hotness
    /// trigger — the request is enqueued and the queue drained before the
    /// triggering invocation proceeds, so the mutator observes exactly the
    /// synchronous broker's behavior (cycles, trace stream, tier-up point)
    /// regardless of [`VmConfig::compile_threads`].
    #[default]
    Barrier,
    /// **Pipelined mode**: the triggering invocation keeps interpreting;
    /// in-flight compilations install at the next safepoint (an activation
    /// boundary of the method, or the start of the next `run`), and tier-up
    /// happens on the following invocation. Semantics are still exactly
    /// preserved — only the timeline differs: compile latency overlaps
    /// mutator progress, so [`RunOutcome::stall_cycles`] shrinks.
    Safepoint,
}

fn env_compile_threads() -> usize {
    static CACHE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("INCLINE_COMPILE_THREADS")
            .ok()
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or(0)
    })
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            cost: CostModel::default(),
            hotness_threshold: 40,
            jit: true,
            fuel_steps: 500_000_000,
            // Each guest frame costs a host frame; stay well inside the
            // 2 MiB default stack of Rust test threads.
            max_depth: 400,
            compile_fuel: u64::MAX,
            deopt: false,
            deopt_confidence: 0.95,
            drift_rate: 2.0,
            drift_min_samples: 8,
            max_recompiles: 3,
            compile_threads: env_compile_threads(),
            install_policy: InstallPolicy::Barrier,
            code_cache_budget: 0,
            eviction_policy: EvictionPolicy::default(),
            cache_age_window: 1024,
            replay: ReplayMode::default(),
            poison_window: 8,
            trial_cache: true,
        }
    }
}

impl VmConfig {
    /// Starts a fluent builder seeded with [`VmConfig::default`] — the
    /// call-site-friendly alternative to enumerating struct fields:
    ///
    /// ```
    /// use incline_vm::VmConfig;
    /// let config = VmConfig::builder()
    ///     .hotness_threshold(5)
    ///     .code_cache_budget(8 * 1024)
    ///     .deopt(true)
    ///     .build();
    /// assert_eq!(config.hotness_threshold, 5);
    /// ```
    pub fn builder() -> VmConfigBuilder {
        VmConfigBuilder {
            config: VmConfig::default(),
        }
    }
}

/// Fluent builder for [`VmConfig`], obtained via [`VmConfig::builder`].
/// One setter per field, plus the [`VmConfigBuilder::pipelined`]
/// convenience for the common Safepoint switch.
#[derive(Clone, Copy, Debug)]
pub struct VmConfigBuilder {
    config: VmConfig,
}

impl VmConfigBuilder {
    /// Sets the cost model constants.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.config.cost = cost;
        self
    }

    /// Sets the hotness threshold (see [`VmConfig::hotness_threshold`]).
    pub fn hotness_threshold(mut self, threshold: u64) -> Self {
        self.config.hotness_threshold = threshold;
        self
    }

    /// Enables or disables the JIT (false = pure interpreter).
    pub fn jit(mut self, jit: bool) -> Self {
        self.config.jit = jit;
        self
    }

    /// Sets the interpreter step budget per `run`.
    pub fn fuel_steps(mut self, fuel_steps: u64) -> Self {
        self.config.fuel_steps = fuel_steps;
        self
    }

    /// Sets the maximum call depth.
    pub fn max_depth(mut self, max_depth: usize) -> Self {
        self.config.max_depth = max_depth;
        self
    }

    /// Sets the compile-work budget per compilation attempt.
    pub fn compile_fuel(mut self, compile_fuel: u64) -> Self {
        self.config.compile_fuel = compile_fuel;
        self
    }

    /// Enables or disables deoptimization (see [`VmConfig::deopt`]).
    pub fn deopt(mut self, deopt: bool) -> Self {
        self.config.deopt = deopt;
        self
    }

    /// Sets the minimum typeswitch coverage before speculation.
    pub fn deopt_confidence(mut self, confidence: f64) -> Self {
        self.config.deopt_confidence = confidence;
        self
    }

    /// Sets the drift monitor's dispatch-rate trip point.
    pub fn drift_rate(mut self, rate: f64) -> Self {
        self.config.drift_rate = rate;
        self
    }

    /// Sets the drift monitor's minimum sample count.
    pub fn drift_min_samples(mut self, samples: u64) -> Self {
        self.config.drift_min_samples = samples;
        self
    }

    /// Sets the recompilation cap before speculation pinning.
    pub fn max_recompiles(mut self, max: u32) -> Self {
        self.config.max_recompiles = max;
        self
    }

    /// Sizes the background compile-worker pool (0 = synchronous).
    pub fn compile_threads(mut self, threads: usize) -> Self {
        self.config.compile_threads = threads;
        self
    }

    /// Sets the install policy (see [`InstallPolicy`]).
    pub fn install_policy(mut self, policy: InstallPolicy) -> Self {
        self.config.install_policy = policy;
        self
    }

    /// Convenience: `true` selects [`InstallPolicy::Safepoint`] (the
    /// `--pipelined` CLI switch), `false` [`InstallPolicy::Barrier`].
    pub fn pipelined(mut self, pipelined: bool) -> Self {
        self.config.install_policy = if pipelined {
            InstallPolicy::Safepoint
        } else {
            InstallPolicy::Barrier
        };
        self
    }

    /// Sets the code-cache budget in modeled bytes (0 = unbounded).
    pub fn code_cache_budget(mut self, budget: u64) -> Self {
        self.config.code_cache_budget = budget;
        self
    }

    /// Sets the eviction policy under a finite budget.
    pub fn eviction_policy(mut self, policy: EvictionPolicy) -> Self {
        self.config.eviction_policy = policy;
        self
    }

    /// Sets the idle-aging window in compiled-entry ticks (0 = off).
    pub fn cache_age_window(mut self, window: u64) -> Self {
        self.config.cache_age_window = window;
        self
    }

    /// Sets how a loaded warmup snapshot is applied (see [`ReplayMode`]).
    pub fn replay(mut self, mode: ReplayMode) -> Self {
        self.config.replay = mode;
        self
    }

    /// Sets the quarantine probation window in compiled activations
    /// (see [`VmConfig::poison_window`]; 0 = off).
    pub fn poison_window(mut self, window: u64) -> Self {
        self.config.poison_window = window;
        self
    }

    /// Enables or disables trial-result memoization
    /// (see [`VmConfig::trial_cache`]).
    pub fn trial_cache(mut self, enabled: bool) -> Self {
        self.config.trial_cache = enabled;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> VmConfig {
        self.config
    }
}

/// Which rung of the bailout ladder a compilation attempt ran on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CompileStage {
    /// The configured inliner with the full pipeline.
    Full,
    /// Inline-free root-graph compile through the optimization pipeline.
    Degraded,
}

impl std::fmt::Display for CompileStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileStage::Full => write!(f, "full"),
            CompileStage::Degraded => write!(f, "degraded"),
        }
    }
}

impl CompileStage {
    pub(crate) fn bailout_stage(self) -> BailoutStage {
        match self {
            CompileStage::Full => BailoutStage::Full,
            CompileStage::Degraded => BailoutStage::Degraded,
        }
    }

    fn code_tier(self) -> CodeTier {
        match self {
            CompileStage::Full => CodeTier::Full,
            CompileStage::Degraded => CodeTier::Degraded,
        }
    }
}

/// One recorded bailout: a compilation attempt that failed and fell
/// through to the next rung of the ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BailoutRecord {
    /// The method whose compilation failed.
    pub method: MethodId,
    /// The rung that failed.
    pub stage: CompileStage,
    /// Why it failed.
    pub error: CompileError,
}

/// Aggregate bailout counters over the machine's lifetime.
///
/// The same run (same program, config, inliner, fault plan) always
/// produces the same counters — the fault-injection tests assert this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BailoutCounters {
    /// Failed full-tier compilation attempts.
    pub full_tier: u64,
    /// Failed degraded-tier compilation attempts.
    pub degraded_tier: u64,
    /// Methods permanently pinned to the interpreter.
    pub blacklisted: u64,
    /// Compiler panics contained by the `catch_unwind` fence.
    pub contained_panics: u64,
    /// Graphs rejected by the pre-install verifier.
    pub verifier_rejections: u64,
    /// Attempts that ran out of compile fuel.
    pub fuel_exhaustions: u64,
    /// Compiled activations that deoptimized back to the interpreter
    /// (uncommon trap, drift, or injected).
    pub deopts: u64,
    /// Installed graphs removed from the code cache by deoptimization.
    pub invalidations: u64,
    /// Recompilations performed after an invalidation.
    pub recompiles: u64,
    /// Methods pinned to fallback-only code by the storm throttle.
    pub pinned: u64,
}

impl BailoutCounters {
    /// Total failed compilation attempts across both tiers.
    pub fn total(&self) -> u64 {
        self.full_tier + self.degraded_tier
    }

    fn record(&mut self, stage: CompileStage, error: &CompileError) {
        match stage {
            CompileStage::Full => self.full_tier += 1,
            CompileStage::Degraded => self.degraded_tier += 1,
        }
        match error {
            CompileError::Panicked(_) => self.contained_panics += 1,
            CompileError::Rejected(_) => self.verifier_rejections += 1,
            CompileError::OutOfFuel { .. } => self.fuel_exhaustions += 1,
        }
    }
}

/// Consolidated compilation telemetry, the one-stop alternative to the
/// individual `Machine` getters (which remain as thin delegates).
#[derive(Clone, Debug, Default)]
pub struct CompilationReport {
    /// Compilation requests the broker handled (each runs the full ladder).
    pub compile_requests: u64,
    /// Compilations that installed code.
    pub compilations: u64,
    /// Cycles spent compiling over the machine's lifetime.
    pub total_compile_cycles: u64,
    /// Mutator-visible compilation stall cycles over the machine's
    /// lifetime (== `total_compile_cycles` unless the broker is pipelined).
    pub total_stall_cycles: u64,
    /// Machine-code bytes currently installed.
    pub installed_bytes: u64,
    /// Aggregate bailout counters.
    pub bailouts: BailoutCounters,
    /// Code-cache statistics (evictions, admissions, re-tiers, aging).
    pub cache: CacheStats,
    /// Every recorded bailout, in occurrence order.
    pub bailout_log: Vec<BailoutRecord>,
    /// Per-compilation inliner statistics, in compilation order.
    pub compile_log: Vec<(MethodId, InlineStats)>,
    /// Methods permanently pinned to the interpreter, sorted.
    pub blacklisted: Vec<MethodId>,
    /// Methods pinned to fallback-only code by the storm throttle, sorted.
    pub pinned: Vec<MethodId>,
    /// Warmup-snapshot counters (loads, graceful fallbacks, replays,
    /// writes).
    pub snapshot: SnapshotStats,
    /// Host wall-clock nanoseconds spent inside the compile ladder over
    /// the machine's lifetime. Real time (not virtual cycles): the
    /// compiler-throughput figures read it; it never feeds a
    /// deterministic observable.
    pub compile_wall_nanos: u64,
    /// Deep-inlining-trial cache hits (0 when the cache is disabled).
    /// Under worker threads concurrent misses on one key may both count,
    /// so treat these as telemetry, not exact dedup counts.
    pub trial_hits: u64,
    /// Deep-inlining-trial cache misses (0 when the cache is disabled).
    pub trial_misses: u64,
}

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A runtime trap (the program's own fault).
    Trap(TrapKind),
    /// Call depth exceeded [`VmConfig::max_depth`].
    StackOverflow,
    /// Step budget exceeded [`VmConfig::fuel_steps`].
    OutOfFuel,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Trap(t) => write!(f, "trap: {t}"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The result of one `run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Return value of the entry method.
    pub value: Option<Value>,
    /// Cycles spent executing code this run.
    pub exec_cycles: u64,
    /// Cycles of compile work performed for requests applied this run
    /// (wherever the work ran — mutator or worker pool).
    pub compile_cycles: u64,
    /// Cycles the mutator was stalled on compilation this run. With the
    /// synchronous broker (`compile_threads == 0`) or in
    /// [`InstallPolicy::Barrier`] mode this equals `compile_cycles`; in
    /// pipelined mode it is only the portion of compile latency that was
    /// not hidden behind mutator progress (see the virtual-time model in
    /// the broker docs).
    pub stall_cycles: u64,
    /// Observable output of the run.
    pub output: Output,
}

impl RunOutcome {
    /// Execution plus mutator-visible compilation stall (what an iteration
    /// "takes" on the simulated timeline).
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.stall_cycles
    }
}

struct CompiledMethod {
    graph: Arc<Graph>,
    /// Modeled code size; released back to `installed_bytes` on invalidation.
    bytes: u64,
    /// Whether the graph contains a `deopt` terminator, i.e. whether its
    /// activations must run transactionally (journaled) so the trap can
    /// rewind them.
    has_deopt: bool,
    /// Drift monitor armed: the compile speculated on receiver profiles
    /// and the graph still contains fallback virtual dispatches to count.
    drift_armed: bool,
    /// Fault injection: the next compiled entry takes an uncommon trap.
    force_deopt: bool,
    /// Fault injection: the drift monitor trips deterministically once
    /// `drift_min_samples` compiled invocations accrue.
    force_drift: bool,
    /// Compiled activations entered since install.
    invocations: u64,
    /// Fallback virtual dispatches executed inside this compiled graph.
    virtual_dispatches: u64,
    /// Use tick of the last compiled activation (install counts as a use).
    last_used: u64,
    /// Modeled residency benefit frozen at install: profiled hotness × the
    /// interpreter dispatch premium (the `b` of the paper's `b|c` tuples;
    /// `bytes` above is the `c`). Drives the cost-benefit eviction policy
    /// and the admission rule.
    benefit: u64,
    /// Idle past [`VmConfig::cache_age_window`]; cleared on the next use.
    aged: bool,
}

/// Per-method speculation bookkeeping for the storm throttle.
#[derive(Clone, Copy, Debug, Default)]
struct SpecState {
    /// Recompilations granted so far (each install after an invalidation).
    recompiles: u32,
    /// Pinned: compiled without `deopt` fallbacks, drift monitor off.
    /// Terminal — a pinned method never deoptimizes again.
    pinned: bool,
    /// Profile counters at the last invalidation. The backed-off hotness
    /// bar measures *fresh* profile data beyond this baseline, while the
    /// compile itself still sees the full merged (old + fresh) profile.
    base_invocations: u64,
    /// See `base_invocations`.
    base_backedges: u64,
}

/// Per-method code-cache bookkeeping: eviction history and the
/// admission-deferral backoff. Mirrors [`SpecState`]'s baseline scheme —
/// an evicted or deferred method re-promotes on *fresh* hotness only.
#[derive(Clone, Copy, Debug, Default)]
struct CacheState {
    /// Times this method's code has been evicted.
    evictions: u32,
    /// Consecutive admission deferrals since the last successful install;
    /// each one doubles the re-admission bar. Reset when code installs.
    deferrals: u32,
    /// Profile counters at the last eviction or deferral; the
    /// re-admission bar measures fresh hotness beyond this baseline.
    base_invocations: u64,
    /// See `base_invocations`.
    base_backedges: u64,
}

/// One undo entry in the deoptimization write journal.
enum JournalEntry {
    /// `fields[offset]` of object `r` held `old` before the write.
    Field {
        r: HeapRef,
        offset: usize,
        old: Value,
    },
    /// `data[index]` of array `r` held `old` before the write.
    Array {
        r: HeapRef,
        index: usize,
        old: Value,
    },
}

/// Observable-state watermark taken at the entry of a deopt-capable
/// compiled activation; [`Machine::rollback`] rewinds to it.
struct Savepoint {
    heap_len: usize,
    output_len: usize,
    journal_len: usize,
}

/// How a graph activation left `exec_graph`.
enum Flow {
    /// Normal return.
    Return(Option<Value>),
    /// A compiled activation hit an uncommon trap.
    Deopt(DeoptReason),
}

/// How a compiled activation left `exec_compiled`.
enum CompiledExit {
    /// Normal return.
    Returned(Option<Value>),
    /// The activation deoptimized: its effects are rolled back and its
    /// code invalidated. Carries the original arguments so the caller can
    /// replay the activation interpreted.
    Deoptimized(Vec<Value>),
}

/// The virtual machine.
pub struct Machine<'p> {
    program: &'p Program,
    inliner: Box<dyn Inliner + 'p>,
    config: VmConfig,
    profiles: ProfileTable,
    code: HashMap<MethodId, CompiledMethod>,
    back_edges: HashMap<MethodId, HashSet<(BlockId, BlockId)>>,
    installed_bytes: u64,
    compilations: u64,
    // Fault containment.
    blacklist: HashSet<MethodId>,
    bailouts: BailoutCounters,
    bailout_log: Vec<BailoutRecord>,
    fault_plan: FaultPlan,
    compile_requests: u64,
    trace: Arc<dyn TraceSink + 'p>,
    // Background compilation.
    queue: CompileQueue,
    in_flight: HashSet<MethodId>,
    /// Virtual-time broker model: the cycle at which each worker in the
    /// pool finishes its last assigned request. Indexed 0..compile_threads
    /// (one slot for the synchronous broker).
    worker_free: Vec<u64>,
    /// Virtual cycles accumulated by completed runs; the live clock is
    /// `vbase + exec_cycles + run_stall_cycles`.
    vbase: u64,
    // Deoptimization.
    spec: HashMap<MethodId, SpecState>,
    journal: Vec<JournalEntry>,
    journal_scopes: u32,
    // Bounded code cache.
    /// Monotone use tick: bumped on every compiled activation entry and at
    /// each admission decision. Drives LRU recency, decay idle times and
    /// the aging window. Not observable at `code_cache_budget == 0`.
    use_seq: u64,
    cache: CacheStats,
    cache_state: HashMap<MethodId, CacheState>,
    /// Live compiled activations per method. A method with a live compiled
    /// frame is never an eviction victim — installs at inner safepoints
    /// must not pull code out from under an executing activation.
    live_compiled: HashMap<MethodId, u32>,
    // Per-run state.
    heap: Heap,
    output: Output,
    exec_cycles: u64,
    run_compile_cycles: u64,
    run_stall_cycles: u64,
    steps: u64,
    // Lifetime totals.
    total_compile_cycles: u64,
    total_stall_cycles: u64,
    /// Host wall-clock nanoseconds spent in the compile ladder (real time,
    /// telemetry only — never feeds the deterministic cycle model).
    compile_wall_nanos: u64,
    last_compile_stats: Vec<(MethodId, crate::inliner::InlineStats)>,
    /// Shared trial memo table, or `None` when [`VmConfig::trial_cache`]
    /// is off.
    trials: Option<Arc<crate::trials::TrialCache>>,
    // Warmup snapshots.
    /// Every successful install, in installation order — the decision log
    /// a snapshot captures for eager replay.
    decision_log: Vec<DecisionRecord>,
    /// Parallel to `decision_log`: whether the install happened during
    /// snapshot replay. Replayed installs of a later-poisoned method are
    /// excluded from [`Machine::snapshot`] output.
    decision_replayed: Vec<bool>,
    snapshot_stats: SnapshotStats,
    // Quarantine ladder (see [`VmConfig::poison_window`]).
    /// Whether the machine is inside `apply_snapshot`'s eager replay loop;
    /// marks installs as replayed.
    replay_active: bool,
    /// Methods whose replayed code is still inside its probation window —
    /// a deopt here is attributed to the snapshot, not live drift.
    replay_guard: HashSet<MethodId>,
    /// Each method's profile contribution from applied snapshots, kept so
    /// a poisoned decision can roll its seeded counters back out.
    replay_seed: HashMap<MethodId, MethodProfile>,
    /// Decided methods a [`FaultKind::PoisonSnapshot`] entry targets: their
    /// replayed installs take an uncommon trap on first entry.
    replay_poison: HashSet<MethodId>,
    /// Methods whose replayed decision was quarantined as poisoned.
    poisoned_methods: BTreeSet<MethodId>,
}

impl<'p> Machine<'p> {
    /// Creates a VM over `program` driven by `inliner`.
    pub fn new(program: &'p Program, inliner: Box<dyn Inliner + 'p>, config: VmConfig) -> Self {
        Machine {
            program,
            inliner,
            config,
            profiles: ProfileTable::new(),
            code: HashMap::new(),
            back_edges: HashMap::new(),
            installed_bytes: 0,
            compilations: 0,
            blacklist: HashSet::new(),
            bailouts: BailoutCounters::default(),
            bailout_log: Vec::new(),
            fault_plan: FaultPlan::new(),
            compile_requests: 0,
            trace: Arc::new(NullSink),
            queue: CompileQueue::default(),
            in_flight: HashSet::new(),
            worker_free: vec![0; config.compile_threads.max(1)],
            vbase: 0,
            spec: HashMap::new(),
            journal: Vec::new(),
            journal_scopes: 0,
            use_seq: 0,
            cache: CacheStats::default(),
            cache_state: HashMap::new(),
            live_compiled: HashMap::new(),
            heap: Heap::new(),
            output: Output::new(),
            exec_cycles: 0,
            run_compile_cycles: 0,
            run_stall_cycles: 0,
            steps: 0,
            total_compile_cycles: 0,
            total_stall_cycles: 0,
            compile_wall_nanos: 0,
            last_compile_stats: Vec::new(),
            trials: config
                .trial_cache
                .then(|| Arc::new(crate::trials::TrialCache::default())),
            decision_log: Vec::new(),
            decision_replayed: Vec::new(),
            snapshot_stats: SnapshotStats::default(),
            replay_active: false,
            replay_guard: HashSet::new(),
            replay_seed: HashMap::new(),
            replay_poison: HashSet::new(),
            poisoned_methods: BTreeSet::new(),
        }
    }

    /// Executes `entry(args)` once. Heap and output are fresh per run;
    /// profiles and compiled code persist across runs (warmup).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on traps, stack overflow or fuel exhaustion.
    pub fn run(&mut self, entry: MethodId, args: Vec<Value>) -> Result<RunOutcome, ExecError> {
        self.heap = Heap::new();
        self.output = Output::new();
        self.exec_cycles = 0;
        self.run_compile_cycles = 0;
        self.run_stall_cycles = 0;
        self.steps = 0;
        self.journal.clear();
        self.journal_scopes = 0;
        // Run entry is a safepoint: requests still in flight from the
        // previous run (pipelined mode) install before execution starts.
        self.drain_compile_queue();
        let value = self.exec_method(entry, args, 0)?;
        self.vbase += self.exec_cycles + self.run_stall_cycles;
        Ok(RunOutcome {
            value,
            exec_cycles: self.exec_cycles,
            compile_cycles: self.run_compile_cycles,
            stall_cycles: self.run_stall_cycles,
            output: std::mem::take(&mut self.output),
        })
    }

    /// The live virtual clock: cycles accumulated by completed runs plus
    /// this run's execution and stall so far.
    fn vnow(&self) -> u64 {
        self.vbase + self.exec_cycles + self.run_stall_cycles
    }

    /// Total machine-code bytes currently installed.
    pub fn installed_bytes(&self) -> u64 {
        self.installed_bytes
    }

    /// Number of compilations performed.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Cycles spent in the compiler over the machine's lifetime.
    pub fn total_compile_cycles(&self) -> u64 {
        self.total_compile_cycles
    }

    /// Mutator-visible compilation stall cycles over the machine's
    /// lifetime. Equals [`Machine::total_compile_cycles`] for the
    /// synchronous broker and in barrier mode; lower in pipelined mode.
    pub fn total_stall_cycles(&self) -> u64 {
        self.total_stall_cycles
    }

    /// Lifetime compile-queue counters (requests enqueued / completed /
    /// installed). `enqueued == completed` whenever the queue is drained —
    /// no request is ever lost.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Number of compile requests currently waiting in the queue.
    pub fn pending_compiles(&self) -> usize {
        self.queue.len()
    }

    /// The profile table (for inspection or seeding).
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// Mutable profile access (benchmarks pre-seed profiles).
    pub fn profiles_mut(&mut self) -> &mut ProfileTable {
        &mut self.profiles
    }

    /// Which methods are currently compiled.
    pub fn compiled_methods(&self) -> Vec<MethodId> {
        let mut v: Vec<MethodId> = self.code.keys().copied().collect();
        v.sort();
        v
    }

    /// The installed graph of a compiled method, if any.
    pub fn compiled_graph(&self, m: MethodId) -> Option<&Graph> {
        self.code.get(&m).map(|cm| &*cm.graph)
    }

    /// Per-compilation inliner statistics, in compilation order.
    pub fn compile_log(&self) -> &[(MethodId, crate::inliner::InlineStats)] {
        &self.last_compile_stats
    }

    /// Aggregate bailout counters (deterministic for a given run setup).
    pub fn bailouts(&self) -> BailoutCounters {
        self.bailouts
    }

    /// Lifetime code-cache statistics: evictions, admission rejections,
    /// re-tiers, aging events and the installed-bytes high-water mark.
    /// Deterministic for a given run setup, like [`Machine::bailouts`].
    pub fn cache_stats(&self) -> CacheStats {
        self.cache
    }

    /// Every recorded bailout, in occurrence order.
    pub fn bailout_log(&self) -> &[BailoutRecord] {
        &self.bailout_log
    }

    /// Methods permanently pinned to the interpreter, sorted.
    pub fn blacklisted_methods(&self) -> Vec<MethodId> {
        let mut v: Vec<MethodId> = self.blacklist.iter().copied().collect();
        v.sort();
        v
    }

    /// Methods pinned to fallback-only code by the storm throttle, sorted.
    pub fn pinned_methods(&self) -> Vec<MethodId> {
        let mut v: Vec<MethodId> = self
            .spec
            .iter()
            .filter(|(_, s)| s.pinned)
            .map(|(&m, _)| m)
            .collect();
        v.sort();
        v
    }

    /// Number of compilation requests the broker has handled (each request
    /// runs the whole ladder; blacklisted methods generate no requests).
    pub fn compile_requests(&self) -> u64 {
        self.compile_requests
    }

    /// Consolidated compilation telemetry: everything the individual
    /// getters expose, in one snapshot.
    pub fn report(&self) -> CompilationReport {
        CompilationReport {
            compile_requests: self.compile_requests,
            compilations: self.compilations,
            total_compile_cycles: self.total_compile_cycles,
            total_stall_cycles: self.total_stall_cycles,
            installed_bytes: self.installed_bytes,
            bailouts: self.bailouts,
            cache: self.cache,
            bailout_log: self.bailout_log.clone(),
            compile_log: self.last_compile_stats.clone(),
            blacklisted: self.blacklisted_methods(),
            pinned: self.pinned_methods(),
            snapshot: self.snapshot_stats,
            compile_wall_nanos: self.compile_wall_nanos,
            trial_hits: self.trials.as_ref().map_or(0, |t| t.hits()),
            trial_misses: self.trials.as_ref().map_or(0, |t| t.misses()),
        }
    }

    /// Installs a fault-injection plan (see [`crate::faults`]). Faults are
    /// indexed by compilation request: the Nth request the broker handles.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = plan;
    }

    /// Routes all subsequent compilations' [`CompileEvent`] streams — the
    /// broker's own tier/bailout/installation events and everything the
    /// inliner and opt pipeline emit — into `sink`.
    pub fn set_trace_sink(&mut self, sink: Arc<dyn TraceSink + 'p>) {
        self.trace = sink;
    }

    // ---- warmup snapshots --------------------------------------------------

    /// Lifetime snapshot counters (loads, graceful fallbacks, replayed
    /// compiles, writes). Deterministic for a given run setup.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        self.snapshot_stats
    }

    /// Every successful install in installation order — the decision log a
    /// warmup snapshot captures.
    pub fn decision_log(&self) -> &[DecisionRecord] {
        &self.decision_log
    }

    /// Methods whose replayed snapshot decision was quarantined as
    /// poisoned (sorted). See [`VmConfig::poison_window`].
    pub fn poisoned_methods(&self) -> Vec<MethodId> {
        self.poisoned_methods.iter().copied().collect()
    }

    /// Captures the machine's learned state — the full profile table plus
    /// the compile decision log — as a [`Snapshot`] fingerprinted against
    /// the running program. Byte-deterministic: two machines that observed
    /// the same run produce identical [`Snapshot::to_bytes`] output
    /// regardless of [`VmConfig::compile_threads`].
    ///
    /// Decisions that were replayed from a snapshot and later quarantined
    /// as poisoned are excluded — a bad snapshot does not propagate its
    /// poison to the next generation. A decision the method *re-earned*
    /// from live traffic after quarantine is included normally.
    pub fn snapshot(&self) -> Snapshot {
        let decisions: Vec<DecisionRecord> = self
            .decision_log
            .iter()
            .enumerate()
            .filter(|(i, d)| {
                !(self.decision_replayed.get(*i).copied().unwrap_or(false)
                    && self.poisoned_methods.contains(&d.method))
            })
            .map(|(_, d)| d.clone())
            .collect();
        Snapshot::capture(
            snapshot::fingerprint(self.program),
            &self.profiles,
            &decisions,
        )
    }

    /// Strictly loads a serialized snapshot: parse, checksum, fingerprint
    /// check, then [`Machine::apply_snapshot`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]; the machine state is untouched on error.
    pub fn load_snapshot(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        let snap = Snapshot::from_bytes(bytes)?;
        self.apply_snapshot(&snap)
    }

    /// Gracefully loads a serialized snapshot: on any error the machine
    /// counts a fallback, emits [`CompileEvent::SnapshotFallback`] and
    /// proceeds as a cold start — never a panic. Returns whether the
    /// snapshot was applied.
    pub fn load_snapshot_or_cold(&mut self, bytes: &[u8]) -> bool {
        match self.load_snapshot(bytes) {
            Ok(()) => true,
            Err(e) => {
                self.note_snapshot_fallback(&e.to_string());
                false
            }
        }
    }

    /// Gracefully merges N parsed replica snapshots and applies the result:
    /// replicas with a foreign program fingerprint are dropped (each counts
    /// a fallback), the survivors go through [`Snapshot::merge`] with the
    /// machine's own `hotness_threshold` as the support bar, and the merged
    /// snapshot is applied like any other load. Emits
    /// [`CompileEvent::SnapshotMerged`] plus one
    /// [`CompileEvent::DecisionAgedOut`] per decision the support check
    /// dropped. On any failure (zero usable replicas) the machine counts a
    /// fallback and proceeds cold — never a panic. Returns whether a merged
    /// snapshot was applied.
    pub fn load_merged_or_cold(&mut self, replicas: &[Snapshot]) -> bool {
        let expected = snapshot::fingerprint(self.program);
        let mut usable: Vec<Snapshot> = Vec::new();
        for r in replicas {
            if r.fingerprint == expected {
                usable.push(r.clone());
            } else {
                self.note_snapshot_fallback(&format!(
                    "stale replica: program fingerprint {:016x} expected {:016x}",
                    r.fingerprint, expected
                ));
            }
        }
        if usable.is_empty() {
            if replicas.is_empty() {
                self.note_snapshot_fallback("merge of zero replicas");
            }
            return false;
        }
        let policy = MergePolicy::with_support(self.config.hotness_threshold.max(1));
        let merged = match Snapshot::merge(&usable, &policy) {
            Ok(m) => m,
            Err(e) => {
                self.note_snapshot_fallback(&e.to_string());
                return false;
            }
        };
        let stats = merged.stats;
        self.emit(|| CompileEvent::SnapshotMerged {
            replicas: stats.replicas,
            methods: stats.methods,
            decisions: stats.decisions,
            conflicts: stats.conflicts,
            aged_out: stats.aged_out,
        });
        let required = merged.min_support;
        for (rec, hotness) in &merged.aged_out {
            let (method, hotness) = (rec.method, *hotness);
            self.emit(|| CompileEvent::DecisionAgedOut {
                method,
                hotness,
                required,
            });
        }
        self.snapshot_stats.merged += stats.replicas;
        self.snapshot_stats.aged_out += stats.aged_out;
        match self.apply_snapshot(&merged.snapshot) {
            Ok(()) => true,
            Err(e) => {
                self.note_snapshot_fallback(&e.to_string());
                false
            }
        }
    }

    /// Applies a parsed snapshot before the first run: verifies the program
    /// fingerprint, merges the snapshot's profiles into the live table, and
    /// — under [`ReplayMode::Eager`] — compiles the decision log's method
    /// set up front through the normal broker/ladder/cache-admission path
    /// (budgets, verification, admission control and fault injection all
    /// still apply). The replay's compile latency is folded into the
    /// virtual clock as pre-run warmup, so measured iterations start
    /// steady.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::StaleProgram`] when the fingerprint does not match
    /// the running program; profiles are untouched in that case.
    pub fn apply_snapshot(&mut self, snap: &Snapshot) -> Result<(), SnapshotError> {
        let expected = snapshot::fingerprint(self.program);
        if snap.fingerprint != expected {
            return Err(SnapshotError::StaleProgram {
                expected,
                found: snap.fingerprint,
            });
        }
        let table = snap.profile_table();
        self.snapshot_stats.seeded_methods += table.len() as u64;
        // Remember each method's seeded contribution so the quarantine
        // ladder can roll it back if the decision turns out poisoned.
        if self.config.poison_window > 0 {
            for (m, mp) in table.iter() {
                self.replay_seed.entry(m).or_default().add(mp);
            }
        }
        self.profiles.merge(&table);
        self.snapshot_stats.loaded += 1;
        let (methods, decisions, mode) = (
            snap.methods.len() as u64,
            snap.decisions.len() as u64,
            self.config.replay,
        );
        self.emit(|| CompileEvent::SnapshotLoaded {
            methods,
            decisions,
            mode: mode.label().to_string(),
        });
        if mode == ReplayMode::Eager {
            // Injected snapshot poison: `decision_idx` indexes the decided-
            // method order about to be replayed; the targeted installs take
            // an uncommon trap on first entry.
            let decided = snap.decided_methods();
            let poisoned_idx = self.fault_plan.poisoned_decisions();
            for &idx in &poisoned_idx {
                if let Some(&m) = decided.get(idx as usize) {
                    self.replay_poison.insert(m);
                }
            }
            // One request per decided method, enqueued and drained
            // sequentially — exactly the Barrier-mode hotness trigger, so
            // stall accounting is identical across worker-pool sizes.
            self.replay_active = true;
            for m in decided {
                if self.code.contains_key(&m) || self.blacklist.contains(&m) {
                    continue;
                }
                if self.compile(m) {
                    self.snapshot_stats.replayed_compiles += 1;
                }
            }
            self.replay_active = false;
            // The replay is pre-run warmup: fold its stall into the virtual
            // clock base so the first measured run starts clean (and the
            // worker-pool timeline stays monotone).
            self.vbase += self.exec_cycles + self.run_stall_cycles;
            self.exec_cycles = 0;
            self.run_compile_cycles = 0;
            self.run_stall_cycles = 0;
        }
        Ok(())
    }

    /// Counts a graceful cold-start fallback (snapshot unreadable, stale or
    /// corrupt) and emits [`CompileEvent::SnapshotFallback`]. Called by the
    /// session layers for store-read failures; [`Machine::load_snapshot_or_cold`]
    /// calls it for parse/fingerprint failures.
    pub fn note_snapshot_fallback(&mut self, reason: &str) {
        self.snapshot_stats.fallbacks += 1;
        self.emit(|| CompileEvent::SnapshotFallback {
            reason: reason.to_string(),
        });
    }

    /// Counts a successful snapshot write and emits
    /// [`CompileEvent::SnapshotWritten`].
    pub fn note_snapshot_written(&mut self, methods: u64, decisions: u64, bytes: u64) {
        self.snapshot_stats.written += 1;
        self.emit(|| CompileEvent::SnapshotWritten {
            methods,
            decisions,
            bytes,
        });
    }

    /// Counts a snapshot write the store rejected (graceful, like every
    /// other snapshot failure).
    pub fn note_snapshot_write_failed(&mut self) {
        self.snapshot_stats.write_failures += 1;
    }

    /// Force-compiles a method immediately (used by experiments that want
    /// a deterministic compile point). Returns whether code was installed;
    /// `false` means the ladder exhausted and the method is blacklisted.
    /// Drains the whole queue, so any pipelined in-flight requests install
    /// here too.
    pub fn compile_now(&mut self, method: MethodId) -> bool {
        if self.code.contains_key(&method) {
            return true;
        }
        if self.blacklist.contains(&method) {
            return false;
        }
        self.compile(method)
    }

    /// Removes a method's installed code, releasing its bytes and starting
    /// a fresh profiling baseline — the deterministic external invalidation
    /// point for tests and experiments. No-op when the method has no
    /// installed code.
    pub fn invalidate_code(&mut self, method: MethodId) {
        self.invalidate(method);
    }

    /// Enqueues a compilation request for `method` without draining the
    /// queue. Returns `false` (and enqueues nothing) when the method is
    /// already compiled, blacklisted, or has a request in flight — the
    /// guards that make double-installs impossible. The request snapshots
    /// fuel, fault and speculation; in [`InstallPolicy::Safepoint`] mode it
    /// also snapshots the profile table.
    pub fn enqueue_compile(&mut self, method: MethodId) -> bool {
        if self.code.contains_key(&method)
            || self.blacklist.contains(&method)
            || self.in_flight.contains(&method)
        {
            return false;
        }
        let id = self.compile_requests;
        self.compile_requests += 1;
        let fault = self.fault_plan.fault_at(id);

        // Storm throttle: a method that deoptimized past the recompile cap
        // is pinned — this compile and every later one emit fallback-only
        // (never `deopt`) code and the drift monitor stays off. Decided at
        // enqueue (same point as the synchronous broker: request counted,
        // compilation not yet started).
        if self.config.deopt {
            let pin_now = self
                .spec
                .get(&method)
                .is_some_and(|s| !s.pinned && s.recompiles >= self.config.max_recompiles);
            if pin_now {
                self.spec.get_mut(&method).expect("just probed").pinned = true;
                self.bailouts.pinned += 1;
                self.emit(|| CompileEvent::SpeculationPinned { method });
            }
        }
        let profiles = match self.config.install_policy {
            // Barrier mode drains before the mutator runs another
            // instruction, so the live table is already the enqueue-time
            // view — no clone needed.
            InstallPolicy::Barrier => None,
            InstallPolicy::Safepoint => Some(self.profiles.clone()),
        };
        self.queue.push(CompileRequest {
            id,
            method,
            fuel_limit: self.config.compile_fuel,
            fault,
            speculation: self.speculation_for(method),
            profiles,
            enqueued_at: self.vnow(),
        });
        self.in_flight.insert(method);
        true
    }

    /// Drains the compile queue: runs every pending request through the
    /// worker pool (or inline for a pool size of 0) and applies the
    /// responses in request-id order — counters, wasted-work charges,
    /// trace-buffer replay, then install or blacklist.
    pub fn drain_compile_queue(&mut self) {
        if self.queue.is_empty() {
            return;
        }
        let requests = self.queue.take_all();
        let responses = broker::process(
            self.program,
            &*self.inliner,
            &self.profiles,
            requests,
            self.config.compile_threads,
            self.trace.enabled(),
            self.trials.as_deref(),
        );
        for resp in responses {
            self.compile_wall_nanos += resp.wall_nanos;
            self.charge_response(&resp);
            self.apply_response(resp);
        }
    }

    // ---- internals ---------------------------------------------------------

    fn hot(&self, method: MethodId) -> bool {
        let inv = self.profiles.invocations(method);
        let be = self.profiles.backedges(method);
        let hotness = inv + be / 4;
        let spec_ok = match self.spec.get(&method) {
            // A previously invalidated method re-promotes on *fresh* profile
            // data only, against an exponentially backed-off bar — a method
            // that keeps deoptimizing has to prove itself harder each time
            // (storm throttling), while the compile still sees the merged
            // profile.
            Some(s) => {
                let base = s.base_invocations + s.base_backedges / 4;
                hotness.saturating_sub(base) >= self.recompile_bar(s.recompiles)
            }
            None => hotness >= self.config.hotness_threshold,
        };
        if !spec_ok {
            return false;
        }
        // The code-cache gate, populated only by evictions and admission
        // deferrals (so it never fires at budget 0): an evicted method
        // re-tiers through the normal hotness path — fresh hotness above
        // the eviction-time baseline at the plain threshold — while each
        // admission deferral doubles the bar, throttling a method the
        // cache keeps refusing.
        match self.cache_state.get(&method) {
            Some(c) => {
                let base = c.base_invocations + c.base_backedges / 4;
                hotness.saturating_sub(base) >= self.readmission_bar(c.deferrals)
            }
            None => true,
        }
    }

    /// The backed-off hotness bar after a method's Nth admission deferral:
    /// `hotness_threshold * 2^n`, saturating — the cache-pressure analogue
    /// of [`Machine::recompile_bar`].
    fn readmission_bar(&self, deferrals: u32) -> u64 {
        self.config
            .hotness_threshold
            .saturating_mul(1u64 << deferrals.min(20))
    }

    /// The backed-off hotness bar for a method's Nth recompilation:
    /// `hotness_threshold * 2^n`, saturating.
    fn recompile_bar(&self, recompiles: u32) -> u64 {
        self.config
            .hotness_threshold
            .saturating_mul(1u64 << recompiles.min(20))
    }

    /// Emits a broker-level trace event, building it only if the sink is
    /// enabled.
    fn emit(&self, event: impl FnOnce() -> CompileEvent) {
        if self.trace.enabled() {
            self.trace.emit(event());
        }
    }

    /// One compilation request, enqueued and drained to completion — the
    /// synchronous entry point the `Barrier` install policy uses at the
    /// hotness trigger. Returns whether code was installed; on `false` the
    /// method is blacklisted and will never be attempted again.
    fn compile(&mut self, method: MethodId) -> bool {
        if !self.enqueue_compile(method) {
            return self.code.contains_key(&method);
        }
        self.drain_compile_queue();
        self.code.contains_key(&method)
    }

    /// The speculation policy handed to a compilation of `method`.
    fn speculation_for(&self, method: MethodId) -> Speculation {
        let pinned = self.spec.get(&method).is_some_and(|s| s.pinned);
        Speculation {
            allow_deopt: self.config.deopt && !pinned,
            confidence: self.config.deopt_confidence,
        }
    }

    /// The simulated compile cycles one response cost: wasted work from
    /// failed rungs plus (on success) the installed graph's compile cost.
    /// `compile_cost` is linear in work nodes, so charging the aggregate
    /// here equals the synchronous broker's incremental charges exactly.
    fn response_cycles(&self, resp: &CompileResponse) -> u64 {
        let mut cycles = self.config.cost.compile_cost(resp.wasted_work as usize);
        if let Some(pkg) = &resp.package {
            cycles += self.config.cost.compile_cost(pkg.work_nodes);
        }
        cycles
    }

    /// Charges a response's compile cycles to the accounting counters and
    /// computes the mutator-visible stall it caused. With a worker pool the
    /// compile ran in the background from `enqueued_at` on the earliest-free
    /// worker, so the mutator only stalls for the portion not yet finished
    /// at the install safepoint; with zero threads the mutator did the work
    /// itself and stalls for all of it. In `Barrier` mode every drain holds
    /// exactly one request whose enqueue time is "now", so both formulas
    /// yield `stall == cycles` and the policies stay cycle-identical.
    fn charge_response(&mut self, resp: &CompileResponse) {
        let cycles = self.response_cycles(resp);
        self.run_compile_cycles += cycles;
        self.total_compile_cycles += cycles;
        let stall = if self.config.compile_threads == 0 {
            cycles
        } else {
            let (w, free_at) = self
                .worker_free
                .iter()
                .copied()
                .enumerate()
                .min_by_key(|&(_, free)| free)
                .expect("worker_free is never empty");
            let start = resp.enqueued_at.max(free_at);
            let finish = start + cycles;
            self.worker_free[w] = finish;
            finish.saturating_sub(self.vnow())
        };
        self.run_stall_cycles += stall;
        self.total_stall_cycles += stall;
    }

    /// Applies one compile response on the mutator: replays the worker's
    /// buffered trace events in order, records failed-rung bailouts, then
    /// installs the surviving package or blacklists the method.
    fn apply_response(&mut self, resp: CompileResponse) {
        self.in_flight.remove(&resp.method);
        let method = resp.method;
        if self.trace.enabled() {
            for event in resp.events {
                self.trace.emit(event);
            }
        }
        for (stage, error) in resp.failures {
            self.bailouts.record(stage, &error);
            self.bailout_log.push(BailoutRecord {
                method,
                stage,
                error,
            });
        }
        match resp.package {
            Some(pkg) => {
                // Admission control can still refuse the package, so the
                // queue's install counter reflects the actual outcome.
                let installed = self.install_package(method, pkg, resp.fault);
                self.queue.note_completed(installed);
            }
            None => {
                self.queue.note_completed(false);
                self.blacklist.insert(method);
                self.bailouts.blacklisted += 1;
                self.emit(|| CompileEvent::TierTransition {
                    method,
                    tier: CodeTier::Interpreter,
                });
            }
        }
    }

    /// Installs a verified package into the code cache: budget admission,
    /// cache accounting, speculation bookkeeping, and the tier-transition /
    /// install events. The graph was already verified on the worker —
    /// verification is part of the ladder, so a rejected graph never
    /// reaches this point. Returns whether code was actually installed;
    /// `false` means admission control deferred the compile (the method is
    /// *not* blacklisted — it can re-heat through the backed-off bar).
    ///
    /// This is also where Safepoint-mode installs re-check admission: the
    /// cache state is read here, at the install point on the mutator in
    /// request-id order, never at enqueue — so in-flight compilations can
    /// never race an eviction, and the decision stream is byte-identical
    /// across worker-pool sizes.
    fn install_package(
        &mut self,
        method: MethodId,
        pkg: InstallPackage,
        fault: Option<FaultKind>,
    ) -> bool {
        debug_assert!(
            !self.code.contains_key(&method),
            "double-install of {method:?}: the in-flight guard should make this impossible"
        );
        // Defensive in release builds: any stale code is funneled through
        // `invalidate` — and thus the audited accounting helpers — so
        // every byte is released exactly once before the new package's
        // bytes are added. Replacing code in place would drift
        // `installed_bytes`.
        self.invalidate(method);
        let mut pkg = pkg;
        if self.config.code_cache_budget > 0 {
            if let Err(reason) = self.make_room(method, &pkg) {
                // A full-tier package that cannot be admitted gets one
                // shot at the inline-free degraded tier — a smaller
                // package that may still clear admission — before the
                // compile is deferred outright. This is the degradation
                // ladder's cache-pressure rung.
                let retry = if pkg.stage == CompileStage::Full {
                    self.degraded_retry(method)
                } else {
                    None
                };
                match retry {
                    Some(smaller) if self.make_room(method, &smaller).is_ok() => {
                        self.cache.degraded_admissions += 1;
                        pkg = smaller;
                    }
                    _ => {
                        let bytes = self.config.cost.code_bytes(pkg.graph.size());
                        return self.defer_install(method, bytes, reason);
                    }
                }
            }
        }
        let InstallPackage {
            stage,
            graph,
            work_nodes,
            stats,
        } = pkg;
        let graph_size = graph.size();
        let bytes = self.config.cost.code_bytes(graph_size);
        self.account_install(bytes);
        self.compilations += 1;
        self.last_compile_stats.push((method, stats));
        // Decision log for warmup snapshots: the plan hash fingerprints the
        // installed graph's printed text, so replayed runs can be checked
        // against the decisions they were seeded from. Hashed here, while
        // the graph is still unwrapped.
        self.decision_log.push(DecisionRecord {
            method,
            tier: stage,
            plan_hash: snapshot::fnv1a(
                incline_ir::print::graph_str(self.program, &graph).as_bytes(),
            ),
            speculative_sites: stats.speculative_sites,
        });
        self.decision_replayed.push(self.replay_active);
        let pinned = self.spec.get(&method).is_some_and(|s| s.pinned);
        let has_deopt = graph_has_deopt(&graph);
        let has_virtual = graph_has_virtual_call(&graph);
        // Snapshot poison (quarantine ladder): a replayed install targeted
        // by a `PoisonSnapshot` fault traps on first entry, like ForceDeopt.
        let poisoned = self.replay_active && self.replay_poison.contains(&method);
        // The injected speculation faults are ignored for pinned methods —
        // pinned code must never deoptimize, even under fault injection.
        let force_deopt =
            self.config.deopt && !pinned && (fault == Some(FaultKind::ForceDeopt) || poisoned);
        let force_drift =
            self.config.deopt && !pinned && fault == Some(FaultKind::ForceGuardFailure);
        let drift_armed = self.config.deopt
            && !pinned
            && (force_drift || (stats.speculative_sites > 0 && has_virtual));
        let hotness = self.profiles.invocations(method) + self.profiles.backedges(method) / 4;
        self.code.insert(
            method,
            CompiledMethod {
                graph: Arc::new(graph),
                bytes,
                has_deopt,
                drift_armed,
                force_deopt,
                force_drift,
                invocations: 0,
                virtual_dispatches: 0,
                last_used: self.use_seq,
                benefit: self.modeled_benefit(hotness),
                aged: false,
            },
        );
        self.emit(|| CompileEvent::TierTransition {
            method,
            tier: stage.code_tier(),
        });
        self.emit(|| CompileEvent::CodeInstalled {
            method,
            bytes,
            graph_size,
            work_nodes: work_nodes as u64,
        });
        // A successful install clears the admission backoff, and a method
        // with eviction history has observably re-tiered.
        if let Some(c) = self.cache_state.get_mut(&method) {
            c.deferrals = 0;
            if c.evictions > 0 {
                let evictions = c.evictions;
                self.cache.re_tiered += 1;
                self.emit(|| CompileEvent::ReTiered { method, evictions });
            }
        }
        // Every install after an invalidation is a recompilation against
        // the merged profile; the bar it cleared is recorded for tooling.
        if self.config.deopt && self.spec.contains_key(&method) {
            let bar = {
                let s = self.spec.get_mut(&method).expect("just probed");
                let bar = s.recompiles;
                s.recompiles += 1;
                bar
            };
            let threshold = self.recompile_bar(bar);
            let recompiles = bar + 1;
            self.bailouts.recompiles += 1;
            self.emit(|| CompileEvent::Recompiled {
                method,
                recompiles,
                threshold,
            });
        }
        // A replayed install starts its quarantine probation: a deopt
        // within the first `poison_window` activations is attributed to
        // the snapshot, not live drift.
        if self.replay_active && self.config.poison_window > 0 {
            self.replay_guard.insert(method);
        }
        // Injected cache fault: throw the fresh install straight back out,
        // as if pressure had picked it — exercises the evict → reprofile →
        // re-tier cycle deterministically, with or without a real budget.
        if fault == Some(FaultKind::ForceEvict) {
            self.evict(method, "forced", true);
        }
        true
    }

    /// Removes a method's installed code, releasing its bytes back to the
    /// cache accounting, and starts a fresh profiling baseline for the
    /// backed-off recompilation bar. No-op when the code is already gone
    /// (a nested activation of the same method may have invalidated it
    /// first — outer activations keep executing their `Arc` of the old
    /// graph safely).
    fn invalidate(&mut self, method: MethodId) {
        let Some(cm) = self.code.remove(&method) else {
            return;
        };
        // The replayed code is gone; whatever installs next was decided
        // live, so probation ends here.
        self.replay_guard.remove(&method);
        self.account_release(cm.bytes);
        self.bailouts.invalidations += 1;
        let inv = self.profiles.invocations(method);
        let be = self.profiles.backedges(method);
        let s = self.spec.entry(method).or_default();
        s.base_invocations = inv;
        s.base_backedges = be;
        let recompiles = s.recompiles;
        let bytes = cm.bytes;
        self.emit(|| CompileEvent::CodeInvalidated {
            method,
            bytes,
            recompiles,
        });
        self.emit(|| CompileEvent::TierTransition {
            method,
            tier: CodeTier::Interpreter,
        });
    }

    // ---- bounded code cache ------------------------------------------------

    /// The audited install side of the cache accounting. Every byte that
    /// enters `installed_bytes` flows through here (and leaves through
    /// [`Machine::account_release`]), so the budget invariant and the
    /// high-water mark are maintained at a single point.
    fn account_install(&mut self, bytes: u64) {
        self.installed_bytes += bytes;
        if self.installed_bytes > self.cache.high_water_bytes {
            self.cache.high_water_bytes = self.installed_bytes;
        }
        debug_assert!(
            self.config.code_cache_budget == 0
                || self.installed_bytes <= self.config.code_cache_budget,
            "code-cache budget exceeded: {} installed > {} budget",
            self.installed_bytes,
            self.config.code_cache_budget
        );
    }

    /// The audited release side of the cache accounting: invalidation and
    /// eviction both return bytes through here, so double-release (the
    /// classic accounting-drift hazard) trips immediately in debug builds
    /// instead of silently skewing the budget.
    fn account_release(&mut self, bytes: u64) {
        debug_assert!(
            self.installed_bytes >= bytes,
            "code-cache accounting drift: releasing {bytes} bytes with only {} installed",
            self.installed_bytes
        );
        self.installed_bytes = self.installed_bytes.saturating_sub(bytes);
    }

    /// Modeled benefit of keeping `method` compiled, given its profiled
    /// hotness: every profiled activation saved the interpreter dispatch
    /// premium. Deliberately *not* scaled by graph size — benefit is the
    /// `b` of the paper's `b|c` tuple and bytes are the `c`, so the
    /// cost-benefit density `b/c` stays meaningful.
    fn modeled_benefit(&self, hotness: u64) -> u64 {
        hotness.saturating_mul(self.config.cost.interp_dispatch)
    }

    /// Makes room in the budgeted cache for `pkg`, evicting victims in
    /// policy order if necessary. `Err` carries the admission-rejection
    /// reason: `no_evictable_victim` (everything resident is pinned,
    /// mid-activation, or simply smaller in total than the shortfall —
    /// which includes any package bigger than the whole budget) or
    /// `benefit_below_bar` (the candidate does not strictly beat the
    /// cheapest victim under the configured policy).
    fn make_room(&mut self, method: MethodId, pkg: &InstallPackage) -> Result<(), &'static str> {
        let budget = self.config.code_cache_budget;
        let bytes = self.config.cost.code_bytes(pkg.graph.size());
        let free = budget.saturating_sub(self.installed_bytes);
        if bytes <= free {
            return Ok(());
        }
        let need = bytes - free;
        self.age_scan();
        let entries: Vec<CacheEntry> = self
            .code
            .iter()
            .filter(|&(&m, _)| m != method && self.evictable(m))
            .map(|(&m, cm)| CacheEntry {
                method: m,
                last_used: cm.last_used,
                uses: cm.invocations,
                benefit: cm.benefit,
                bytes: cm.bytes,
                aged: cm.aged,
            })
            .collect();
        if entries.iter().map(|e| e.bytes).sum::<u64>() < need {
            return Err("no_evictable_victim");
        }
        // The install point is a use tick of its own, taken *before*
        // scoring, so an admitted candidate is strictly newer than every
        // resident — under LRU a hot re-arrival always beats the stalest
        // victim rather than tying with it.
        self.use_seq += 1;
        let now = self.use_seq;
        let hotness = self.profiles.invocations(method) + self.profiles.backedges(method) / 4;
        let candidate = CacheEntry {
            method,
            last_used: now,
            uses: hotness,
            benefit: self.modeled_benefit(hotness),
            bytes,
            aged: false,
        };
        let policy = self.config.eviction_policy;
        let order = cache::victim_order(policy, &entries, now);
        if !cache::admits(policy, &candidate, &order[0], now) {
            return Err("benefit_below_bar");
        }
        let mut freed = 0u64;
        for e in order {
            if freed >= need {
                break;
            }
            freed += e.bytes;
            self.evict(e.method, policy.label(), false);
        }
        Ok(())
    }

    /// Evicts `method`'s installed code: releases its bytes, records a
    /// fresh profiling baseline so re-admission requires genuinely new
    /// heat, and emits the eviction events. Unlike [`Machine::invalidate`]
    /// this is *not* a speculation event — `spec` state and the
    /// invalidation counters are untouched, so eviction never burns a
    /// recompile attempt.
    fn evict(&mut self, method: MethodId, policy: &'static str, forced: bool) {
        let Some(cm) = self.code.remove(&method) else {
            return;
        };
        // Evicted replayed code ends its probation like any other exit.
        self.replay_guard.remove(&method);
        self.account_release(cm.bytes);
        self.cache.evictions += 1;
        if forced {
            self.cache.forced_evictions += 1;
        }
        let inv = self.profiles.invocations(method);
        let be = self.profiles.backedges(method);
        let c = self.cache_state.entry(method).or_default();
        c.evictions += 1;
        c.base_invocations = inv;
        c.base_backedges = be;
        let bytes = cm.bytes;
        let resident_uses = cm.invocations;
        self.emit(|| CompileEvent::CodeEvicted {
            method,
            bytes,
            policy: policy.to_string(),
            resident_uses,
        });
        self.emit(|| CompileEvent::TierTransition {
            method,
            tier: CodeTier::Interpreter,
        });
    }

    /// Graceful rejection: the compile is dropped (not blacklisted), the
    /// method goes back to the interpreter, and its re-admission bar backs
    /// off exponentially — the cache-pressure analogue of the recompile
    /// storm throttle. Returns `false` for `install_package`.
    fn defer_install(&mut self, method: MethodId, bytes: u64, reason: &'static str) -> bool {
        self.cache.admission_rejections += 1;
        let inv = self.profiles.invocations(method);
        let be = self.profiles.backedges(method);
        let c = self.cache_state.entry(method).or_default();
        c.deferrals = c.deferrals.saturating_add(1);
        c.base_invocations = inv;
        c.base_backedges = be;
        self.emit(|| CompileEvent::AdmissionRejected {
            method,
            bytes,
            reason: reason.to_string(),
        });
        self.emit(|| CompileEvent::TierTransition {
            method,
            tier: CodeTier::Interpreter,
        });
        false
    }

    /// Recompiles `method` on the inline-free degraded tier at the install
    /// safepoint, for the admission retry. This is mutator work (the
    /// worker already finished its full-tier package), so its compile cost
    /// is charged entirely as stall — no worker-pool overlap.
    fn degraded_retry(&mut self, method: MethodId) -> Option<InstallPackage> {
        let trace = Arc::clone(&self.trace);
        let sink: &dyn TraceSink = if trace.enabled() { &*trace } else { &NullSink };
        let pkg = broker::degraded_package(self.program, method, self.config.compile_fuel, sink)?;
        let cycles = self.config.cost.compile_cost(pkg.work_nodes);
        self.run_compile_cycles += cycles;
        self.total_compile_cycles += cycles;
        self.run_stall_cycles += cycles;
        self.total_stall_cycles += cycles;
        Some(pkg)
    }

    /// Marks residents idle past [`VmConfig::cache_age_window`] use ticks
    /// as aged, flooring their eviction score under every policy. Runs on
    /// demand when the cache is under pressure; methods un-age on their
    /// next compiled activation.
    fn age_scan(&mut self) {
        let window = self.config.cache_age_window;
        if window == 0 {
            return;
        }
        let mut newly_aged: Vec<(MethodId, u64)> = self
            .code
            .iter()
            .filter(|(_, cm)| !cm.aged)
            .filter_map(|(&m, cm)| {
                let idle = self.use_seq.saturating_sub(cm.last_used);
                (idle >= window).then_some((m, idle))
            })
            .collect();
        newly_aged.sort();
        for (m, idle) in newly_aged {
            if let Some(cm) = self.code.get_mut(&m) {
                cm.aged = true;
            }
            self.cache.aged += 1;
            self.emit(|| CompileEvent::MethodAged { method: m, idle });
        }
    }

    /// Whether `method`'s code may be evicted right now: storm-pinned
    /// methods keep their fallback-only code (evicting it would re-open
    /// the recompile storm the pin closed), and a method with a live
    /// compiled activation on the stack is untouchable mid-flight.
    fn evictable(&self, method: MethodId) -> bool {
        !self.spec.get(&method).is_some_and(|s| s.pinned)
            && self.live_compiled.get(&method).copied().unwrap_or(0) == 0
    }

    /// Brackets a compiled activation for the eviction guard.
    fn note_compiled_entry(&mut self, method: MethodId) {
        *self.live_compiled.entry(method).or_insert(0) += 1;
    }

    fn note_compiled_exit(&mut self, method: MethodId) {
        let Some(n) = self.live_compiled.get_mut(&method) else {
            debug_assert!(false, "compiled-frame exit without a matching entry");
            return;
        };
        *n -= 1;
        if *n == 0 {
            self.live_compiled.remove(&method);
        }
    }

    /// Whether the drift monitor wants to invalidate `method` before its
    /// next compiled activation: armed speculated code whose fallback
    /// virtual-dispatch rate exceeds the configured bound.
    fn drift_tripped(&self, method: MethodId) -> bool {
        if !self.config.deopt {
            return false;
        }
        let Some(cm) = self.code.get(&method) else {
            return false;
        };
        if !cm.drift_armed || cm.invocations < self.config.drift_min_samples {
            return false;
        }
        if cm.force_drift {
            return true;
        }
        cm.virtual_dispatches as f64 > self.config.drift_rate * cm.invocations as f64
    }

    fn back_edge_set(&mut self, method: MethodId) -> HashSet<(BlockId, BlockId)> {
        if let Some(s) = self.back_edges.get(&method) {
            return s.clone();
        }
        let graph = &self.program.method(method).graph;
        let forest = LoopForest::compute(graph);
        let mut set = HashSet::new();
        for l in &forest.loops {
            for &tail in &l.back_edges {
                set.insert((tail, l.header));
            }
        }
        self.back_edges.insert(method, set.clone());
        set
    }

    fn exec_method(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth > self.config.max_depth {
            return Err(ExecError::StackOverflow);
        }
        // Activation entry is a safepoint: a method with a request in
        // flight installs (or blacklists) here, so pipelined compilation
        // tiers up on the next invocation after completion.
        if !self.in_flight.is_empty() && self.in_flight.contains(&method) {
            self.drain_compile_queue();
        }
        if self.code.contains_key(&method) {
            return match self.exec_compiled(method, args, depth)? {
                CompiledExit::Returned(v) => Ok(v),
                // The activation deoptimized: effects rolled back, code
                // invalidated. Replay it interpreted — profiling resumes
                // and, once the backed-off bar clears, the broker
                // recompiles from the merged profile.
                CompiledExit::Deoptimized(args) => self.exec_interpreted(method, args, depth),
            };
        }
        // Interpreted activation: profile and maybe promote. Blacklisted
        // methods are never re-attempted — they stay interpreted for good.
        self.profiles.record_invocation(method);
        if self.config.jit
            && !self.blacklist.contains(&method)
            && !self.in_flight.contains(&method)
            && self.hot(method)
        {
            match self.config.install_policy {
                // Barrier: compile at the trigger and run the compiled
                // code immediately — the classic synchronous behavior.
                InstallPolicy::Barrier => {
                    if self.compile(method) {
                        return match self.exec_compiled(method, args, depth)? {
                            CompiledExit::Returned(v) => Ok(v),
                            CompiledExit::Deoptimized(args) => {
                                self.exec_interpreted(method, args, depth)
                            }
                        };
                    }
                }
                // Safepoint: hand the request to the background broker and
                // keep interpreting this activation; the drain above picks
                // the result up at a later safepoint.
                InstallPolicy::Safepoint => {
                    self.enqueue_compile(method);
                }
            }
        }
        self.exec_interpreted(method, args, depth)
    }

    /// Runs one interpreted (profiling) activation of `method`.
    ///
    /// Inlined into `exec_method` so guest recursion costs the same number
    /// of host frames as before the deoptimization split (the stack-depth
    /// budget in `VmConfig::max_depth` is calibrated to that).
    #[inline(always)]
    fn exec_interpreted(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        let program = self.program;
        let graph = &program.method(method).graph;
        match self.exec_graph(method, graph, Tier::Interpreted, args, depth)? {
            Flow::Return(v) => Ok(v),
            Flow::Deopt(_) => unreachable!("the interpreted tier traps on deopt terminators"),
        }
    }

    /// Runs one compiled activation of `method`, handling the whole
    /// deoptimization protocol: the between-activation drift check, the
    /// injected entry trap, and — for graphs containing `deopt`
    /// terminators — transactional execution with rollback.
    ///
    /// Inlined for the same stack-depth reason as `exec_interpreted`.
    #[inline(always)]
    fn exec_compiled(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<CompiledExit, ExecError> {
        // Drift monitor: evaluated between activations, so tiering down
        // needs no state transfer — the next activation simply starts
        // interpreted on a fresh frame.
        if self.drift_tripped(method) {
            return Ok(self.deoptimize(method, "drift", args));
        }
        // Every compiled activation is a use tick for the eviction clock:
        // recency feeds LRU and the decay policy, and any activation
        // un-ages the method.
        self.use_seq += 1;
        let now = self.use_seq;
        let cm = self
            .code
            .get_mut(&method)
            .expect("caller checked code presence");
        cm.invocations += 1;
        cm.last_used = now;
        cm.aged = false;
        let force_deopt = cm.force_deopt;
        let deoptable = cm.has_deopt;
        let graph = Arc::clone(&cm.graph);
        if force_deopt {
            // Injected uncommon trap at entry: no effects yet, nothing to
            // roll back. One-shot by construction — the code is gone.
            return Ok(self.deoptimize(method, "injected", args));
        }
        if !deoptable {
            // The live-activation guard makes the method unevictable while
            // its compiled frame is on the stack (an install in a callee
            // could otherwise tear code out from under us mid-activation).
            self.note_compiled_entry(method);
            let flow = self.exec_graph(method, &graph, Tier::Compiled, args, depth);
            self.note_compiled_exit(method);
            return match flow? {
                Flow::Return(v) => Ok(CompiledExit::Returned(v)),
                Flow::Deopt(_) => unreachable!("graph without deopt terminators cannot deopt"),
            };
        }
        // Transactional activation: while any deopt-capable compiled frame
        // is live, every heap write (in any tier, including interpreted
        // callees) is journaled so an uncommon trap can rewind all
        // observable effects to this entry point. Deterministic execution
        // then makes the interpreted replay observably identical up to the
        // trap, so the mid-call tier transfer is exact.
        let save = Savepoint {
            heap_len: self.heap.len(),
            output_len: self.output.len(),
            journal_len: self.journal.len(),
        };
        self.journal_scopes += 1;
        self.note_compiled_entry(method);
        let flow = self.exec_graph(method, &graph, Tier::Compiled, args.clone(), depth);
        self.note_compiled_exit(method);
        self.journal_scopes -= 1;
        match flow {
            Ok(Flow::Return(v)) => {
                if self.journal_scopes == 0 {
                    // Outermost transactional frame committed: its effects
                    // are final, drop the undo log.
                    self.journal.clear();
                }
                Ok(CompiledExit::Returned(v))
            }
            Ok(Flow::Deopt(reason)) => {
                self.rollback(&save);
                Ok(self.deoptimize(method, reason.label(), args))
            }
            Err(e) => {
                if self.journal_scopes == 0 {
                    self.journal.clear();
                }
                Err(e)
            }
        }
    }

    /// Common deoptimization bookkeeping: counters, events, invalidation,
    /// and the profiled-invocation record for the interpreted replay. A
    /// deopt inside a replayed decision's probation window takes the
    /// quarantine path instead of the speculation path.
    fn deoptimize(&mut self, method: MethodId, reason: &str, args: Vec<Value>) -> CompiledExit {
        self.bailouts.deopts += 1;
        self.emit(|| CompileEvent::Deoptimized {
            method,
            reason: reason.to_string(),
        });
        if !self.try_quarantine(method) {
            self.invalidate(method);
        }
        self.profiles.record_invocation(method);
        CompiledExit::Deoptimized(args)
    }

    /// Quarantine ladder: attributes a deopt to the snapshot it was
    /// replayed from if the method's replayed code is still inside its
    /// probation window. A poisoned decision is handled evict-style — the
    /// code is dropped without creating speculation state, so the recompile
    /// budget is never burned and the method cannot be pinned by a bad
    /// snapshot — its seeded profile contribution is rolled back so the
    /// method re-earns its hotness from live traffic (a fully poisoned
    /// snapshot thereby converges to a cold start), and the decision is
    /// excluded from future [`Machine::snapshot`] output. Returns whether
    /// the quarantine fired; `false` means the ordinary
    /// invalidate → reprofile → recompile path should run.
    fn try_quarantine(&mut self, method: MethodId) -> bool {
        if !self.replay_guard.contains(&method) {
            return false;
        }
        // Any deopt settles the probation one way or the other.
        self.replay_guard.remove(&method);
        let window = self.config.poison_window;
        let Some(cm) = self.code.get(&method) else {
            return false;
        };
        if window == 0 || cm.invocations > window {
            // Survived probation: this deopt is live drift, not poison.
            return false;
        }
        let activations = cm.invocations;
        let cm = self.code.remove(&method).expect("probed just above");
        self.account_release(cm.bytes);
        if let Some(seed) = self.replay_seed.remove(&method) {
            self.profiles.subtract(method, &seed);
        }
        self.poisoned_methods.insert(method);
        self.snapshot_stats.poisoned += 1;
        self.emit(|| CompileEvent::DecisionPoisoned {
            method,
            activations,
            window,
        });
        self.emit(|| CompileEvent::TierTransition {
            method,
            tier: CodeTier::Interpreter,
        });
        true
    }

    /// Rewinds all observable effects to `save`: journaled heap writes are
    /// undone newest-first, then cells allocated by the abandoned
    /// activation are freed and its printed lines dropped.
    fn rollback(&mut self, save: &Savepoint) {
        while self.journal.len() > save.journal_len {
            match self.journal.pop().expect("length checked") {
                JournalEntry::Field { r, offset, old } => {
                    let HeapCell::Object { fields, .. } = self.heap.cell_mut(r) else {
                        unreachable!("journaled field write on a non-object cell");
                    };
                    fields[offset] = old;
                }
                JournalEntry::Array { r, index, old } => {
                    let HeapCell::Array { data, .. } = self.heap.cell_mut(r) else {
                        unreachable!("journaled array write on a non-array cell");
                    };
                    data[index] = old;
                }
            }
        }
        self.heap.truncate(save.heap_len);
        self.output.truncate(save.output_len);
    }

    fn exec_graph(
        &mut self,
        method: MethodId,
        graph: &Graph,
        tier: Tier,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Flow, ExecError> {
        let profiling = tier == Tier::Interpreted;
        let back_edges = if profiling {
            self.back_edge_set(method)
        } else {
            HashSet::new()
        };
        let mut regs: Vec<Option<Value>> = vec![None; graph.value_count()];
        let mut block = graph.entry();
        {
            let params = &graph.block(block).params;
            debug_assert_eq!(params.len(), args.len(), "arity mismatch at activation");
            for (&p, a) in params.iter().zip(args) {
                regs[p.index()] = Some(a);
            }
        }

        macro_rules! reg {
            ($v:expr) => {
                regs[$v.index()].expect("use of undefined register (verifier bug)")
            };
        }

        loop {
            if profiling {
                self.profiles.record_block(method, block);
            }
            let bd = graph.block(block);
            for &inst in &bd.insts {
                self.steps += 1;
                if self.steps > self.config.fuel_steps {
                    return Err(ExecError::OutOfFuel);
                }
                let data = graph.inst(inst);
                self.exec_cycles +=
                    self.config
                        .cost
                        .exec_cost(&data.op, tier, self.installed_bytes);
                let result: Option<Value> = match &data.op {
                    Op::Nop => None,
                    Op::ConstInt(k) => Some(Value::Int(*k)),
                    Op::ConstFloat(bits) => Some(Value::Float(f64::from_bits(*bits))),
                    Op::ConstBool(b) => Some(Value::Bool(*b)),
                    Op::ConstNull(_) => Some(Value::Null),
                    Op::Bin(op) if op.is_float() => {
                        let a = reg!(data.args[0]).as_float();
                        let b = reg!(data.args[1]).as_float();
                        Some(Value::Float(eval::eval_float_bin(*op, a, b)))
                    }
                    Op::Bin(op) => {
                        let a = reg!(data.args[0]).as_int();
                        let b = reg!(data.args[1]).as_int();
                        Some(Value::Int(
                            eval::eval_int_bin(*op, a, b).map_err(ExecError::Trap)?,
                        ))
                    }
                    Op::Cmp(op) => {
                        let a = reg!(data.args[0]);
                        let b = reg!(data.args[1]);
                        let r = match op {
                            CmpOp::RefEq => match (a, b) {
                                (Value::Null, Value::Null) => true,
                                (Value::Ref(x), Value::Ref(y)) => x == y,
                                _ => false,
                            },
                            CmpOp::FEq | CmpOp::FLt | CmpOp::FLe => {
                                eval::eval_float_cmp(*op, a.as_float(), b.as_float())
                            }
                            _ => eval::eval_int_cmp(*op, a.as_int(), b.as_int()),
                        };
                        Some(Value::Bool(r))
                    }
                    Op::Not => Some(Value::Bool(!reg!(data.args[0]).as_bool())),
                    Op::INeg => Some(Value::Int(reg!(data.args[0]).as_int().wrapping_neg())),
                    Op::FNeg => Some(Value::Float(-reg!(data.args[0]).as_float())),
                    Op::IntToFloat => Some(Value::Float(eval::int_to_float(
                        reg!(data.args[0]).as_int(),
                    ))),
                    Op::FloatToInt => Some(Value::Int(eval::float_to_int(
                        reg!(data.args[0]).as_float(),
                    ))),
                    Op::New(c) => Some(Value::Ref(self.heap.alloc_object(self.program, *c))),
                    Op::GetField(f) => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let off = self.program.field(*f).offset;
                        let HeapCell::Object { fields, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        Some(fields[off])
                    }
                    Op::SetField(f) => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let v = reg!(data.args[1]);
                        let off = self.program.field(*f).offset;
                        let HeapCell::Object { fields, .. } = self.heap.cell_mut(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let old = fields[off];
                        fields[off] = v;
                        if self.journal_scopes > 0 {
                            self.journal.push(JournalEntry::Field {
                                r,
                                offset: off,
                                old,
                            });
                        }
                        None
                    }
                    Op::NewArray(e) => {
                        let len = reg!(data.args[0]).as_int();
                        if len < 0 {
                            return Err(ExecError::Trap(TrapKind::NegativeLength));
                        }
                        Some(Value::Ref(self.heap.alloc_array(*e, len as usize)))
                    }
                    Op::ArrayGet => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let idx = reg!(data.args[1]).as_int();
                        let HeapCell::Array { data: arr, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        if idx < 0 || idx as usize >= arr.len() {
                            return Err(ExecError::Trap(TrapKind::Bounds));
                        }
                        Some(arr[idx as usize])
                    }
                    Op::ArraySet => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let idx = reg!(data.args[1]).as_int();
                        let v = reg!(data.args[2]);
                        let HeapCell::Array { data: arr, .. } = self.heap.cell_mut(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        if idx < 0 || idx as usize >= arr.len() {
                            return Err(ExecError::Trap(TrapKind::Bounds));
                        }
                        let old = arr[idx as usize];
                        arr[idx as usize] = v;
                        if self.journal_scopes > 0 {
                            self.journal.push(JournalEntry::Array {
                                r,
                                index: idx as usize,
                                old,
                            });
                        }
                        None
                    }
                    Op::ArrayLen => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let HeapCell::Array { data: arr, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        Some(Value::Int(arr.len() as i64))
                    }
                    Op::InstanceOf(c) => {
                        let r = match reg!(data.args[0]) {
                            Value::Null => false,
                            Value::Ref(r) => match self.heap.cell(r) {
                                HeapCell::Object { class, .. } => {
                                    self.program.is_subclass(*class, *c)
                                }
                                HeapCell::Array { .. } => false,
                            },
                            _ => false,
                        };
                        Some(Value::Bool(r))
                    }
                    Op::Cast(c) => {
                        let v = reg!(data.args[0]);
                        match v {
                            Value::Null => Some(Value::Null),
                            Value::Ref(r) => match self.heap.cell(r) {
                                HeapCell::Object { class, .. }
                                    if self.program.is_subclass(*class, *c) =>
                                {
                                    Some(v)
                                }
                                _ => return Err(ExecError::Trap(TrapKind::CastFailed)),
                            },
                            _ => return Err(ExecError::Trap(TrapKind::CastFailed)),
                        }
                    }
                    Op::Print => {
                        let v = reg!(data.args[0]);
                        self.output.print(self.program, &self.heap, v);
                        None
                    }
                    Op::Call(info) => {
                        let call_args: Vec<Value> = data.args.iter().map(|&a| reg!(a)).collect();
                        let (target, is_virtual) = match info.target {
                            CallTarget::Static(m) => (m, false),
                            CallTarget::Virtual(sel) => {
                                let recv = call_args[0];
                                let Value::Ref(r) = recv else {
                                    return Err(ExecError::Trap(TrapKind::NullDeref));
                                };
                                let class = self.heap.class_of(r);
                                if profiling {
                                    self.profiles.record_receiver(info.site, class);
                                } else if self.config.deopt {
                                    // Drift monitor food: fallback virtual
                                    // dispatches surviving in compiled code.
                                    // The entry may be gone if a nested
                                    // activation already invalidated it.
                                    if let Some(cm) = self.code.get_mut(&method) {
                                        cm.virtual_dispatches += 1;
                                    }
                                }
                                let m = self.program.resolve(class, sel).unwrap_or_else(|| {
                                    panic!(
                                        "no implementation of {} on {}",
                                        self.program.selector(sel),
                                        self.program.class(class).name
                                    )
                                });
                                (m, true)
                            }
                        };
                        if profiling {
                            self.profiles.record_callsite(info.site);
                        }
                        self.exec_cycles += self.config.cost.call_cost(call_args.len(), is_virtual);
                        self.exec_method(target, call_args, depth + 1)?
                    }
                };
                if let Some(res) = data.result {
                    regs[res.index()] = result;
                } else {
                    debug_assert!(
                        result.is_none() || matches!(data.op, Op::Call(_)),
                        "non-call op produced an unexpected result"
                    );
                }
            }

            // Terminator.
            let (dest, edge_args): (BlockId, Vec<ValueId>) = match &bd.term {
                Terminator::Return(v) => {
                    return Ok(Flow::Return(v.map(|v| reg!(v))));
                }
                Terminator::Deopt { reason } => {
                    if tier == Tier::Compiled {
                        // Uncommon trap: hand the activation back to
                        // `exec_compiled` for rollback and replay.
                        return Ok(Flow::Deopt(*reason));
                    }
                    // Hand-written IR executed interpreted: there is no
                    // lower tier to transfer to.
                    return Err(ExecError::Trap(TrapKind::Deopt));
                }
                Terminator::Jump(d, a) => (*d, a.clone()),
                Terminator::Branch {
                    cond,
                    then_dest,
                    else_dest,
                } => {
                    let taken = reg!(*cond).as_bool();
                    let (d, a) = if taken { then_dest } else { else_dest };
                    (*d, a.clone())
                }
                Terminator::Unterminated => {
                    unreachable!("verified graphs have no unterminated blocks")
                }
            };
            self.exec_cycles += self.config.cost.edge_cost(edge_args.len(), tier);
            if profiling && back_edges.contains(&(block, dest)) {
                self.profiles.record_backedge(method);
            }
            // Bind target params (read all values before writing: a block
            // may pass its own params permuted).
            let passed: Vec<Value> = edge_args.iter().map(|&a| reg!(a)).collect();
            let target_params: Vec<ValueId> = graph.block(dest).params.clone();
            for (&p, v) in target_params.iter().zip(passed) {
                regs[p.index()] = Some(v);
            }
            block = dest;
        }
    }
}

/// Whether any reachable block of `graph` ends in a `deopt` terminator.
fn graph_has_deopt(graph: &Graph) -> bool {
    graph
        .block_ids()
        .any(|b| matches!(graph.block(b).term, Terminator::Deopt { .. }))
}

/// Whether `graph` still contains virtual-dispatch callsites (the drift
/// monitor counts their executions in compiled code).
fn graph_has_virtual_call(graph: &Graph) -> bool {
    graph.block_ids().any(|b| {
        graph.block(b).insts.iter().any(|&i| {
            matches!(
                &graph.inst(i).op,
                Op::Call(info) if matches!(info.target, CallTarget::Virtual(_))
            )
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inliner::{CompileCx, CompileOutcome, NoInline};
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::types::RetType;
    use incline_ir::Type;

    /// sum(n) = 0 + 1 + … + (n-1)
    fn sum_program() -> (Program, MethodId) {
        let mut p = Program::new();
        let m = p.declare_function("sum", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]);
        let body = fb.add_block();
        let (done, dp) = fb.add_block_with_params(&[Type::Int]);
        fb.jump(head, vec![zero, zero]);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::ILt, hp[0], n);
        fb.branch(c, (body, vec![]), (done, vec![hp[1]]));
        fb.switch_to(body);
        let one = fb.const_int(1);
        let i2 = fb.iadd(hp[0], one);
        let a2 = fb.iadd(hp[1], hp[0]);
        fb.jump(head, vec![i2, a2]);
        fb.switch_to(done);
        fb.ret(Some(dp[0]));
        let g = fb.finish();
        p.define_method(m, g);
        (p, m)
    }

    #[test]
    fn interprets_loop_correctly() {
        let (p, m) = sum_program();
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let out = vm.run(m, vec![Value::Int(10)]).unwrap();
        assert_eq!(out.value, Some(Value::Int(45)));
        assert!(out.exec_cycles > 0);
        assert_eq!(out.compile_cycles, 0);
    }

    #[test]
    fn profiles_accumulate_across_runs() {
        let (p, m) = sum_program();
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        for _ in 0..5 {
            vm.run(m, vec![Value::Int(4)]).unwrap();
        }
        assert_eq!(vm.profiles().invocations(m), 5);
        assert_eq!(vm.profiles().backedges(m), 20);
    }

    #[test]
    fn jit_promotes_hot_method_and_speeds_it_up() {
        let (p, m) = sum_program();
        let config = VmConfig {
            hotness_threshold: 3,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        let interp_cost = vm.run(m, vec![Value::Int(100)]).unwrap().exec_cycles;
        vm.run(m, vec![Value::Int(100)]).unwrap();
        vm.run(m, vec![Value::Int(100)]).unwrap(); // compile triggers here
        assert_eq!(vm.compilations(), 1);
        assert!(vm.installed_bytes() > 0);
        let compiled_cost = vm.run(m, vec![Value::Int(100)]).unwrap().exec_cycles;
        assert!(
            compiled_cost * 2 < interp_cost,
            "compiled ({compiled_cost}) must be much faster than interpreted ({interp_cost})"
        );
    }

    #[test]
    fn output_matches_between_tiers() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let two = fb.const_int(2);
        let y = fb.imul(x, two);
        fb.print(y);
        fb.print(x);
        fb.ret(None);
        let g = fb.finish();
        p.define_method(m, g);
        let mut interp = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        let a = interp.run(m, vec![Value::Int(21)]).unwrap();
        let mut jit = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                hotness_threshold: 1,
                ..VmConfig::default()
            },
        );
        let b = jit.run(m, vec![Value::Int(21)]).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn traps_propagate() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let d = fb.binop(incline_ir::BinOp::IDiv, x, zero);
        fb.ret(Some(d));
        let g = fb.finish();
        p.define_method(m, g);
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(m, vec![Value::Int(1)]),
            Err(ExecError::Trap(TrapKind::DivByZero))
        );
    }

    #[test]
    fn stack_overflow_detected() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        fb.call_static(m, vec![]);
        fb.ret(None);
        let g = fb.finish();
        p.define_method(m, g);
        // Each guest frame costs host frames; run on a thread with an
        // explicit stack so the guest-depth guard (max_depth) fires before
        // the host stack does, independent of debug-build frame sizes.
        let handle = std::thread::Builder::new()
            .stack_size(32 * 1024 * 1024)
            .spawn(move || {
                let mut vm = Machine::new(
                    &p,
                    Box::new(NoInline),
                    VmConfig {
                        jit: false,
                        ..VmConfig::default()
                    },
                );
                vm.run(m, vec![]).map(|o| o.value)
            })
            .unwrap();
        assert_eq!(handle.join().unwrap(), Err(ExecError::StackOverflow));
    }

    #[test]
    fn virtual_dispatch_and_receiver_profiles() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let ma = p.declare_method(a, "id", vec![], Type::Int);
        let mb = p.declare_method(b, "id", vec![], Type::Int);
        for (m, k) in [(ma, 1), (mb, 2)] {
            let mut fb = FunctionBuilder::new(&p, m);
            let v = fb.const_int(k);
            fb.ret(Some(v));
            let g = fb.finish();
            p.define_method(m, g);
        }
        let f = p.declare_function("f", vec![Type::Bool], Type::Int);
        let mut fb = FunctionBuilder::new(&p, f);
        let c = fb.param(0);
        let t = fb.add_block();
        let e = fb.add_block();
        let (j, jp) = fb.add_block_with_params(&[Type::Object(a)]);
        fb.branch(c, (t, vec![]), (e, vec![]));
        fb.switch_to(t);
        let oa = fb.new_object(a);
        fb.jump(j, vec![oa]);
        fb.switch_to(e);
        let ob = fb.new_object(b);
        fb.jump(j, vec![ob]);
        fb.switch_to(j);
        let sel = fb.program().selector_by_name("id", 1).unwrap();
        let r = fb.call_virtual(sel, vec![jp[0]]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(f, g);

        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(f, vec![Value::Bool(true)]).unwrap().value,
            Some(Value::Int(1))
        );
        assert_eq!(
            vm.run(f, vec![Value::Bool(false)]).unwrap().value,
            Some(Value::Int(2))
        );
        vm.run(f, vec![Value::Bool(false)]).unwrap();
        let site = incline_ir::CallSiteId {
            method: f,
            index: 0,
        };
        let prof = vm.profiles().receiver_profile(site);
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[0].class, b);
        assert_eq!(prof[0].count, 2);
    }

    #[test]
    fn fuel_limit_enforced() {
        let (p, m) = sum_program();
        let mut config = VmConfig {
            jit: false,
            ..VmConfig::default()
        };
        config.fuel_steps = 100;
        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        assert_eq!(
            vm.run(m, vec![Value::Int(1_000_000)]),
            Err(ExecError::OutOfFuel)
        );
    }

    #[test]
    fn null_deref_trap_reported() {
        let mut p = Program::new();
        let c = p.add_class("Box", None);
        let f = p.add_field(c, "v", Type::Int);
        let m = p.declare_function("f", vec![Type::Object(c)], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let obj = fb.param(0);
        let v = fb.get_field(f, obj);
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(m, g);
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(m, vec![Value::Null]),
            Err(ExecError::Trap(TrapKind::NullDeref))
        );
    }

    #[test]
    fn array_bounds_trap_reported() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let idx = fb.param(0);
        let two = fb.const_int(2);
        let arr = fb.new_array(incline_ir::ElemType::Int, two);
        let v = fb.array_get(arr, idx);
        fb.ret(Some(v));
        let g = fb.finish();
        p.define_method(m, g);
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                jit: false,
                ..VmConfig::default()
            },
        );
        assert_eq!(
            vm.run(m, vec![Value::Int(1)]).unwrap().value,
            Some(Value::Int(0))
        );
        assert_eq!(
            vm.run(m, vec![Value::Int(5)]),
            Err(ExecError::Trap(TrapKind::Bounds))
        );
        assert_eq!(
            vm.run(m, vec![Value::Int(-1)]),
            Err(ExecError::Trap(TrapKind::Bounds))
        );
    }

    /// An inliner that always unwinds — a stand-in for a compiler bug.
    struct PanickingInliner;
    impl Inliner for PanickingInliner {
        fn name(&self) -> &str {
            "panicking"
        }
        fn compile(
            &self,
            _method: MethodId,
            _cx: &CompileCx<'_>,
        ) -> Result<CompileOutcome, CompileError> {
            panic!("synthetic inliner bug");
        }
    }

    #[test]
    fn inliner_panic_is_contained_and_ladder_degrades() {
        let (p, m) = sum_program();
        let config = VmConfig {
            hotness_threshold: 2,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&p, Box::new(PanickingInliner), config);
        for _ in 0..4 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(
                out.value,
                Some(Value::Int(45)),
                "output correct despite compiler bug"
            );
        }
        let b = vm.bailouts();
        assert_eq!(b.contained_panics, 1);
        assert_eq!(b.full_tier, 1);
        assert_eq!(
            b.degraded_tier, 0,
            "degraded rung bypasses the faulty inliner"
        );
        assert_eq!(b.blacklisted, 0);
        assert_eq!(vm.compilations(), 1, "degraded tier installed code");
        assert_eq!(vm.compiled_methods(), vec![m]);
        assert!(matches!(
            vm.bailout_log(),
            [BailoutRecord {
                stage: CompileStage::Full,
                error: CompileError::Panicked(_),
                ..
            }]
        ));
    }

    /// An inliner that miscompiles: the graph it returns is damaged.
    struct CorruptingInliner;
    impl Inliner for CorruptingInliner {
        fn name(&self) -> &str {
            "corrupting"
        }
        fn compile(
            &self,
            method: MethodId,
            cx: &CompileCx<'_>,
        ) -> Result<CompileOutcome, CompileError> {
            let mut graph = cx.program.method(method).graph.clone();
            crate::faults::corrupt_graph(&mut graph);
            let size = graph.size();
            Ok(CompileOutcome {
                graph,
                work_nodes: size,
                stats: InlineStats::default(),
            })
        }
    }

    #[test]
    fn miscompiled_graph_is_rejected_not_installed() {
        let (p, m) = sum_program();
        let config = VmConfig {
            hotness_threshold: 2,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&p, Box::new(CorruptingInliner), config);
        for _ in 0..4 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(out.value, Some(Value::Int(45)));
        }
        let b = vm.bailouts();
        assert_eq!(b.verifier_rejections, 1);
        assert_eq!(b.full_tier, 1);
        assert_eq!(
            vm.compilations(),
            1,
            "only the degraded graph was installed"
        );
        // The installed graph is the verified degraded one, not the corrupt one.
        let decl = p.method(m);
        incline_ir::verify::verify_graph(&p, vm.compiled_graph(m).unwrap(), &decl.params, decl.ret)
            .unwrap();
    }

    #[test]
    fn exhausted_ladder_blacklists_and_interpreter_carries_on() {
        let (p, m) = sum_program();
        // A zero compile budget fails both rungs: full tier and degraded
        // tier each report OutOfFuel, so the method is blacklisted.
        let config = VmConfig {
            hotness_threshold: 2,
            compile_fuel: 0,
            ..VmConfig::default()
        };
        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        for _ in 0..6 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(
                out.value,
                Some(Value::Int(45)),
                "interpreter keeps the program alive"
            );
        }
        let b = vm.bailouts();
        assert_eq!(b.full_tier, 1);
        assert_eq!(b.degraded_tier, 1);
        assert_eq!(b.blacklisted, 1);
        assert_eq!(b.fuel_exhaustions, 2);
        assert_eq!(vm.compilations(), 0, "nothing was ever installed");
        assert_eq!(vm.blacklisted_methods(), vec![m]);
        assert_eq!(
            vm.compile_requests(),
            1,
            "a blacklisted method must never be re-attempted"
        );
    }

    #[test]
    fn invalidation_keeps_installed_bytes_symmetric() {
        // Compile, force-deoptimize (which invalidates), recompile: the
        // code-cache accounting must return to exactly one install's worth
        // of bytes, not accumulate one per (re)install.
        let (p, m) = sum_program();
        let config = VmConfig {
            hotness_threshold: 2,
            deopt: true,
            ..VmConfig::default()
        };

        // Reference: the same program compiled once without faults.
        let mut clean = Machine::new(&p, Box::new(NoInline), config);
        for _ in 0..3 {
            clean.run(m, vec![Value::Int(10)]).unwrap();
        }
        let one_install = clean.installed_bytes();
        assert!(one_install > 0, "reference must compile");

        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        vm.set_fault_plan(FaultPlan::new().inject(0, FaultKind::ForceDeopt));
        // Run 2 reaches the hotness bar, compiles (request 0, marked), and
        // the first compiled activation deopts at entry: the cache must be
        // empty again and the run's output untouched.
        for _ in 0..2 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(out.value, Some(Value::Int(45)));
        }
        assert_eq!(vm.bailouts().deopts, 1);
        assert_eq!(vm.bailouts().invalidations, 1);
        assert_eq!(vm.installed_bytes(), 0, "invalidation must release bytes");

        // Fresh profile clears the backed-off bar (2 * 2^0) after two more
        // interpreted runs; the recompile is clean (fault was one-shot).
        for _ in 0..4 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(out.value, Some(Value::Int(45)));
        }
        assert_eq!(vm.bailouts().recompiles, 1);
        assert_eq!(
            vm.installed_bytes(),
            one_install,
            "reinstall must not double-count bytes"
        );
        assert!(vm.pinned_methods().is_empty());
    }

    #[test]
    fn deopt_faults_are_inert_when_deopt_disabled() {
        // With `deopt: false` (the default) the speculation faults must
        // change nothing: no deopts, no invalidations, code stays put.
        let (p, m) = sum_program();
        let mut vm = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig {
                hotness_threshold: 2,
                ..VmConfig::default()
            },
        );
        vm.set_fault_plan(
            FaultPlan::new()
                .inject(0, FaultKind::ForceDeopt)
                .inject(1, FaultKind::ForceGuardFailure),
        );
        for _ in 0..12 {
            let out = vm.run(m, vec![Value::Int(10)]).unwrap();
            assert_eq!(out.value, Some(Value::Int(45)));
        }
        let b = vm.bailouts();
        assert_eq!(b.deopts, 0);
        assert_eq!(b.invalidations, 0);
        assert_eq!(b.recompiles, 0);
        assert_eq!(b.pinned, 0);
        assert!(
            vm.installed_bytes() > 0,
            "the compiled code stays installed"
        );
    }

    fn machine_with_threshold(threshold: u64) -> (MethodId, Machine<'static>) {
        // Leak the program so the machine can borrow it with a 'static
        // lifetime — these tests only probe pure arithmetic helpers.
        let (p, m) = sum_program();
        let p: &'static Program = Box::leak(Box::new(p));
        let vm = Machine::new(
            p,
            Box::new(NoInline),
            VmConfig {
                hotness_threshold: threshold,
                ..VmConfig::default()
            },
        );
        (m, vm)
    }

    #[test]
    fn recompile_bar_is_threshold_times_two_to_the_n() {
        let (_, vm) = machine_with_threshold(3);
        let bars: Vec<u64> = (0..6).map(|n| vm.recompile_bar(n)).collect();
        assert_eq!(bars, vec![3, 6, 12, 24, 48, 96]);
    }

    #[test]
    fn recompile_bar_saturates_instead_of_overflowing() {
        // The exponent clamps at 20 and the multiply saturates, so even
        // absurd recompile counts and thresholds cannot wrap.
        let (_, vm) = machine_with_threshold(5);
        assert_eq!(vm.recompile_bar(20), 5 * (1 << 20));
        assert_eq!(vm.recompile_bar(63), 5 * (1 << 20), "exponent clamps at 20");
        assert_eq!(vm.recompile_bar(u32::MAX), 5 * (1 << 20));
        let (_, vm) = machine_with_threshold(u64::MAX);
        assert_eq!(vm.recompile_bar(0), u64::MAX);
        assert_eq!(vm.recompile_bar(1), u64::MAX, "multiply saturates");
        let (_, vm) = machine_with_threshold(u64::MAX / 2 + 1);
        assert_eq!(vm.recompile_bar(1), u64::MAX);
    }

    #[test]
    fn hotness_backoff_doubles_the_bar_per_recompile() {
        // A method with speculation state re-promotes against
        // `threshold * 2^recompiles` counted from its post-invalidation
        // profile baseline — the storm-throttle backoff sequence.
        let (m, mut vm) = machine_with_threshold(4);
        for (recompiles, bar) in [(0u32, 4u64), (1, 8), (2, 16), (3, 32)] {
            vm.spec.insert(
                m,
                SpecState {
                    recompiles,
                    pinned: false,
                    base_invocations: 100,
                    base_backedges: 0,
                },
            );
            vm.profiles = ProfileTable::default();
            for _ in 0..(100 + bar - 1) {
                vm.profiles.record_invocation(m);
            }
            assert!(
                !vm.hot(m),
                "one below the backed-off bar (recompiles={recompiles}) must stay cold"
            );
            vm.profiles.record_invocation(m);
            assert!(
                vm.hot(m),
                "reaching baseline + {bar} fresh invocations must re-promote"
            );
        }
    }
}
