//! The tiered virtual machine: profiling interpreter, compile broker and
//! code cache.
//!
//! Execution starts in the interpreting tier, which records profiles
//! ([`ProfileTable`]) and pays a per-instruction dispatch premium. When a
//! method's hotness counters cross the threshold, the broker invokes the
//! configured [`Inliner`] and installs the returned graph in the code
//! cache; subsequent activations run in the compiled tier. Compilation
//! latency and instruction-cache pressure are charged per the
//! [`CostModel`], so both under- and over-inlining are measurably bad —
//! the terrain the paper's algorithm navigates.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use incline_ir::eval::{self, TrapKind};
use incline_ir::graph::{CallTarget, Op, Terminator};
use incline_ir::loops::LoopForest;
use incline_ir::{BlockId, CmpOp, Graph, MethodId, Program, ValueId};
use incline_profile::ProfileTable;

use crate::cost::{CostModel, Tier};
use crate::inliner::{CompileCx, CompileOutcome, Inliner};
use crate::value::{Heap, HeapCell, Output, Value};

/// VM configuration.
#[derive(Clone, Copy, Debug)]
pub struct VmConfig {
    /// Cost model constants.
    pub cost: CostModel,
    /// Hotness threshold: a method compiles once
    /// `invocations + backedges/4` reaches this value.
    pub hotness_threshold: u64,
    /// Whether the JIT is enabled (false = pure interpreter).
    pub jit: bool,
    /// Maximum interpreter steps per `run` (runaway protection).
    pub fuel_steps: u64,
    /// Maximum call depth.
    pub max_depth: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            cost: CostModel::default(),
            hotness_threshold: 40,
            jit: true,
            fuel_steps: 500_000_000,
            // Each guest frame costs a host frame; stay well inside the
            // 2 MiB default stack of Rust test threads.
            max_depth: 400,
        }
    }
}

/// Why execution stopped abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A runtime trap (the program's own fault).
    Trap(TrapKind),
    /// Call depth exceeded [`VmConfig::max_depth`].
    StackOverflow,
    /// Step budget exceeded [`VmConfig::fuel_steps`].
    OutOfFuel,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Trap(t) => write!(f, "trap: {t}"),
            ExecError::StackOverflow => write!(f, "stack overflow"),
            ExecError::OutOfFuel => write!(f, "out of fuel"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The result of one `run`.
#[derive(Clone, Debug, PartialEq)]
pub struct RunOutcome {
    /// Return value of the entry method.
    pub value: Option<Value>,
    /// Cycles spent executing code this run.
    pub exec_cycles: u64,
    /// Cycles spent compiling this run.
    pub compile_cycles: u64,
    /// Observable output of the run.
    pub output: Output,
}

impl RunOutcome {
    /// Execution plus compilation cycles (what an iteration "takes").
    pub fn total_cycles(&self) -> u64 {
        self.exec_cycles + self.compile_cycles
    }
}

struct CompiledMethod {
    graph: Rc<Graph>,
    #[allow(dead_code)]
    bytes: u64,
}

/// The virtual machine.
pub struct Machine<'p> {
    program: &'p Program,
    inliner: Box<dyn Inliner + 'p>,
    config: VmConfig,
    profiles: ProfileTable,
    code: HashMap<MethodId, CompiledMethod>,
    back_edges: HashMap<MethodId, HashSet<(BlockId, BlockId)>>,
    installed_bytes: u64,
    compilations: u64,
    // Per-run state.
    heap: Heap,
    output: Output,
    exec_cycles: u64,
    run_compile_cycles: u64,
    steps: u64,
    // Lifetime totals.
    total_compile_cycles: u64,
    last_compile_stats: Vec<(MethodId, crate::inliner::InlineStats)>,
}

impl<'p> Machine<'p> {
    /// Creates a VM over `program` driven by `inliner`.
    pub fn new(program: &'p Program, inliner: Box<dyn Inliner + 'p>, config: VmConfig) -> Self {
        Machine {
            program,
            inliner,
            config,
            profiles: ProfileTable::new(),
            code: HashMap::new(),
            back_edges: HashMap::new(),
            installed_bytes: 0,
            compilations: 0,
            heap: Heap::new(),
            output: Output::new(),
            exec_cycles: 0,
            run_compile_cycles: 0,
            steps: 0,
            total_compile_cycles: 0,
            last_compile_stats: Vec::new(),
        }
    }

    /// Executes `entry(args)` once. Heap and output are fresh per run;
    /// profiles and compiled code persist across runs (warmup).
    ///
    /// # Errors
    ///
    /// Returns [`ExecError`] on traps, stack overflow or fuel exhaustion.
    pub fn run(&mut self, entry: MethodId, args: Vec<Value>) -> Result<RunOutcome, ExecError> {
        self.heap = Heap::new();
        self.output = Output::new();
        self.exec_cycles = 0;
        self.run_compile_cycles = 0;
        self.steps = 0;
        let value = self.exec_method(entry, args, 0)?;
        Ok(RunOutcome {
            value,
            exec_cycles: self.exec_cycles,
            compile_cycles: self.run_compile_cycles,
            output: std::mem::take(&mut self.output),
        })
    }

    /// Total machine-code bytes currently installed.
    pub fn installed_bytes(&self) -> u64 {
        self.installed_bytes
    }

    /// Number of compilations performed.
    pub fn compilations(&self) -> u64 {
        self.compilations
    }

    /// Cycles spent in the compiler over the machine's lifetime.
    pub fn total_compile_cycles(&self) -> u64 {
        self.total_compile_cycles
    }

    /// The profile table (for inspection or seeding).
    pub fn profiles(&self) -> &ProfileTable {
        &self.profiles
    }

    /// Mutable profile access (benchmarks pre-seed profiles).
    pub fn profiles_mut(&mut self) -> &mut ProfileTable {
        &mut self.profiles
    }

    /// Which methods are currently compiled.
    pub fn compiled_methods(&self) -> Vec<MethodId> {
        let mut v: Vec<MethodId> = self.code.keys().copied().collect();
        v.sort();
        v
    }

    /// The installed graph of a compiled method, if any.
    pub fn compiled_graph(&self, m: MethodId) -> Option<&Graph> {
        self.code.get(&m).map(|cm| &*cm.graph)
    }

    /// Per-compilation inliner statistics, in compilation order.
    pub fn compile_log(&self) -> &[(MethodId, crate::inliner::InlineStats)] {
        &self.last_compile_stats
    }

    /// Force-compiles a method immediately (used by experiments that want
    /// a deterministic compile point).
    pub fn compile_now(&mut self, method: MethodId) {
        if !self.code.contains_key(&method) {
            self.compile(method);
        }
    }

    // ---- internals ---------------------------------------------------------

    fn hot(&self, method: MethodId) -> bool {
        let inv = self.profiles.invocations(method);
        let be = self.profiles.backedges(method);
        inv + be / 4 >= self.config.hotness_threshold
    }

    fn compile(&mut self, method: MethodId) {
        let cx = CompileCx { program: self.program, profiles: &self.profiles };
        let CompileOutcome { graph, work_nodes, stats } = self.inliner.compile(method, &cx);
        // Drop the tombstones passes leave behind: the interpreter sizes
        // its register file by value_count, so installing compacted code
        // is part of "code generation".
        let graph = graph.compacted();
        debug_assert!(
            incline_ir::verify::verify_graph(
                self.program,
                &graph,
                &self.program.method(method).params,
                self.program.method(method).ret
            )
            .is_ok(),
            "inliner {} produced an unverifiable graph for {}",
            self.inliner.name(),
            self.program.method(method).name
        );
        let bytes = self.config.cost.code_bytes(graph.size());
        let compile_cycles = self.config.cost.compile_cost(work_nodes);
        self.installed_bytes += bytes;
        self.run_compile_cycles += compile_cycles;
        self.total_compile_cycles += compile_cycles;
        self.compilations += 1;
        self.last_compile_stats.push((method, stats));
        self.code.insert(method, CompiledMethod { graph: Rc::new(graph), bytes });
    }

    fn back_edge_set(&mut self, method: MethodId) -> HashSet<(BlockId, BlockId)> {
        if let Some(s) = self.back_edges.get(&method) {
            return s.clone();
        }
        let graph = &self.program.method(method).graph;
        let forest = LoopForest::compute(graph);
        let mut set = HashSet::new();
        for l in &forest.loops {
            for &tail in &l.back_edges {
                set.insert((tail, l.header));
            }
        }
        self.back_edges.insert(method, set.clone());
        set
    }

    fn exec_method(
        &mut self,
        method: MethodId,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        if depth > self.config.max_depth {
            return Err(ExecError::StackOverflow);
        }
        if let Some(cm) = self.code.get(&method) {
            let graph = Rc::clone(&cm.graph);
            return self.exec_graph(method, &graph, Tier::Compiled, args, depth);
        }
        // Interpreted activation: profile and maybe promote.
        self.profiles.record_invocation(method);
        if self.config.jit && self.hot(method) {
            self.compile(method);
            let cm = &self.code[&method];
            let graph = Rc::clone(&cm.graph);
            return self.exec_graph(method, &graph, Tier::Compiled, args, depth);
        }
        let program = self.program;
        let graph = &program.method(method).graph;
        self.exec_graph(method, graph, Tier::Interpreted, args, depth)
    }

    fn exec_graph(
        &mut self,
        method: MethodId,
        graph: &Graph,
        tier: Tier,
        args: Vec<Value>,
        depth: usize,
    ) -> Result<Option<Value>, ExecError> {
        let profiling = tier == Tier::Interpreted;
        let back_edges = if profiling { self.back_edge_set(method) } else { HashSet::new() };
        let mut regs: Vec<Option<Value>> = vec![None; graph.value_count()];
        let mut block = graph.entry();
        {
            let params = &graph.block(block).params;
            debug_assert_eq!(params.len(), args.len(), "arity mismatch at activation");
            for (&p, a) in params.iter().zip(args) {
                regs[p.index()] = Some(a);
            }
        }

        macro_rules! reg {
            ($v:expr) => {
                regs[$v.index()].expect("use of undefined register (verifier bug)")
            };
        }

        loop {
            if profiling {
                self.profiles.record_block(method, block);
            }
            let bd = graph.block(block);
            for &inst in &bd.insts {
                self.steps += 1;
                if self.steps > self.config.fuel_steps {
                    return Err(ExecError::OutOfFuel);
                }
                let data = graph.inst(inst);
                self.exec_cycles += self.config.cost.exec_cost(&data.op, tier, self.installed_bytes);
                let result: Option<Value> = match &data.op {
                    Op::Nop => None,
                    Op::ConstInt(k) => Some(Value::Int(*k)),
                    Op::ConstFloat(bits) => Some(Value::Float(f64::from_bits(*bits))),
                    Op::ConstBool(b) => Some(Value::Bool(*b)),
                    Op::ConstNull(_) => Some(Value::Null),
                    Op::Bin(op) if op.is_float() => {
                        let a = reg!(data.args[0]).as_float();
                        let b = reg!(data.args[1]).as_float();
                        Some(Value::Float(eval::eval_float_bin(*op, a, b)))
                    }
                    Op::Bin(op) => {
                        let a = reg!(data.args[0]).as_int();
                        let b = reg!(data.args[1]).as_int();
                        Some(Value::Int(eval::eval_int_bin(*op, a, b).map_err(ExecError::Trap)?))
                    }
                    Op::Cmp(op) => {
                        let a = reg!(data.args[0]);
                        let b = reg!(data.args[1]);
                        let r = match op {
                            CmpOp::RefEq => match (a, b) {
                                (Value::Null, Value::Null) => true,
                                (Value::Ref(x), Value::Ref(y)) => x == y,
                                _ => false,
                            },
                            CmpOp::FEq | CmpOp::FLt | CmpOp::FLe => {
                                eval::eval_float_cmp(*op, a.as_float(), b.as_float())
                            }
                            _ => eval::eval_int_cmp(*op, a.as_int(), b.as_int()),
                        };
                        Some(Value::Bool(r))
                    }
                    Op::Not => Some(Value::Bool(!reg!(data.args[0]).as_bool())),
                    Op::INeg => Some(Value::Int(reg!(data.args[0]).as_int().wrapping_neg())),
                    Op::FNeg => Some(Value::Float(-reg!(data.args[0]).as_float())),
                    Op::IntToFloat => Some(Value::Float(eval::int_to_float(reg!(data.args[0]).as_int()))),
                    Op::FloatToInt => Some(Value::Int(eval::float_to_int(reg!(data.args[0]).as_float()))),
                    Op::New(c) => Some(Value::Ref(self.heap.alloc_object(self.program, *c))),
                    Op::GetField(f) => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let off = self.program.field(*f).offset;
                        let HeapCell::Object { fields, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        Some(fields[off])
                    }
                    Op::SetField(f) => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let v = reg!(data.args[1]);
                        let off = self.program.field(*f).offset;
                        let HeapCell::Object { fields, .. } = self.heap.cell_mut(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        fields[off] = v;
                        None
                    }
                    Op::NewArray(e) => {
                        let len = reg!(data.args[0]).as_int();
                        if len < 0 {
                            return Err(ExecError::Trap(TrapKind::NegativeLength));
                        }
                        Some(Value::Ref(self.heap.alloc_array(*e, len as usize)))
                    }
                    Op::ArrayGet => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let idx = reg!(data.args[1]).as_int();
                        let HeapCell::Array { data: arr, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        if idx < 0 || idx as usize >= arr.len() {
                            return Err(ExecError::Trap(TrapKind::Bounds));
                        }
                        Some(arr[idx as usize])
                    }
                    Op::ArraySet => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let idx = reg!(data.args[1]).as_int();
                        let v = reg!(data.args[2]);
                        let HeapCell::Array { data: arr, .. } = self.heap.cell_mut(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        if idx < 0 || idx as usize >= arr.len() {
                            return Err(ExecError::Trap(TrapKind::Bounds));
                        }
                        arr[idx as usize] = v;
                        None
                    }
                    Op::ArrayLen => {
                        let Value::Ref(r) = reg!(data.args[0]) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        let HeapCell::Array { data: arr, .. } = self.heap.cell(r) else {
                            return Err(ExecError::Trap(TrapKind::NullDeref));
                        };
                        Some(Value::Int(arr.len() as i64))
                    }
                    Op::InstanceOf(c) => {
                        let r = match reg!(data.args[0]) {
                            Value::Null => false,
                            Value::Ref(r) => match self.heap.cell(r) {
                                HeapCell::Object { class, .. } => self.program.is_subclass(*class, *c),
                                HeapCell::Array { .. } => false,
                            },
                            _ => false,
                        };
                        Some(Value::Bool(r))
                    }
                    Op::Cast(c) => {
                        let v = reg!(data.args[0]);
                        match v {
                            Value::Null => Some(Value::Null),
                            Value::Ref(r) => match self.heap.cell(r) {
                                HeapCell::Object { class, .. } if self.program.is_subclass(*class, *c) => {
                                    Some(v)
                                }
                                _ => return Err(ExecError::Trap(TrapKind::CastFailed)),
                            },
                            _ => return Err(ExecError::Trap(TrapKind::CastFailed)),
                        }
                    }
                    Op::Print => {
                        let v = reg!(data.args[0]);
                        self.output.print(self.program, &self.heap, v);
                        None
                    }
                    Op::Call(info) => {
                        let call_args: Vec<Value> = data.args.iter().map(|&a| reg!(a)).collect();
                        let (target, is_virtual) = match info.target {
                            CallTarget::Static(m) => (m, false),
                            CallTarget::Virtual(sel) => {
                                let recv = call_args[0];
                                let Value::Ref(r) = recv else {
                                    return Err(ExecError::Trap(TrapKind::NullDeref));
                                };
                                let class = self.heap.class_of(r);
                                if profiling {
                                    self.profiles.record_receiver(info.site, class);
                                }
                                let m = self.program.resolve(class, sel).unwrap_or_else(|| {
                                    panic!(
                                        "no implementation of {} on {}",
                                        self.program.selector(sel),
                                        self.program.class(class).name
                                    )
                                });
                                (m, true)
                            }
                        };
                        if profiling {
                            self.profiles.record_callsite(info.site);
                        }
                        self.exec_cycles += self.config.cost.call_cost(call_args.len(), is_virtual);
                        self.exec_method(target, call_args, depth + 1)?
                    }
                };
                if let Some(res) = data.result {
                    regs[res.index()] = result;
                } else {
                    debug_assert!(
                        result.is_none() || matches!(data.op, Op::Call(_)),
                        "non-call op produced an unexpected result"
                    );
                }
            }

            // Terminator.
            let (dest, edge_args): (BlockId, Vec<ValueId>) = match &bd.term {
                Terminator::Return(v) => {
                    return Ok(v.map(|v| reg!(v)));
                }
                Terminator::Jump(d, a) => (*d, a.clone()),
                Terminator::Branch { cond, then_dest, else_dest } => {
                    let taken = reg!(*cond).as_bool();
                    let (d, a) = if taken { then_dest } else { else_dest };
                    (*d, a.clone())
                }
                Terminator::Unterminated => {
                    unreachable!("verified graphs have no unterminated blocks")
                }
            };
            self.exec_cycles += self.config.cost.edge_cost(edge_args.len(), tier);
            if profiling && back_edges.contains(&(block, dest)) {
                self.profiles.record_backedge(method);
            }
            // Bind target params (read all values before writing: a block
            // may pass its own params permuted).
            let passed: Vec<Value> = edge_args.iter().map(|&a| reg!(a)).collect();
            let target_params: Vec<ValueId> = graph.block(dest).params.clone();
            for (&p, v) in target_params.iter().zip(passed) {
                regs[p.index()] = Some(v);
            }
            block = dest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inliner::NoInline;
    use incline_ir::builder::FunctionBuilder;
    use incline_ir::types::RetType;
    use incline_ir::Type;

    /// sum(n) = 0 + 1 + … + (n-1)
    fn sum_program() -> (Program, MethodId) {
        let mut p = Program::new();
        let m = p.declare_function("sum", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let n = fb.param(0);
        let zero = fb.const_int(0);
        let (head, hp) = fb.add_block_with_params(&[Type::Int, Type::Int]);
        let body = fb.add_block();
        let (done, dp) = fb.add_block_with_params(&[Type::Int]);
        fb.jump(head, vec![zero, zero]);
        fb.switch_to(head);
        let c = fb.cmp(CmpOp::ILt, hp[0], n);
        fb.branch(c, (body, vec![]), (done, vec![hp[1]]));
        fb.switch_to(body);
        let one = fb.const_int(1);
        let i2 = fb.iadd(hp[0], one);
        let a2 = fb.iadd(hp[1], hp[0]);
        fb.jump(head, vec![i2, a2]);
        fb.switch_to(done);
        fb.ret(Some(dp[0]));
        let g = fb.finish();
        p.define_method(m, g);
        (p, m)
    }

    #[test]
    fn interprets_loop_correctly() {
        let (p, m) = sum_program();
        let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        let out = vm.run(m, vec![Value::Int(10)]).unwrap();
        assert_eq!(out.value, Some(Value::Int(45)));
        assert!(out.exec_cycles > 0);
        assert_eq!(out.compile_cycles, 0);
    }

    #[test]
    fn profiles_accumulate_across_runs() {
        let (p, m) = sum_program();
        let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        for _ in 0..5 {
            vm.run(m, vec![Value::Int(4)]).unwrap();
        }
        assert_eq!(vm.profiles().invocations(m), 5);
        assert_eq!(vm.profiles().backedges(m), 20);
    }

    #[test]
    fn jit_promotes_hot_method_and_speeds_it_up() {
        let (p, m) = sum_program();
        let mut config = VmConfig::default();
        config.hotness_threshold = 3;
        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        let interp_cost = vm.run(m, vec![Value::Int(100)]).unwrap().exec_cycles;
        vm.run(m, vec![Value::Int(100)]).unwrap();
        vm.run(m, vec![Value::Int(100)]).unwrap(); // compile triggers here
        assert_eq!(vm.compilations(), 1);
        assert!(vm.installed_bytes() > 0);
        let compiled_cost = vm.run(m, vec![Value::Int(100)]).unwrap().exec_cycles;
        assert!(
            compiled_cost * 2 < interp_cost,
            "compiled ({compiled_cost}) must be much faster than interpreted ({interp_cost})"
        );
    }

    #[test]
    fn output_matches_between_tiers() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let two = fb.const_int(2);
        let y = fb.imul(x, two);
        fb.print(y);
        fb.print(x);
        fb.ret(None);
        let g = fb.finish();
        p.define_method(m, g);
        let mut interp = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        let a = interp.run(m, vec![Value::Int(21)]).unwrap();
        let mut jit = Machine::new(
            &p,
            Box::new(NoInline),
            VmConfig { hotness_threshold: 1, ..VmConfig::default() },
        );
        let b = jit.run(m, vec![Value::Int(21)]).unwrap();
        assert_eq!(a.output, b.output);
        assert_eq!(a.value, b.value);
    }

    #[test]
    fn traps_propagate() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![Type::Int], Type::Int);
        let mut fb = FunctionBuilder::new(&p, m);
        let x = fb.param(0);
        let zero = fb.const_int(0);
        let d = fb.binop(incline_ir::BinOp::IDiv, x, zero);
        fb.ret(Some(d));
        let g = fb.finish();
        p.define_method(m, g);
        let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        assert_eq!(vm.run(m, vec![Value::Int(1)]), Err(ExecError::Trap(TrapKind::DivByZero)));
    }

    #[test]
    fn stack_overflow_detected() {
        let mut p = Program::new();
        let m = p.declare_function("f", vec![], RetType::Void);
        let mut fb = FunctionBuilder::new(&p, m);
        fb.call_static(m, vec![]);
        fb.ret(None);
        let g = fb.finish();
        p.define_method(m, g);
        let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        assert_eq!(vm.run(m, vec![]), Err(ExecError::StackOverflow));
    }

    #[test]
    fn virtual_dispatch_and_receiver_profiles() {
        let mut p = Program::new();
        let a = p.add_class("A", None);
        let b = p.add_class("B", Some(a));
        let ma = p.declare_method(a, "id", vec![], Type::Int);
        let mb = p.declare_method(b, "id", vec![], Type::Int);
        for (m, k) in [(ma, 1), (mb, 2)] {
            let mut fb = FunctionBuilder::new(&p, m);
            let v = fb.const_int(k);
            fb.ret(Some(v));
            let g = fb.finish();
            p.define_method(m, g);
        }
        let f = p.declare_function("f", vec![Type::Bool], Type::Int);
        let mut fb = FunctionBuilder::new(&p, f);
        let c = fb.param(0);
        let t = fb.add_block();
        let e = fb.add_block();
        let (j, jp) = fb.add_block_with_params(&[Type::Object(a)]);
        fb.branch(c, (t, vec![]), (e, vec![]));
        fb.switch_to(t);
        let oa = fb.new_object(a);
        fb.jump(j, vec![oa]);
        fb.switch_to(e);
        let ob = fb.new_object(b);
        fb.jump(j, vec![ob]);
        fb.switch_to(j);
        let sel = fb.program().selector_by_name("id", 1).unwrap();
        let r = fb.call_virtual(sel, vec![jp[0]]).unwrap();
        fb.ret(Some(r));
        let g = fb.finish();
        p.define_method(f, g);

        let mut vm = Machine::new(&p, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        assert_eq!(vm.run(f, vec![Value::Bool(true)]).unwrap().value, Some(Value::Int(1)));
        assert_eq!(vm.run(f, vec![Value::Bool(false)]).unwrap().value, Some(Value::Int(2)));
        vm.run(f, vec![Value::Bool(false)]).unwrap();
        let site = incline_ir::CallSiteId { method: f, index: 0 };
        let prof = vm.profiles().receiver_profile(site);
        assert_eq!(prof.len(), 2);
        assert_eq!(prof[0].class, b);
        assert_eq!(prof[0].count, 2);
    }

    #[test]
    fn fuel_limit_enforced() {
        let (p, m) = sum_program();
        let mut config = VmConfig { jit: false, ..VmConfig::default() };
        config.fuel_steps = 100;
        let mut vm = Machine::new(&p, Box::new(NoInline), config);
        assert_eq!(vm.run(m, vec![Value::Int(1_000_000)]), Err(ExecError::OutOfFuel));
    }
}
