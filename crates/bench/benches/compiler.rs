//! Criterion micro-benchmarks for the compiler itself: the inliners, the
//! optimization passes, the inline transplant, and the two execution
//! tiers. These measure *compile-time* costs — §II.2's argument that a
//! JIT inliner must budget its own work.
//!
//! ```text
//! cargo bench -p incline-bench --bench compiler
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use incline_baselines::{C2Inliner, GreedyInliner};
use incline_core::IncrementalInliner;
use incline_ir::{Graph, MethodId, Program};
use incline_profile::ProfileTable;
use incline_vm::{CompileCx, Inliner, Machine, NoInline, Value, VmConfig};
use incline_workloads::Workload;

/// Interprets a workload once so profiles exist for compilation benches.
fn profiled(w: &Workload) -> ProfileTable {
    let mut vm = Machine::new(&w.program, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
    for _ in 0..3 {
        vm.run(w.entry, vec![Value::Int(w.input.min(10))]).expect("workload runs");
    }
    vm.profiles().clone()
}

fn bench_inliners(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile");
    for name in ["factorie", "jython", "scalatest"] {
        let w = incline_workloads::by_name(name).expect("benchmark exists");
        let profiles = profiled(&w);
        let inliners: Vec<(&str, Box<dyn Inliner>)> = vec![
            ("incremental", Box::new(IncrementalInliner::new())),
            ("greedy", Box::new(GreedyInliner::new())),
            ("c2", Box::new(C2Inliner::new())),
        ];
        for (iname, inliner) in inliners {
            group.bench_with_input(
                BenchmarkId::new(iname, name),
                &(&w, &profiles),
                |b, (w, profiles)| {
                    let cx = CompileCx { program: &w.program, profiles };
                    b.iter(|| inliner.compile(w.entry, &cx));
                },
            );
        }
    }
    group.finish();
}

/// A mid-sized graph with folding opportunities for the pass benches.
fn pass_fixture() -> (Program, MethodId, Graph) {
    let w = incline_workloads::by_name("factorie").expect("benchmark exists");
    let profiles = profiled(&w);
    let cx = CompileCx { program: &w.program, profiles: &profiles };
    // The greedy inliner produces a large, unoptimized-ish root graph.
    let out = GreedyInliner::new().compile(w.entry, &cx);
    (w.program.clone(), w.entry, out.graph)
}

fn bench_passes(c: &mut Criterion) {
    let (program, _m, graph) = pass_fixture();
    let mut group = c.benchmark_group("passes");
    group.bench_function("canonicalize", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| incline_opt::canonicalize(&program, &mut g),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("gvn", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| incline_opt::gvn(&mut g),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("rw_elim", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| incline_opt::rw_elim(&program, &mut g),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("dce", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| incline_opt::dce(&mut g),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("full-pipeline", |b| {
        b.iter_batched(
            || graph.clone(),
            |mut g| incline_opt::optimize(&program, &mut g),
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("verify", |b| {
        let method = {
            let w = incline_workloads::by_name("factorie").unwrap();
            w.program.method(w.entry).params.clone()
        };
        let ret = incline_ir::RetType::Value(incline_ir::Type::Int);
        b.iter(|| incline_ir::verify::verify_graph(&program, &graph, &method, ret))
    });
    group.finish();
}

fn bench_transplant(c: &mut Criterion) {
    // inline_call on a mid-sized callee.
    let w = incline_workloads::by_name("factorie").expect("benchmark exists");
    let callee = w.program.function_by_name("sample_step").expect("exists");
    let callee_graph = w.program.method(callee).graph.clone();
    let root_graph = w.program.method(w.entry).graph.clone();
    let (block, call) = root_graph
        .callsites()
        .into_iter()
        .find(|&(_, i)| {
            matches!(
                root_graph.inst(i).op,
                incline_ir::Op::Call(incline_ir::CallInfo {
                    target: incline_ir::CallTarget::Static(m),
                    ..
                }) if m == callee
            )
        })
        .expect("main calls sample_step");
    c.bench_function("inline_call/sample_step", |b| {
        b.iter_batched(
            || root_graph.clone(),
            |mut g| incline_ir::inline::inline_call(&mut g, block, call, &callee_graph),
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_tiers(c: &mut Criterion) {
    let w = incline_workloads::by_name("scalatest").expect("benchmark exists");
    let mut group = c.benchmark_group("execution");
    group.bench_function("interpreted", |b| {
        let mut vm =
            Machine::new(&w.program, Box::new(NoInline), VmConfig { jit: false, ..VmConfig::default() });
        b.iter(|| vm.run(w.entry, vec![Value::Int(4)]).expect("runs"))
    });
    group.bench_function("compiled", |b| {
        let config = VmConfig { hotness_threshold: 1, ..VmConfig::default() };
        let mut vm = Machine::new(&w.program, Box::new(IncrementalInliner::new()), config);
        vm.run(w.entry, vec![Value::Int(4)]).expect("warmup");
        b.iter(|| vm.run(w.entry, vec![Value::Int(4)]).expect("runs"))
    });
    group.finish();
}

criterion_group!(benches, bench_inliners, bench_passes, bench_transplant, bench_tiers);
criterion_main!(benches);
